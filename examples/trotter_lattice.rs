//! Spatially-local Hamiltonian simulation — the workload class the
//! paper's introduction motivates.
//!
//! A Trotter step coupling *diagonal* lattice neighbors is infeasible on
//! the grid coupling graph, but every interaction is short-range, so the
//! routing permutations are local. We transpile it with the
//! locality-aware router and with ATS, compare SWAP overhead, and verify
//! the physical circuit against the logical one with the statevector
//! simulator.
//!
//! ```text
//! cargo run --release --example trotter_lattice
//! ```

use qroute::circuit::builders;
use qroute::prelude::*;
use qroute::sim::equiv;

fn main() {
    let (rows, cols) = (3, 3);
    let grid = Grid::new(rows, cols);
    let logical = builders::trotter_diagonal_step(rows, cols, 0.17, 2);
    println!(
        "logical circuit: {} qubits, {} gates ({} two-qubit), depth {}",
        logical.num_qubits(),
        logical.size(),
        logical.two_qubit_count(),
        logical.depth()
    );

    for router in [
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::Ats,
    ] {
        let name = router.name();
        let transpiler = Transpiler::new(
            grid,
            TranspileOptions {
                router,
                initial_layout: qroute::transpiler::InitialLayout::Identity,
            },
        );
        let result = transpiler.run(&logical);
        assert!(result.physical.is_feasible(|a, b| grid.dist(a, b) == 1));
        println!(
            "{name:>16}: +{} SWAPs over {} routing rounds, physical depth {}",
            result.swap_count,
            result.routing_invocations,
            result.physical.depth()
        );

        // Verify: the physical circuit is the logical circuit up to the
        // reported layouts (statevector check on 9 qubits).
        let ok = equiv::transpiled_equivalent(
            &logical,
            &result.physical,
            &result.initial_layout,
            &result.final_layout,
        );
        assert!(ok, "{name} produced an inequivalent circuit");
        println!("{:>16}  verified equivalent by statevector simulation", "");
    }
}
