//! Routing on Cartesian-product architectures (§IV extension): cylinders
//! and tori built from path/cycle factors.
//!
//! ```text
//! cargo run --release --example torus_routing
//! ```

use qroute::perm::generators;
use qroute::routing::product_route::{product_route, CycleFactor, PathFactor, ProductRouteOptions};
use qroute::topology::{Cycle, Path, Product};

fn main() {
    // A 6x8 torus: C6 x C8 — a "grid-like" architecture with wraparound
    // links (common in proposals for modular superconducting fabrics).
    let c1 = Cycle::new(6);
    let c2 = Cycle::new(8);
    let torus = Product::new(c1.to_graph(), c2.to_graph());
    let graph = torus.to_graph();
    println!(
        "torus C6 x C8: {} qubits, {} coupling edges (every vertex degree 4)",
        torus.len(),
        graph.num_edges()
    );

    let pi = generators::random(torus.len(), 7);
    let schedule = product_route(
        &torus,
        &CycleFactor(c1),
        &CycleFactor(c2),
        &pi,
        &ProductRouteOptions::default(),
    );
    assert!(schedule.realizes(&pi));
    schedule.validate_on(&graph).unwrap();
    println!(
        "random permutation routed on the torus: depth {}, {} swaps",
        schedule.depth(),
        schedule.size()
    );

    // A cylinder: P4 x C8 (a grid rolled up along one axis).
    let p = Path::new(4);
    let cylinder = Product::new(p.to_graph(), c2.to_graph());
    let pi = generators::random(cylinder.len(), 7);
    let schedule = product_route(
        &cylinder,
        &PathFactor(p),
        &CycleFactor(c2),
        &pi,
        &ProductRouteOptions::default(),
    );
    assert!(schedule.realizes(&pi));
    println!(
        "random permutation routed on the P4 x C8 cylinder: depth {}, {} swaps",
        schedule.depth(),
        schedule.size()
    );

    // Compare against the flat 4x8 grid: wraparound links shorten routes.
    let grid = qroute::topology::Grid::new(4, 8);
    let pi_grid = generators::random(grid.len(), 7);
    let flat = qroute::routing::local_grid::local_grid_route(grid, &pi_grid);
    println!(
        "same-size flat 4x8 grid for reference: depth {}, {} swaps",
        flat.depth(),
        flat.size()
    );
}
