//! Transpile the QFT — the canonical all-to-all circuit — onto a qubit
//! grid, verify it, and emit OpenQASM.
//!
//! ```text
//! cargo run --release --example transpile_qft [n]
//! ```

use qroute::circuit::{builders, qasm};
use qroute::prelude::*;
use qroute::sim::equiv;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    // Smallest grid that fits n qubits, as square as possible.
    let rows = (1..=n).find(|r| r * r >= n).unwrap();
    let cols = n.div_ceil(rows);
    let grid = Grid::new(rows, cols);

    let logical = builders::qft(n);
    println!(
        "QFT({n}): {} gates, depth {}, on a {rows}x{cols} grid",
        logical.size(),
        logical.depth()
    );

    for router in [RouterKind::locality_aware(), RouterKind::Ats] {
        let name = router.name();
        let transpiler = Transpiler::new(
            grid,
            TranspileOptions {
                router,
                initial_layout: qroute::transpiler::InitialLayout::Identity,
            },
        );
        let result = transpiler.run(&logical);
        println!(
            "{name:>16}: +{} SWAPs, physical depth {} (logical {}), {} routing rounds",
            result.swap_count,
            result.physical.depth(),
            logical.depth(),
            result.routing_invocations
        );
        if n <= 12 {
            // Pad the logical circuit onto the grid's wire count for the
            // statevector check.
            let padded = logical.relabeled(grid.len(), |q| q);
            assert!(equiv::transpiled_equivalent(
                &padded,
                &result.physical,
                &result.initial_layout,
                &result.final_layout,
            ));
            println!("{:>16}  verified equivalent by statevector simulation", "");
        }
    }

    // Emit the locality-aware physical circuit as OpenQASM 2.0.
    let transpiler = Transpiler::new(grid, TranspileOptions::default());
    let result = transpiler.run(&logical);
    let program = qasm::to_qasm(&result.physical.decompose_swaps());
    let lines: Vec<&str> = program.lines().take(8).collect();
    println!("\nOpenQASM 2.0 output (first lines, SWAPs decomposed to CX):");
    for l in lines {
        println!("  {l}");
    }
    println!("  ... ({} lines total)", program.lines().count());
}
