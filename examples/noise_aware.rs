//! Why routing depth matters on NISQ hardware: estimate the success
//! probability of transpiled circuits under a simple multiplicative error
//! model (§I of the paper: swap overhead makes the output "deviate
//! significantly" without error correction).
//!
//! ```text
//! cargo run --release --example noise_aware
//! ```

use qroute::circuit::builders;
use qroute::prelude::*;
use qroute::transpiler::{InitialLayout, NoiseModel};

fn main() {
    let grid = Grid::new(4, 4);
    let noise = NoiseModel::superconducting_2022();
    let workloads: Vec<(&str, Circuit)> = vec![
        ("qft-16", builders::qft(16)),
        (
            "trotter-diag 4x4 x2",
            builders::trotter_diagonal_step(4, 4, 0.1, 2),
        ),
        (
            "random 40 CX",
            builders::random_two_qubit_circuit(16, 40, 11),
        ),
    ];

    println!(
        "estimated success probability on a 4x4 grid (p1={}, p2={}, idle={})\n",
        noise.p1, noise.p2, noise.p_idle
    );
    println!(
        "{:<22}{:>10}{:>16}{:>14}{:>12}",
        "workload", "logical", "router", "p(success)", "swaps"
    );
    for (name, logical) in &workloads {
        let p_logical = noise.success_probability(logical);
        for router in [
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::Ats,
        ] {
            let rname = router.name();
            let t = Transpiler::new(
                grid,
                TranspileOptions { router, initial_layout: InitialLayout::Identity },
            );
            let res = t.run(logical);
            let p = noise.success_probability(&res.physical);
            println!(
                "{:<22}{:>10.3}{:>16}{:>14.3}{:>12}",
                name, p_logical, rname, p, res.swap_count
            );
        }
    }
    println!("\nshallower routing -> fewer swaps + fewer idle layers -> higher fidelity.");
}
