//! Quickstart: route a permutation on a qubit grid and inspect the
//! schedule.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qroute::perm::{generators, metrics};
use qroute::prelude::*;

fn main() {
    // An 8x8 superconducting-style qubit grid.
    let grid = Grid::new(8, 8);
    println!(
        "coupling graph: {}x{} grid, {} qubits",
        grid.rows(),
        grid.cols(),
        grid.len()
    );

    // The transpiler asks us to realize a permutation: qubit at v must move
    // to pi(v). Take a uniformly random one (the hardest case for locality).
    let pi = generators::random(grid.len(), 42);
    println!(
        "instance: random permutation, total displacement {}, max displacement {}",
        metrics::total_displacement(grid, &pi),
        metrics::max_displacement(grid, &pi),
    );

    // Route with the paper's locality-aware algorithm (Algorithm 1+2).
    let schedule = RouterKind::locality_aware().route(grid, &pi);
    assert!(schedule.realizes(&pi));
    println!(
        "locality-aware: depth {} layers, {} SWAPs (lower bound {})",
        schedule.depth(),
        schedule.size(),
        metrics::depth_lower_bound(grid, &pi),
    );

    // Compare against approximate token swapping — the baseline used by
    // state-of-the-art transpilers.
    let ats = RouterKind::Ats.route(grid, &pi);
    assert!(ats.realizes(&pi));
    println!(
        "ats:            depth {} layers, {} SWAPs",
        ats.depth(),
        ats.size()
    );

    // Each layer is a matching of the grid: disjoint SWAPs that execute in
    // one time step.
    let first = &schedule.layers[0];
    println!(
        "first layer has {} parallel swaps, e.g. {:?}",
        first.len(),
        &first.swaps[..3.min(first.swaps.len())]
    );

    // Every schedule can be checked against the coupling graph.
    schedule
        .validate_on(&grid.to_graph())
        .expect("layers are matchings of the grid");
    println!("schedule validated: every layer is a matching of coupling edges");
}
