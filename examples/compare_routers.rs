//! A miniature Figure 4: depth of computed swap networks per workload
//! class, locality-aware vs naive vs ATS.
//!
//! ```text
//! cargo run --release --example compare_routers [side] [seeds]
//! ```

use qroute::perm::generators;
use qroute::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let grid = Grid::new(side, side);

    type SeededClass<'a> = (&'a str, Box<dyn Fn(u64) -> Permutation>);
    let classes: Vec<SeededClass> = vec![
        (
            "random",
            Box::new(move |s| generators::random(grid.len(), s)),
        ),
        (
            "block4",
            Box::new(move |s| generators::block_local(grid, 4, 4, s)),
        ),
        (
            "overlap8/4",
            Box::new(move |s| generators::overlapping_blocks(grid, 8, 8, 4, 4, s)),
        ),
        (
            "skinny",
            Box::new(move |s| generators::skinny_cycles(grid, s)),
        ),
    ];
    let routers = [
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::hybrid(),
        RouterKind::Ats,
    ];

    println!("mean swap-network depth on a {side}x{side} grid ({seeds} seeds)\n");
    print!("{:<12}", "class");
    for r in &routers {
        print!("{:>16}", r.name());
    }
    println!();
    for (label, gen) in &classes {
        print!("{label:<12}");
        for router in &routers {
            let mut total = 0usize;
            for seed in 0..seeds {
                let pi = gen(seed);
                let s = router.route(grid, &pi);
                assert!(s.realizes(&pi));
                total += s.depth();
            }
            print!("{:>16.1}", total as f64 / seeds as f64);
        }
        println!();
    }
    println!(
        "\nexpected shape (paper §V): locality-aware < ats on random; ~equal on block4;\n\
         ats < locality-aware on overlap and skinny; hybrid <= min(local, naive) always."
    );
}
