//! Daemon integration: concurrent clients must each see exactly the
//! bytes a single-threaded in-process batch produces for their stream,
//! the shared cache must dedup compute across connections without
//! touching those bytes, admission control must reject (never hang) a
//! flooding client, and `stats`/`shutdown` control requests must work
//! over the wire with a full graceful drain.

use qroute_service::{Client, Daemon, Engine, EngineConfig, RouteJob};

/// The reference bytes: the same lines through the in-process engine,
/// default (untimed) configuration — what `repro batch` would emit.
fn engine_reference(lines: &[String]) -> String {
    let mut engine = Engine::new(EngineConfig::builder().build().unwrap());
    for line in lines {
        match RouteJob::from_json_line(line) {
            Ok(job) => engine.submit(&job),
            Err(e) => engine.submit_error(e),
        };
    }
    let mut out = String::new();
    while let Some(result) = engine.collect_next() {
        out.push_str(&result.outcome.to_json_line());
        out.push('\n');
    }
    out
}

/// A per-client job stream: every router and class, seed reuse for
/// cache hits, versioned and unversioned lines, plus malformed and
/// wrong-version lines that must become in-order error outcomes.
fn job_lines(client: usize, count: usize) -> Vec<String> {
    let classes = ["random", "block2", "overlap4s2", "skinny"];
    let routers = ["auto", "ats", "locality-aware", "hybrid"];
    (0..count)
        .map(|k| {
            if k % 11 == 5 {
                return "this is not json".to_string();
            }
            if k % 13 == 7 {
                return format!("{{\"v\": 7, \"side\": 4, \"class\": \"random\", \"seed\": {k}}}");
            }
            let side = 4 + (client + k) % 3;
            let class = classes[(client + k) % classes.len()];
            let seed = k / 5 % 3;
            let router = routers[k % routers.len()];
            let v = if k % 2 == 0 { "\"v\": 1, " } else { "" };
            format!(
                "{{{v}\"side\": {side}, \"router\": {router:?}, \"class\": {class:?}, \
                 \"seed\": {seed}}}"
            )
        })
        .collect()
}

fn daemon_bytes(client: &mut Client, lines: &[String]) -> String {
    let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = client.route_lines(line_refs).expect("replay the stream");
    let mut out = String::new();
    for line in outcomes {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[test]
fn concurrent_clients_each_match_the_single_threaded_batch_bytes() {
    let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap())
        .expect("bind an ephemeral port");
    let addr = daemon.local_addr();
    const CLIENTS: usize = 4;
    const JOBS: usize = 60;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let lines = job_lines(c, JOBS);
                let mut client = Client::connect(addr).expect("connect");
                (daemon_bytes(&mut client, &lines), engine_reference(&lines))
            })
        })
        .collect();
    for (c, handle) in handles.into_iter().enumerate() {
        let (daemon_out, reference) = handle.join().expect("client thread");
        assert_eq!(
            daemon_out, reference,
            "client {c}: daemon bytes diverged from the in-process batch"
        );
        assert!(daemon_out.contains("\"cache\":\"hit\""), "client {c}");
        assert!(daemon_out.contains("\"code\":\"parse\""), "client {c}");
        assert!(daemon_out.contains("\"code\":\"version\""), "client {c}");
    }
    let stats = daemon.stats();
    assert_eq!(stats.connections, CLIENTS as u64);
    assert!(stats.jobs_routed > 0);
    assert!(stats.jobs_errored > 0);
}

#[test]
fn shared_cache_dedups_across_connections_without_changing_bytes() {
    // Same stream from one client, then from two concurrent clients on a
    // fresh daemon: the distinct canonical keys (= shared-cache misses)
    // must not depend on the client count — the shard-locked
    // get-or-insert admits exactly one compute per key.
    let lines = job_lines(0, 48);
    let single = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap()).unwrap();
    let mut client = Client::connect(single.local_addr()).expect("connect");
    let reference = daemon_bytes(&mut client, &lines);
    let solo = single.stats();
    drop(client);

    let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap()).unwrap();
    let addr = daemon.local_addr();
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let lines = lines.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                daemon_bytes(&mut client, &lines)
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(
            handle.join().expect("client thread"),
            reference,
            "a concurrent replay changed a connection's bytes"
        );
    }
    let stats = daemon.stats();
    assert_eq!(stats.cache_misses, solo.cache_misses, "one compute per key");
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        2 * (solo.cache_hits + solo.cache_misses),
        "every planned job makes exactly one shared-cache lookup"
    );
}

#[test]
fn flooding_past_the_client_queue_is_rejected_in_order_not_hung() {
    let config = EngineConfig::builder()
        .workers(1)
        .queue_depth(1)
        .client_queue_depth(1)
        .build()
        .unwrap();
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    // Blast a burst of slow jobs without reading a single outcome: with
    // one admission slot, everything behind the in-flight job must come
    // back as a backpressure error outcome, in submission order.
    const BURST: usize = 16;
    for seed in 0..BURST {
        client
            .send_line(&format!(
                "{{\"side\": 16, \"router\": \"ats\", \"class\": \"random\", \"seed\": {seed}}}"
            ))
            .expect("send burst line");
    }
    let mut rejected = 0;
    let mut routed = 0;
    for k in 0..BURST {
        let line = client
            .recv_line()
            .expect("burst outcomes")
            .expect("one outcome per job");
        assert!(
            line.starts_with(&format!("{{\"id\":{k},")),
            "outcome {k} out of order: {line}"
        );
        if line.contains("\"code\":\"backpressure\"") {
            assert!(line.contains("client queue full"), "{line}");
            rejected += 1;
        } else {
            assert!(line.ends_with("\"error\":null}"), "{line}");
            routed += 1;
        }
    }
    assert!(routed >= 1, "the first job was admitted");
    assert!(
        rejected >= 1,
        "a burst past one slot must reject: {routed} routed"
    );
    let stats = daemon.stats();
    assert_eq!(stats.jobs_routed, routed);
    assert_eq!(stats.jobs_errored, rejected);
    // The writer decrements the gauge *after* emitting an outcome, so
    // the last job's slot can linger for a scheduling instant.
    let mut depth = stats.queue_depth;
    for _ in 0..100 {
        if depth == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        depth = daemon.stats().queue_depth;
    }
    assert_eq!(depth, 0, "everything drained");
}

#[test]
fn stats_and_shutdown_control_requests_work_over_the_wire() {
    let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap()).unwrap();
    let addr = daemon.local_addr();
    let lines = job_lines(1, 30);
    let mut client = Client::connect(addr).expect("connect");
    let out = daemon_bytes(&mut client, &lines);
    assert_eq!(out.lines().count(), 30);

    let stats_line = client.stats().expect("stats response");
    let doc: serde_json::Value = serde_json::from_str(&stats_line).expect("stats is JSON");
    let stats = doc.get("stats").expect("stats envelope");
    let field = |key: &str| {
        stats
            .get(key)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("missing {key} in {stats_line}"))
    };
    assert!(field("jobs_routed") > 0.0);
    assert!(field("jobs_errored") > 0.0);
    assert_eq!(field("connections"), 1.0);
    // ≤ 1: the writer decrements the gauge just after emitting, so the
    // last outcome's slot can linger for a scheduling instant.
    assert!(field("queue_depth") <= 1.0, "{stats_line}");
    assert!(field("cache_hits") > 0.0);
    assert!(field("cache_misses") > 0.0);
    assert!(field("hit_rate") > 0.0 && field("hit_rate") < 1.0);
    assert!(field("latency_p50_ms") > 0.0);
    assert!(field("latency_p99_ms") >= field("latency_p50_ms"));
    let routers = stats
        .get("routers")
        .and_then(|v| v.as_array())
        .expect("per-router dispatch counts");
    assert!(!routers.is_empty());

    // Unknown control requests error without consuming a job id.
    client
        .send_line("{\"req\": \"make-coffee\"}")
        .expect("send unknown control");
    let err_line = client.recv_line().expect("control error").unwrap();
    assert!(err_line.contains("\"code\":\"parse\""), "{err_line}");
    assert!(err_line.contains("make-coffee"), "{err_line}");

    // Graceful shutdown: acknowledged on this connection, then the
    // daemon drains fully and join() returns.
    let ack = client.shutdown_server().expect("shutdown ack");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    daemon.join();
    assert!(
        Client::connect(addr).is_err(),
        "the listener must be gone after join"
    );
}

#[test]
fn a_client_dying_mid_stream_leaves_the_daemon_healthy() {
    let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap()).unwrap();
    let addr = daemon.local_addr();
    let lines = job_lines(2, 10);
    {
        // Send ten jobs, read three outcomes, then drop the socket with
        // seven answers still in flight.
        let mut dying = Client::connect(addr).expect("connect");
        for line in &lines {
            dying.send_line(line).expect("send");
        }
        for k in 0..3 {
            dying
                .recv_line()
                .expect("read outcome")
                .unwrap_or_else(|| panic!("outcome {k} before the kill"));
        }
    }
    // The daemon must absorb the abandoned work: the writer drains what
    // was admitted (discarding lines into the dead socket), the gauges
    // come back to zero, and nothing wedges.
    let mut depth = daemon.stats().queue_depth;
    for _ in 0..500 {
        if depth == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        depth = daemon.stats().queue_depth;
    }
    assert_eq!(depth, 0, "abandoned jobs must drain");
    let after_kill = daemon.stats();

    // A later connection sees correct shared-cache state: the killed
    // client's stream was fully computed, so replaying it adds no new
    // misses — and the bytes still match the single-threaded batch.
    let mut client = Client::connect(addr).expect("connect after the kill");
    assert_eq!(daemon_bytes(&mut client, &lines), engine_reference(&lines));
    let stats = daemon.stats();
    assert_eq!(
        stats.cache_misses, after_kill.cache_misses,
        "every canonical key was already computed before the kill"
    );
    assert_eq!(stats.connections, 2);
}

#[test]
fn a_torn_final_job_line_is_dropped_silently() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{Shutdown, TcpStream};

    let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap()).unwrap();
    let addr = daemon.local_addr();
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    // One whole job line, then a fragment with no newline — a client
    // that died mid-write.
    raw.write_all(b"{\"side\": 4, \"router\": \"ats\", \"class\": \"random\", \"seed\": 0}\n")
        .expect("whole line");
    raw.write_all(b"{\"side\": 4, \"rout")
        .expect("torn fragment");
    raw.shutdown(Shutdown::Write).expect("half-close");

    let mut reader = BufReader::new(raw.try_clone().expect("read half"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("first outcome");
    assert!(line.starts_with("{\"id\":0,"), "{line}");
    // The fragment produces nothing — not even an error outcome: the
    // next read is EOF.
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("EOF"),
        0,
        "the torn line must be dropped, got: {line}"
    );

    // And the daemon is untouched: no error was counted for the
    // fragment, and it still serves new connections.
    let stats = daemon.stats();
    assert_eq!(stats.jobs_errored, 0, "a torn line is not a parse error");
    assert_eq!(stats.jobs_routed, 1);
    let mut client = Client::connect(addr).expect("connect after torn line");
    let out = daemon_bytes(
        &mut client,
        &["{\"side\": 4, \"router\": \"ats\", \"class\": \"random\", \"seed\": 1}".to_string()],
    );
    assert!(out.ends_with("\"error\":null}\n"), "{out}");
}

#[test]
fn blank_lines_consume_no_job_id_on_the_wire() {
    let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap()).unwrap();
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    client.send_line("").expect("blank line");
    client
        .send_line("{\"side\": 4, \"router\": \"ats\", \"class\": \"random\", \"seed\": 0}")
        .expect("job line");
    let line = client.recv_line().expect("outcome").unwrap();
    assert!(
        line.starts_with("{\"id\":0,"),
        "blank line took an id: {line}"
    );
}
