//! Fault-injection integration: armed chaos must poison exactly the
//! targeted jobs (everything else byte-identical to a clean run), the
//! supervisor must respawn crashed workers and report the count, jobs
//! must time out against their deadlines while the connection survives,
//! and the retrying client must reassemble a full, in-order result set
//! across dropped and torn connections — with no test ever hanging.

use qroute_service::{
    ChaosConfig, Client, Daemon, Engine, EngineConfig, RetryPolicy, RetryingClient, RouteJob,
};
use std::time::Duration;

/// Jobs with pairwise-distinct canonical keys (random permutations,
/// distinct seeds): every job is a miss in every run, so hit/miss labels
/// cannot drift between clean and faulted runs.
fn distinct_job_lines(count: usize) -> Vec<String> {
    (0..count)
        .map(|k| {
            format!("{{\"side\": 5, \"router\": \"ats\", \"class\": \"random\", \"seed\": {k}}}")
        })
        .collect()
}

fn run_on(engine: &mut Engine, lines: &[String]) -> Vec<String> {
    for line in lines {
        match RouteJob::from_json_line(line) {
            Ok(job) => engine.submit(&job),
            Err(e) => engine.submit_error(e),
        };
    }
    let mut out = Vec::new();
    while let Some(result) = engine.collect_next() {
        out.push(result.outcome.to_json_line());
    }
    out
}

fn route_refs(client: &mut Client, lines: &[String]) -> Vec<String> {
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    client.route_lines(refs).expect("replay the stream")
}

#[test]
fn injected_worker_panics_poison_only_their_jobs_and_are_respawned() {
    let lines = distinct_job_lines(12);
    let clean = run_on(
        &mut Engine::new(EngineConfig::builder().workers(1).build().unwrap()),
        &lines,
    );

    // With one worker, pool-wide compute order equals submission order,
    // so `worker_panic_every: 4` targets exactly jobs 3, 7, 11.
    let mut engine = Engine::new(
        EngineConfig::builder()
            .workers(1)
            .restart_backoff_ms(1)
            .chaos(ChaosConfig { worker_panic_every: 4, ..ChaosConfig::off() })
            .build()
            .unwrap(),
    );
    let chaotic = run_on(&mut engine, &lines);
    assert_eq!(chaotic.len(), clean.len());
    for (k, (with_faults, reference)) in chaotic.iter().zip(clean.iter()).enumerate() {
        if (k + 1) % 4 == 0 {
            assert!(
                with_faults.contains("\"code\":\"router-panic\""),
                "job {k} should be the poisoned one: {with_faults}"
            );
        } else {
            assert_eq!(
                with_faults, reference,
                "non-faulted job {k} must be byte-identical to the clean run"
            );
        }
    }
    assert_eq!(
        engine.chaos().injected_panics(),
        3,
        "counters match the faults"
    );

    // Every crash was followed by a supervised respawn (the last one may
    // still be in its backoff when run() returns, so poll briefly).
    let mut restarts = engine.worker_restarts();
    for _ in 0..200 {
        if restarts == 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
        restarts = engine.worker_restarts();
    }
    assert_eq!(restarts, 3, "one respawn per injected crash");
}

#[test]
fn restart_exhaustion_answers_with_shutdown_errors_not_hangs() {
    // Every compute crashes its worker; after two respawns the budget is
    // gone, and the remaining queued jobs must still be answered.
    let mut engine = Engine::new(
        EngineConfig::builder()
            .workers(1)
            .max_worker_restarts(2)
            .restart_backoff_ms(1)
            .chaos(ChaosConfig { worker_panic_every: 1, ..ChaosConfig::off() })
            .build()
            .unwrap(),
    );
    let outcomes = run_on(&mut engine, &distinct_job_lines(6));
    for (k, line) in outcomes.iter().enumerate() {
        let expect = if k < 3 { "router-panic" } else { "shutdown" };
        assert!(
            line.contains(&format!("\"code\":\"{expect}\"")),
            "job {k}: expected {expect}: {line}"
        );
    }
    assert_eq!(engine.worker_restarts(), 2, "the respawn budget was spent");
    assert_eq!(engine.chaos().injected_panics(), 3);
}

#[test]
fn a_deadline_exceeded_job_times_out_while_later_jobs_complete() {
    // Compute #3 sleeps "30 s"; only job 2 carries a deadline, so the
    // budget-aware sleep gives up at ~400 ms and the worker moves on.
    let config = EngineConfig::builder()
        .workers(1)
        .chaos(ChaosConfig { latency_ms: 30_000, latency_every: 3, ..ChaosConfig::off() })
        .build()
        .unwrap();
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let lines: Vec<String> = (0..5)
        .map(|k| {
            let deadline = if k == 2 { ", \"deadline_ms\": 400" } else { "" };
            format!(
                "{{\"side\": 5, \"router\": \"ats\", \"class\": \"random\", \
                 \"seed\": {k}{deadline}}}"
            )
        })
        .collect();
    let outcomes = route_refs(&mut client, &lines);
    assert_eq!(outcomes.len(), 5);
    for (k, line) in outcomes.iter().enumerate() {
        if k == 2 {
            assert!(line.contains("\"code\":\"timeout\""), "job {k}: {line}");
            assert!(line.contains("exceeded its 400 ms deadline"), "{line}");
        } else {
            assert!(
                line.ends_with("\"error\":null}"),
                "job {k} on the same connection must still route: {line}"
            );
        }
    }
    let stats = daemon.stats();
    assert_eq!(
        stats.timeouts, 1,
        "exactly the injected-latency job timed out"
    );
    assert_eq!(stats.jobs_routed, 4);
    assert_eq!(stats.worker_restarts, 0, "a timeout is not a crash");
}

#[test]
fn retrying_client_survives_dropped_and_torn_connections() {
    let lines = distinct_job_lines(20);

    // Reference bytes: the same stream through a clean daemon.
    let clean = Daemon::bind("127.0.0.1:0", EngineConfig::builder().build().unwrap()).unwrap();
    let mut plain = Client::connect(clean.local_addr()).expect("connect clean");
    let reference = route_refs(&mut plain, &lines);
    drop(plain);
    drop(clean);

    // Chaos daemon: the first two connections are severed after ~700
    // written bytes, tearing an outcome line in half on the way out.
    let config = EngineConfig::builder()
        .chaos(ChaosConfig {
            drop_connection_after_bytes: Some(700),
            drop_connections: 2,
            torn_writes: true,
            ..ChaosConfig::off()
        })
        .build()
        .unwrap();
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind");
    let mut client = RetryingClient::new(
        daemon.local_addr(),
        RetryPolicy { max_retries: 8, base_ms: 1, max_ms: 20 },
    )
    .expect("resolve");
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = client.route_lines(refs).expect("route with retries");

    // All 20 jobs answered, in order, byte-identical to the clean run
    // (all-distinct keys ⇒ the per-connection mirror reset on reconnect
    // cannot change a hit/miss label).
    assert_eq!(outcomes, reference);
    assert!(
        client.retries() > 0,
        "the drops must actually have happened"
    );
    let stats = daemon.stats();
    assert!(
        stats.connections >= 3,
        "at least two reconnects: {}",
        stats.connections
    );
    assert!(
        stats.retries_observed > 0,
        "the client reports its resubmissions: {stats:?}"
    );
}

#[test]
fn resilience_counters_travel_the_wire() {
    let config = EngineConfig::builder()
        .workers(1)
        .restart_backoff_ms(1)
        .chaos(ChaosConfig { worker_panic_every: 5, ..ChaosConfig::off() })
        .build()
        .unwrap();
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let outcomes = route_refs(&mut client, &distinct_job_lines(6));
    assert!(
        outcomes[4].contains("\"code\":\"router-panic\""),
        "compute 5 is the poisoned one: {}",
        outcomes[4]
    );
    assert!(
        outcomes[5].ends_with("\"error\":null}"),
        "the respawned worker routes the next job: {}",
        outcomes[5]
    );

    client
        .send_line("{\"req\": \"retried\", \"n\": 3}")
        .expect("send retried report");
    assert_eq!(
        client.recv_line().expect("ack").as_deref(),
        Some("{\"ok\":\"retried\"}")
    );

    let stats_line = client.stats().expect("stats over the wire");
    let doc: serde_json::Value = serde_json::from_str(&stats_line).expect("stats is JSON");
    let stats = doc.get("stats").expect("stats envelope");
    let field = |key: &str| {
        stats
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("missing {key} in {stats_line}"))
    };
    assert_eq!(field("timeouts"), 0);
    assert_eq!(field("worker_restarts"), 1);
    assert_eq!(field("retries_observed"), 3);

    let snapshot = daemon.stats();
    assert_eq!(snapshot.worker_restarts, 1);
    assert_eq!(snapshot.retries_observed, 3);
    assert_eq!(snapshot.timeouts, 0);
}

#[test]
fn retry_backoff_is_deterministic_bounded_and_jittered() {
    let policy = RetryPolicy { max_retries: 5, base_ms: 10, max_ms: 80 };
    for attempt in 1..=6u32 {
        let ms = policy.backoff_ms(attempt, 42);
        assert_eq!(
            ms,
            policy.backoff_ms(attempt, 42),
            "deterministic per (attempt, salt)"
        );
        let step = (10u64 << (attempt - 1).min(16)).min(80);
        assert!(
            ms >= step / 2 && ms <= step,
            "attempt {attempt}: {ms} outside [{}, {step}]",
            step / 2
        );
    }
    // The jitter actually varies with the salt.
    let spread: std::collections::BTreeSet<u64> =
        (0..16).map(|salt| policy.backoff_ms(3, salt)).collect();
    assert!(spread.len() > 1, "all salts gave {spread:?}");
}
