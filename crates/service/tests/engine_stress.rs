//! Engine stress and determinism: hundreds of jobs across 1..=8 workers
//! must produce byte-identical, id-ordered output, and dropping the
//! engine with work still queued must not deadlock.

use qroute_service::{Engine, EngineConfig, RouteJob, ServiceError};

/// A mixed batch: every class, several sides and seeds, duplicates and
/// error lines sprinkled in — the shape a real JSONL batch has.
fn mixed_jobs(count: usize) -> (Vec<Result<RouteJob, ServiceError>>, usize) {
    let classes = ["random", "block2", "overlap4s2", "skinny"];
    let routers = ["auto", "locality-aware", "ats", "hybrid", "naive-grid"];
    let mut jobs = Vec::with_capacity(count);
    let mut errors = 0;
    for k in 0..count {
        if k % 23 == 7 {
            jobs.push(Err(ServiceError::Parse(format!(
                "synthetic parse failure at job {k}"
            ))));
            errors += 1;
            continue;
        }
        let side = 4 + (k % 3);
        let class = classes[k % classes.len()];
        // Reuse a small seed pool so duplicates (cache hits) occur.
        let seed = (k / 7 % 5) as u64;
        let router = routers[k % routers.len()];
        jobs.push(RouteJob::from_class(side, router, class, seed));
    }
    (jobs, errors)
}

fn run_batch(workers: usize, jobs: &[Result<RouteJob, ServiceError>]) -> (String, Engine) {
    let mut engine = Engine::new(EngineConfig {
        workers,
        cache_capacity: 256,
        queue_depth: 8,
        ..EngineConfig::default()
    });
    for job in jobs {
        match job {
            Ok(job) => engine.submit(job),
            Err(e) => engine.submit_error(e.clone()),
        };
    }
    let mut out = String::new();
    while let Some(result) = engine.collect_next() {
        out.push_str(&result.outcome.to_json_line());
        out.push('\n');
    }
    (out, engine)
}

#[test]
fn hundreds_of_jobs_are_ordered_and_worker_count_invariant() {
    let (jobs, errors) = mixed_jobs(300);
    let (reference, engine) = run_batch(1, &jobs);
    let lines: Vec<&str> = reference.lines().collect();
    assert_eq!(lines.len(), 300);

    // Ids are exactly 0..300 in order, errors stay in place, and the
    // seed-pool reuse produced real cache traffic.
    for (k, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\":{k},")),
            "line {k} out of order: {line}"
        );
    }
    assert_eq!(
        lines
            .iter()
            .filter(|l| !l.ends_with("\"error\":null}"))
            .count(),
        errors
    );
    let stats = engine.cache_stats();
    assert!(stats.hits > 0, "seed reuse must hit the cache: {stats:?}");
    assert!(stats.misses > 0);

    // Worker count must not change a single output byte.
    for workers in 2..=8 {
        let (out, other) = run_batch(workers, &jobs);
        assert_eq!(out, reference, "workers={workers} diverged");
        assert_eq!(
            other.cache_stats(),
            stats,
            "workers={workers} cache stats diverged"
        );
    }
}

#[test]
fn shutdown_mid_queue_does_not_deadlock() {
    // One worker, a deep backlog of side-16 random instances (each takes
    // real routing time), queue depth 4: by the time the last submit
    // returns, most of the batch is still queued or unstarted. Dropping
    // the engine must terminate the pool promptly instead of deadlocking
    // or routing out the backlog.
    let mut engine = Engine::new(EngineConfig {
        workers: 1,
        cache_capacity: 0,
        queue_depth: 4,
        ..EngineConfig::default()
    });
    for seed in 0..4 {
        engine.submit(&RouteJob::from_class(16, "hybrid", "random", seed).unwrap());
    }
    drop(engine); // must join, not hang (the test harness would time out)
}

#[test]
fn collect_after_partial_submit_interleaves() {
    // submit/collect can interleave: collect_next returns the oldest
    // pending job and further submissions keep assigning increasing ids.
    let mut engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
    let a = engine.submit(&RouteJob::from_class(4, "ats", "random", 0).unwrap());
    let first = engine.collect_next().unwrap();
    assert_eq!(first.outcome.id, a);
    let b = engine.submit(&RouteJob::from_class(4, "ats", "random", 1).unwrap());
    assert_eq!(b, a + 1);
    assert_eq!(engine.collect_next().unwrap().outcome.id, b);
    assert!(engine.collect_next().is_none());
}

#[test]
fn eviction_pressure_keeps_outcomes_correct_and_deterministic() {
    // A cache far smaller than the distinct-instance count: eviction
    // churn must not change outcomes or ordering, only hit counts.
    let (jobs, _) = mixed_jobs(150);
    let small = |workers| {
        let mut engine = Engine::new(EngineConfig {
            workers,
            cache_capacity: 4,
            cache_shards: 2,
            ..EngineConfig::default()
        });
        let mut out = String::new();
        for job in &jobs {
            match job {
                Ok(job) => engine.submit(job),
                Err(e) => engine.submit_error(e.clone()),
            };
        }
        while let Some(result) = engine.collect_next() {
            out.push_str(&result.outcome.to_json_line());
            out.push('\n');
        }
        (out, engine.cache_stats())
    };
    let (a, stats_a) = small(1);
    let (b, stats_b) = small(6);
    assert_eq!(a, b, "eviction under concurrency must stay deterministic");
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.evictions > 0, "tiny cache must evict: {stats_a:?}");
}
