//! Differential proof that the canonical cache is safe: a cache-served
//! schedule, replayed through any grid symmetry and translation, is
//! feasible, realizes the job's permutation, and matches a cold route's
//! depth and size *exactly*.
//!
//! The engine routes the canonical representative for hits and misses
//! alike, so "cold" and "cached" answers are the same schedule modulo a
//! vertex relabeling — these tests pin that equivalence end to end, from
//! the canonicalization algebra up through the engine's outcome lines.

use proptest::prelude::*;
use qroute_core::{GridRouter, RouterKind};
use qroute_perm::{generators, Permutation};
use qroute_service::{
    canonicalize, canonicalize_topology, Engine, EngineConfig, RouteJob, RouterSpec,
};
use qroute_topology::{Grid, GridSymmetry, Topology};

/// The seeded workload used across cases: varied enough to hit every
/// canonicalization branch (identity, thin boxes, full-support boxes).
fn workload(grid: Grid, kind: usize, seed: u64) -> Permutation {
    match kind % 5 {
        0 => generators::random(grid.len(), seed),
        1 => generators::block_local(grid, 2, 2, seed),
        2 => generators::sparse_random(grid.len(), (grid.len() / 4).max(2).min(grid.len()), seed),
        3 => generators::skinny_cycles(grid, seed),
        _ => Permutation::identity(grid.len()),
    }
}

/// Transform `(grid, pi)` by a dihedral symmetry: the conjugated
/// permutation on the target grid.
fn conjugate(grid: Grid, pi: &Permutation, sym: GridSymmetry) -> (Grid, Permutation) {
    let target = sym.target(grid);
    let mut map = vec![0usize; pi.len()];
    for v in 0..pi.len() {
        map[sym.apply(grid, v)] = sym.apply(grid, pi.apply(v));
    }
    (
        target,
        Permutation::from_vec(map).expect("conjugate of a permutation"),
    )
}

/// Embed `(grid, pi)` into a larger `big` grid at offset `(dr, dc)`
/// (identity outside the embedded block).
fn translate_into(grid: Grid, pi: &Permutation, big: Grid, dr: usize, dc: usize) -> Permutation {
    assert!(grid.rows() + dr <= big.rows() && grid.cols() + dc <= big.cols());
    let mut map: Vec<usize> = (0..big.len()).collect();
    for v in 0..pi.len() {
        let (i, j) = grid.coords(v);
        let (ti, tj) = grid.coords(pi.apply(v));
        map[big.index(i + dr, j + dc)] = big.index(ti + dr, tj + dc);
    }
    Permutation::from_vec(map).expect("translated permutation")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random (grid, permutation, router) triples: routing the same
    /// job twice through the engine yields a miss then a hit, and the
    /// cache-served outcome matches the cold one exactly.
    #[test]
    fn cache_hit_matches_cold_route(
        side in 2usize..7,
        kind in 0usize..5,
        router_idx in 0usize..7,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side, side);
        let pi = workload(grid, kind, seed);
        let router = RouterKind::all_default()[router_idx].clone();
        let job = RouteJob::explicit(side, RouterSpec::Fixed(router), &pi);
        let mut engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
        let out = engine.run(vec![job.clone(), job]);
        prop_assert_eq!(out[0].cache.as_deref(), Some("miss"));
        prop_assert_eq!(out[1].cache.as_deref(), Some("hit"));
        prop_assert_eq!(out[0].depth, out[1].depth);
        prop_assert_eq!(out[0].size, out[1].size);
        prop_assert_eq!(out[0].lower_bound, out[1].lower_bound);
        prop_assert!(out[0].depth.unwrap() >= out[0].lower_bound.unwrap());
    }

    /// For random triples and *every* dihedral symmetry: the symmetric
    /// instance shares the cache entry, and the replayed schedule is
    /// feasible on its own grid, realizes its own permutation, and has
    /// the cold route's exact depth and size.
    #[test]
    fn symmetric_instances_replay_feasibly(
        side in 2usize..7,
        kind in 0usize..5,
        router_idx in 0usize..7,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side, side);
        let pi = workload(grid, kind, seed);
        let router = RouterKind::all_default()[router_idx].clone();
        let mut engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });

        let mut jobs = vec![RouteJob::explicit(side, RouterSpec::Fixed(router.clone()), &pi)];
        let mut instances = vec![(grid, pi.clone())];
        for sym in GridSymmetry::all() {
            let (tgrid, tpi) = conjugate(grid, &pi, sym);
            jobs.push(RouteJob::explicit(side, RouterSpec::Fixed(router.clone()), &tpi));
            instances.push((tgrid, tpi));
        }
        let results = engine.run_detailed(jobs);
        let cold = &results[0].outcome;
        prop_assert_eq!(cold.cache.as_deref(), Some("miss"));
        for (result, (igrid, ipi)) in results.iter().zip(&instances).skip(1) {
            prop_assert_eq!(result.outcome.cache.as_deref(), Some("hit"));
            prop_assert_eq!(result.outcome.depth, cold.depth);
            prop_assert_eq!(result.outcome.size, cold.size);
            let schedule = result.schedule.as_ref().expect("routed");
            prop_assert!(schedule.validate_on(&igrid.to_graph()).is_ok());
            prop_assert!(schedule.realizes(ipi));
            prop_assert_eq!(schedule.depth(), cold.depth.unwrap());
            prop_assert_eq!(schedule.size(), cold.size.unwrap());
        }
    }

    /// Translating the support block across a larger grid — and even
    /// onto a different grid size — still hits the cache, and the replay
    /// stays feasible at the new position.
    #[test]
    fn translated_instances_replay_feasibly(
        side in 2usize..5,
        kind in 0usize..4,
        seed in 0u64..1000,
        dr in 0usize..4,
        dc in 0usize..4,
        big_extra in 0usize..3,
    ) {
        let grid = Grid::new(side, side);
        let pi = workload(grid, kind, seed);
        let big_side = side + 4 + big_extra;
        let big = Grid::new(big_side, big_side);
        let shifted = translate_into(grid, &pi, big, dr, dc);

        let router = RouterKind::Ats;
        let mut engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
        let results = engine.run_detailed(vec![
            RouteJob::explicit(side, RouterSpec::Fixed(router.clone()), &pi),
            RouteJob::explicit(big_side, RouterSpec::Fixed(router), &shifted),
        ]);
        prop_assert_eq!(results[0].outcome.cache.as_deref(), Some("miss"));
        prop_assert_eq!(results[1].outcome.cache.as_deref(), Some("hit"));
        prop_assert_eq!(results[1].outcome.depth, results[0].outcome.depth);
        prop_assert_eq!(results[1].outcome.size, results[0].outcome.size);
        let schedule = results[1].schedule.as_ref().expect("routed");
        prop_assert!(schedule.validate_on(&big.to_graph()).is_ok());
        prop_assert!(schedule.realizes(&shifted));
    }

    /// Canonicalization is a true invariant map: every element of an
    /// instance's orbit produces the identical canonical key.
    #[test]
    fn canonical_key_is_orbit_invariant(
        side in 2usize..7,
        kind in 0usize..5,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side, side);
        let pi = workload(grid, kind, seed);
        let reference = canonicalize(grid, &pi).key("x");
        for sym in GridSymmetry::all() {
            let (tgrid, tpi) = conjugate(grid, &pi, sym);
            prop_assert_eq!(canonicalize(tgrid, &tpi).key("x"), reference.clone());
        }
        // The canonical form is itself a fixed point of canonicalization.
        let form = canonicalize(grid, &pi);
        let canonical_grid = form.topology.as_grid().expect("clean canonical grid");
        let again = canonicalize(canonical_grid, &form.pi);
        prop_assert_eq!(again.key("x"), reference);
    }

    /// Routing the canonical representative directly (a "cold route" in
    /// the engine's semantics) matches the engine's reported numbers.
    #[test]
    fn engine_numbers_match_direct_canonical_route(
        side in 2usize..7,
        kind in 0usize..5,
        router_idx in 0usize..7,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side, side);
        let pi = workload(grid, kind, seed);
        let router = RouterKind::all_default()[router_idx].clone();
        let form = canonicalize(grid, &pi);
        let cold = router.route(form.topology.as_grid().expect("clean canonical"), &form.pi);
        let mut engine = Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
        let out = engine.run(vec![RouteJob::explicit(side, RouterSpec::Fixed(router), &pi)]);
        prop_assert_eq!(out[0].depth, Some(cold.depth()));
        prop_assert_eq!(out[0].size, Some(cold.size()));
    }
}

/// A uniform permutation of the alive vertices of `topology`, fixing the
/// dead ones (so it is a valid defective-grid job permutation).
fn alive_random(topology: &Topology, seed: u64) -> Permutation {
    let alive: Vec<usize> = (0..topology.len())
        .filter(|&v| topology.is_alive(v))
        .collect();
    let shuffled = generators::random(alive.len(), seed);
    let mut map: Vec<usize> = (0..topology.len()).collect();
    for (k, &v) in alive.iter().enumerate() {
        map[v] = alive[shuffled.apply(k)];
    }
    Permutation::from_vec(map).expect("permutation of the alive vertices")
}

/// Conjugate a defective square-grid instance by a dihedral symmetry:
/// the same physical pattern viewed in a mirror.
fn conjugate_defective(
    grid: Grid,
    defects: &[usize],
    pi: &Permutation,
    sym: GridSymmetry,
) -> (Vec<usize>, Permutation) {
    let mut map = vec![0usize; pi.len()];
    for v in 0..pi.len() {
        map[sym.apply(grid, v)] = sym.apply(grid, pi.apply(v));
    }
    let defects = defects.iter().map(|&v| sym.apply(grid, v)).collect();
    (
        defects,
        Permutation::from_vec(map).expect("conjugated permutation"),
    )
}

/// A defective-grid JSONL job line (router pinned to ats, the
/// topology-generic router).
fn defect_job(side: usize, defects: &[usize], pi: &Permutation) -> RouteJob {
    RouteJob::from_json_line(&format!(
        r#"{{"side": {side}, "router": "ats", "perm": {:?}, "topology": {{"kind": "defect", "defects": {:?}}}}}"#,
        pi.as_slice(),
        defects,
    ))
    .expect("well-formed defect job line")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random defective grids: every dihedral conjugate of an
    /// instance shares one cache entry, and each replayed schedule is
    /// feasible on its *own* defective topology (never crossing a dead
    /// vertex or edge) and realizes its own permutation.
    #[test]
    fn defective_orbits_share_entries_and_replay_feasibly(
        side in 3usize..6,
        d1 in 0usize..36,
        d2 in 0usize..36,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side, side);
        let defects: Vec<usize> = std::collections::BTreeSet::from([d1 % grid.len(), d2 % grid.len()])
            .into_iter()
            .collect();
        let topology = Topology::grid_with_defects(grid, &defects, &[]).expect("deduped, in range");
        if topology.validate_routable().is_err() {
            // The defect pattern cut the grid: not a routable instance.
            return Ok(());
        }
        let pi = alive_random(&topology, seed);

        let mut jobs = vec![defect_job(side, &defects, &pi)];
        let mut instances = vec![(defects.clone(), pi.clone())];
        for sym in GridSymmetry::all() {
            let (tdefects, tpi) = conjugate_defective(grid, &defects, &pi, sym);
            jobs.push(defect_job(side, &tdefects, &tpi));
            instances.push((tdefects, tpi));
        }
        let mut engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
        let results = engine.run_detailed(jobs);
        let cold = &results[0].outcome;
        prop_assert_eq!(cold.cache.as_deref(), Some("miss"));
        for (result, (idefects, ipi)) in results.iter().zip(&instances) {
            prop_assert_eq!(result.outcome.error.as_deref(), None);
            prop_assert_eq!(result.outcome.depth, cold.depth);
            prop_assert_eq!(result.outcome.size, cold.size);
            let itopology = Topology::grid_with_defects(grid, idefects, &[]).unwrap();
            let schedule = result.schedule.as_ref().expect("routed");
            prop_assert!(schedule.validate_on(&itopology.graph()).is_ok());
            prop_assert!(schedule.realizes(ipi));
        }
        for result in &results[1..] {
            prop_assert_eq!(result.outcome.cache.as_deref(), Some("hit"));
        }
    }

    /// The canonical key of a defective instance is invariant over its
    /// dihedral orbit — directly on `canonicalize_topology`, independent
    /// of the engine.
    #[test]
    fn defective_canonical_key_is_orbit_invariant(
        side in 3usize..6,
        d1 in 0usize..36,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side, side);
        let defects = vec![d1 % grid.len()];
        let topology = Topology::grid_with_defects(grid, &defects, &[]).expect("in range");
        if topology.validate_routable().is_err() {
            return Ok(());
        }
        let pi = alive_random(&topology, seed);
        let reference = canonicalize_topology(&topology, &pi).key("x");
        for sym in GridSymmetry::all() {
            let (tdefects, tpi) = conjugate_defective(grid, &defects, &pi, sym);
            let ttopology = Topology::grid_with_defects(grid, &tdefects, &[]).unwrap();
            prop_assert_eq!(canonicalize_topology(&ttopology, &tpi).key("x"), reference.clone());
        }
    }
}
