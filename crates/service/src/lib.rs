//! # qroute-service
//!
//! A batched, cached, multi-worker **routing engine** over the
//! single-call routers in [`qroute_core`] — the throughput layer the
//! ROADMAP's "heavy traffic" north star asks for. Transpilation
//! campaigns invoke routing thousands of times with highly repetitive
//! permutation structure; this crate turns those calls into JSONL jobs
//! that are batched, dispatched across a worker pool, and served from a
//! symmetry-aware cache.
//!
//! * [`job`] — [`RouteJob`]/[`RouteOutcome`]: the serde request/response
//!   types and their JSONL wire format (`repro batch` speaks this).
//! * [`engine`] — [`Engine`]: bounded work queue, std-thread worker
//!   pool, deterministic job-id-ordered output, backpressure, graceful
//!   shutdown. Output bytes are independent of the worker count.
//! * [`cache`] — the sharded LRU keyed on a **canonical form** of
//!   `(topology, π)`: translation of the support bounding box plus the
//!   eight dihedral grid symmetries (defect patterns included — dead
//!   vertices/edges inside the box are carried through the
//!   minimization), with cached schedules replayed back through the
//!   inverse symmetry. Symmetry makes the cache far more effective than
//!   naive `(topology, π)` memoization.
//! * [`dispatch`] — the `auto` router-selection policy, driven by cheap
//!   [`qroute_perm::metrics`] features (total L1 distance, max
//!   displacement, block-locality score); non-grid topologies resolve to
//!   approximate token swapping, the topology-generic router.
//! * [`daemon`] / [`client`] — a long-lived TCP server speaking the same
//!   JSONL wire format, one stream per connection: per-connection
//!   determinism (outcome order and bytes match `repro batch` for the
//!   same job list), a shared concurrent cache with per-shard locking,
//!   bounded per-client admission control, graceful drain on shutdown,
//!   and a `stats` request returning a [`StatsSnapshot`]. The blocking
//!   [`Client`] drives it from tests, `repro ctl`, and benchmarks.
//! * [`errors`] — [`ServiceError`], the one error type of the service
//!   layer, with a stable machine-readable [`ServiceError::code`]
//!   carried in the `"code"` field of error outcomes.
//! * [`chaos`] — deterministic fault injection (worker crashes, injected
//!   latency, dropped/torn connections), compiled always but armed only
//!   through [`EngineConfigBuilder::chaos`]. Together with per-job
//!   deadlines (`deadline_ms`), supervised worker respawn, and the
//!   retrying [`RetryingClient`], it forms the resilience layer — see
//!   the README's "Resilience" section.
//!
//! Jobs default to square grids (`"side"` alone), but an optional
//! `"topology"` object selects defective grids, heavy-hex, brick-wall,
//! or torus couplings — see [`job::TopologySpec`] and the `job` module
//! docs for the wire format.
//!
//! ```
//! use qroute_service::{Engine, EngineConfig, RouteJob};
//!
//! let mut engine = Engine::new(EngineConfig::builder().workers(2).build().unwrap());
//! let job = RouteJob::from_json_line(
//!     r#"{"side": 6, "router": "auto", "class": "block2", "seed": 1}"#,
//! ).unwrap();
//! let outcomes = engine.run(vec![job.clone(), job]);
//! assert_eq!(outcomes[0].cache.as_deref(), Some("miss"));
//! assert_eq!(outcomes[1].cache.as_deref(), Some("hit"));
//! assert_eq!(outcomes[0].depth, outcomes[1].depth);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod daemon;
pub mod dispatch;
pub mod engine;
pub mod errors;
pub mod job;
pub mod pretty;

pub use cache::{
    canonicalize, canonicalize_topology, CacheStats, CanonicalForm, CanonicalKey, ShardedLru,
};
pub use chaos::{ChaosConfig, ChaosState};
pub use client::{Client, RetryPolicy, RetryingClient};
pub use daemon::{Daemon, RouterJobs, StatsSnapshot};
pub use dispatch::{features, select_router, select_router_on, InstanceFeatures};
pub use engine::{Engine, EngineConfig, EngineConfigBuilder, RouteResult};
pub use errors::ServiceError;
pub use job::{
    CacheStatus, PermSpec, RouteJob, RouteOutcome, RouterSpec, TopologySpec, MAX_SIDE, WIRE_VERSION,
};
pub use pretty::render_stats_table;
