//! Canonical instance keying and the sharded LRU routed-schedule cache.
//!
//! Real transpilation campaigns route the *same* local permutation
//! patterns over and over, just placed at different grid positions and
//! orientations (the blockwise locality structure the paper's Algorithm 1
//! exploits). Naive memoization on `(topology, π)` misses all of that
//! reuse; this module instead keys the cache on a **canonical form**:
//!
//! 1. restrict `π` to the bounding box of its support (the tokens that
//!    actually move) — this normalizes *translation* and makes the key
//!    independent of the surrounding grid size;
//! 2. minimize over the eight [`GridSymmetry`] elements (reflections and
//!    transposition) — two instances that are mirror images share a key.
//!
//! Defective grids canonicalize the same way, carrying the defects that
//! fall inside the support box along through the minimization (the
//! candidate order is `(rows, cols, dead vertices, dead edges, table)`),
//! so defect patterns that are translations or reflections of each other
//! share one entry — and a defect *outside* the box drops out entirely,
//! letting defective instances share entries with pristine-grid
//! instances whose moved region looks identical. When restricting to the
//! box would strand a moved token (the live path leaves the box), the
//! canonical frame falls back to the whole grid, which is always
//! routable for validated instances. Non-grid topologies (heavy-hex,
//! brick, torus) have no dihedral normal form here and canonicalize to
//! themselves — duplicates still share entries.
//!
//! The engine routes the canonical representative on its canonical
//! topology and replays the cached [`RoutingSchedule`] back through the
//! inverse symmetry ([`CanonicalForm::replay`]), which preserves layer
//! structure (identical depth and size) and maps box edges to coupling
//! edges of the original topology. Differential tests in
//! `tests/cache_differential.rs` prove the replayed schedule is feasible
//! and realizes the original permutation for arbitrary instances.

use qroute_core::RoutingSchedule;
use qroute_perm::Permutation;
use qroute_topology::{Grid, GridSymmetry, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Identity of a canonical routing instance: the resolved router
/// (label *and* configuration) plus the canonical topology and
/// permutation table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    /// Resolved router discriminator. The engine uses the router's
    /// `Debug` rendering, not just its [`qroute_core::RouterKind::label`]
    /// — two differently-configured routers sharing a label (e.g. two
    /// `LocalityAware` option sets) must never share cached schedules.
    pub router: String,
    /// The canonical topology (a bounding-box grid or defective grid for
    /// grid-family instances; the instance's own topology otherwise).
    pub topology: Topology,
    /// Canonical permutation image table on the canonical topology.
    pub perm: Vec<usize>,
}

/// The canonical form of a `(topology, π)` instance: the representative
/// to route, plus the vertex map to replay schedules back into the
/// original frame.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The canonical topology the representative lives on.
    pub topology: Topology,
    /// The canonical permutation on [`CanonicalForm::topology`].
    pub pi: Permutation,
    /// Canonical vertex id → original vertex id (an embedding: canonical
    /// coupling edges map to coupling edges of the original topology).
    to_original: Vec<usize>,
}

impl CanonicalForm {
    /// The cache key of this form under a resolved router discriminator
    /// (see [`CanonicalKey::router`]).
    pub fn key(&self, router: impl Into<String>) -> CanonicalKey {
        CanonicalKey {
            router: router.into(),
            topology: self.topology.clone(),
            perm: self.pi.as_slice().to_vec(),
        }
    }

    /// Replay a schedule computed for the canonical representative back
    /// into the original instance's frame. Depth and size are invariant;
    /// the result is valid on the original topology and realizes the
    /// original permutation (extended by the identity outside the box).
    pub fn replay(&self, schedule: &RoutingSchedule) -> RoutingSchedule {
        schedule.relabeled(|v| self.to_original[v])
    }
}

/// Compute the canonical form of `(grid, pi)`.
///
/// The support bounding box is translated to the origin, and the
/// lexicographically smallest `(rows, cols, table)` over all eight
/// dihedral transforms is chosen — a deterministic pick, so equal-orbit
/// instances collide on the same [`CanonicalKey`]. The identity
/// permutation (empty support) canonicalizes to the `1 × 1` box, which
/// every router handles with an empty schedule.
pub fn canonicalize(grid: Grid, pi: &Permutation) -> CanonicalForm {
    assert_eq!(grid.len(), pi.len(), "permutation does not fit the grid");
    canonicalize_windowed(grid, pi, &[], &[], support_window(grid, pi))
        .expect("defect-free boxes are always routable")
}

/// Compute the canonical form of `(topology, pi)` — the topology-generic
/// entry point the engine keys its cache on.
///
/// * Full grids delegate to [`canonicalize`] (identical keys, so pure
///   grid jobs hit the same entries they always did).
/// * Defective grids canonicalize like grids but carry the dead
///   vertices/edges inside the support box through the dihedral
///   minimization; out-of-box defects drop out. If restricting to the
///   box disconnects the live region (a live path between moved tokens
///   leaves the box), the canonical frame is the whole grid instead.
/// * Heavy-hex, brick-wall and torus topologies canonicalize to
///   themselves (identity form): exact duplicates still share entries.
///
/// Expects `topology` to be a constructor-normalized value (always true
/// for values built via [`Topology`]'s constructors) and, for defective
/// grids, one whose live region is connected ([`Topology::validate_routable`]);
/// the engine validates both before canonicalizing.
pub fn canonicalize_topology(topology: &Topology, pi: &Permutation) -> CanonicalForm {
    assert_eq!(
        topology.len(),
        pi.len(),
        "permutation does not fit the topology"
    );
    match topology {
        Topology::Grid(grid) => canonicalize(*grid, pi),
        Topology::GridWithDefects { grid, dead_vertices, dead_edges } => canonicalize_windowed(
            *grid,
            pi,
            dead_vertices,
            dead_edges,
            support_window(*grid, pi),
        )
        .or_else(|| {
            // Live paths leave the support box: fall back to the full
            // frame, which is connected for validated instances.
            let full = (0, 0, grid.rows() - 1, grid.cols() - 1);
            canonicalize_windowed(*grid, pi, dead_vertices, dead_edges, full)
        })
        .unwrap_or_else(|| CanonicalForm {
            // Unvalidated (disconnected) instance: cache it as itself.
            topology: topology.clone(),
            pi: pi.clone(),
            to_original: (0..pi.len()).collect(),
        }),
        _ => CanonicalForm {
            topology: topology.clone(),
            pi: pi.clone(),
            to_original: (0..pi.len()).collect(),
        },
    }
}

/// Support bounding box of `pi` on `grid`; `(0,0)..=(0,0)` for the
/// identity.
fn support_window(grid: Grid, pi: &Permutation) -> (usize, usize, usize, usize) {
    let (mut r0, mut c0, mut r1, mut c1) = (usize::MAX, usize::MAX, 0, 0);
    for v in 0..pi.len() {
        if pi.apply(v) != v {
            let (i, j) = grid.coords(v);
            r0 = r0.min(i);
            c0 = c0.min(j);
            r1 = r1.max(i);
            c1 = c1.max(j);
        }
    }
    if r0 == usize::MAX {
        (0, 0, 0, 0)
    } else {
        (r0, c0, r1, c1)
    }
}

/// Canonicalize `(grid, pi)` restricted to `window`, carrying the
/// in-window defects through the minimization. Returns `None` when the
/// live part of the windowed instance is not connected (so routers could
/// not run on it); the caller then widens the window.
fn canonicalize_windowed(
    grid: Grid,
    pi: &Permutation,
    dead_vertices: &[usize],
    dead_edges: &[(usize, usize)],
    window: (usize, usize, usize, usize),
) -> Option<CanonicalForm> {
    let (r0, c0, r1, c1) = window;
    if (0..pi.len()).all(|v| pi.apply(v) == v) {
        // Nothing moves: every instance shares the clean 1×1 box (any
        // defects are irrelevant to an empty schedule).
        return Some(CanonicalForm {
            topology: Topology::grid(1, 1),
            pi: Permutation::identity(1),
            to_original: vec![grid.index(r0, c0)],
        });
    }
    let boxed = Grid::new(r1 - r0 + 1, c1 - c0 + 1);
    // π restricted to the box: the support maps onto itself, and in-box
    // fixed points stay fixed, so this is a permutation of the box.
    let mut table = vec![0usize; boxed.len()];
    for i in 0..boxed.rows() {
        for j in 0..boxed.cols() {
            let img = pi.apply(grid.index(r0 + i, c0 + j));
            let (ir, jc) = grid.coords(img);
            debug_assert!(ir >= r0 && ir <= r1 && jc >= c0 && jc <= c1);
            table[boxed.index(i, j)] = boxed.index(ir - r0, jc - c0);
        }
    }
    // Defects that fall inside the window, in box coordinates. Defects
    // outside cannot touch any box edge, so they drop out — which is what
    // lets a defective instance share an entry with a pristine one whose
    // moved region looks identical.
    let in_window = |v: usize| {
        let (i, j) = grid.coords(v);
        i >= r0 && i <= r1 && j >= c0 && j <= c1
    };
    let to_box = |v: usize| {
        let (i, j) = grid.coords(v);
        boxed.index(i - r0, j - c0)
    };
    let box_defects: Vec<usize> = dead_vertices
        .iter()
        .copied()
        .filter(|&v| in_window(v))
        .map(to_box)
        .collect();
    let box_dead_edges: Vec<(usize, usize)> = dead_edges
        .iter()
        .filter(|&&(u, v)| in_window(u) && in_window(v))
        .map(|&(u, v)| {
            let (u, v) = (to_box(u), to_box(v));
            (u.min(v), u.max(v))
        })
        .collect();
    if !box_live_part_is_routable(boxed, &table, &box_defects, &box_dead_edges) {
        return None;
    }

    // Minimize (rows, cols, defects, dead edges, table) over the dihedral
    // orbit. With no defects this is the original (rows, cols, table)
    // order — empty defect lists never break a tie differently — so pure
    // grid instances keep their historical canonical pick.
    type Candidate = (
        usize,
        usize,
        Vec<usize>,
        Vec<(usize, usize)>,
        Vec<usize>,
        GridSymmetry,
    );
    let mut best: Option<Candidate> = None;
    for sym in GridSymmetry::all() {
        let target = sym.target(boxed);
        let mut cand_table = vec![0usize; boxed.len()];
        for (v, &img) in table.iter().enumerate() {
            cand_table[sym.apply(boxed, v)] = sym.apply(boxed, img);
        }
        let mut cand_defects: Vec<usize> =
            box_defects.iter().map(|&v| sym.apply(boxed, v)).collect();
        cand_defects.sort_unstable();
        let mut cand_edges: Vec<(usize, usize)> = box_dead_edges
            .iter()
            .map(|&(u, v)| {
                let (u, v) = (sym.apply(boxed, u), sym.apply(boxed, v));
                (u.min(v), u.max(v))
            })
            .collect();
        cand_edges.sort_unstable();
        let better = match &best {
            None => true,
            Some((br, bc, bd, be, bt, _)) => {
                (
                    target.rows(),
                    target.cols(),
                    &cand_defects,
                    &cand_edges,
                    &cand_table,
                ) < (*br, *bc, bd, be, bt)
            }
        };
        if better {
            best = Some((
                target.rows(),
                target.cols(),
                cand_defects,
                cand_edges,
                cand_table,
                sym,
            ));
        }
    }
    let (rows, cols, defects, dead, canonical_table, sym) = best.expect("orbit is non-empty");
    let canonical_grid = Grid::new(rows, cols);
    let inv = sym.inverse();
    let to_original = (0..canonical_grid.len())
        .map(|v| {
            let (i, j) = boxed.coords(inv.apply(canonical_grid, v));
            grid.index(r0 + i, c0 + j)
        })
        .collect();
    let topology = if defects.is_empty() && dead.is_empty() {
        Topology::Grid(canonical_grid)
    } else {
        Topology::grid_with_defects(canonical_grid, &defects, &dead)
            .expect("a routable box keeps its moved tokens alive")
    };
    Some(CanonicalForm {
        topology,
        pi: Permutation::from_vec_unchecked(canonical_table),
        to_original,
    })
}

/// Whether the live part of the boxed instance is connected and every
/// moved token (and its destination) is alive. Routers reject anything
/// less: the routing frame of the canonical topology must be a connected
/// graph containing all moves.
fn box_live_part_is_routable(
    boxed: Grid,
    table: &[usize],
    defects: &[usize],
    dead_edges: &[(usize, usize)],
) -> bool {
    if defects.is_empty() && dead_edges.is_empty() {
        return true;
    }
    let n = boxed.len();
    let mut dead = vec![false; n];
    for &d in defects {
        dead[d] = true;
    }
    if (0..n).any(|v| table[v] != v && (dead[v] || dead[table[v]])) {
        return false;
    }
    // One BFS over the live subgraph: connected iff it reaches every
    // live vertex.
    let graph = boxed.to_graph();
    let Some(start) = (0..n).find(|&v| !dead[v]) else {
        return false;
    };
    let mut seen = vec![false; n];
    seen[start] = true;
    let mut queue = vec![start];
    while let Some(u) = queue.pop() {
        for v in graph.neighbors(u) {
            let edge = (u.min(v), u.max(v));
            if !dead[v] && !seen[v] && !dead_edges.contains(&edge) {
                seen[v] = true;
                queue.push(v);
            }
        }
    }
    (0..n).all(|v| dead[v] || seen[v])
}

/// Hit/miss/evict counters of a [`ShardedLru`], aggregated over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot (for per-batch
    /// statistics on a long-lived cache).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// A sharded LRU map from [`CanonicalKey`] to a cloneable value.
///
/// Keys are distributed over shards by a *fixed* FNV-1a hash (never the
/// std `RandomState` — shard placement decides eviction grouping, and the
/// engine's byte-determinism guarantee requires the same placement every
/// run). Each shard orders its entries by recency and evicts its own
/// least-recently-used entry when it outgrows `capacity / shards`
/// (rounded up). Lookups touch recency; all counters are atomic, so
/// shared references can be used concurrently — though the engine
/// serializes cache decisions on the submit thread precisely so that
/// hit/miss/evict sequences depend only on job order, never on worker
/// scheduling.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Vec<(CanonicalKey, V)>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache budgeted at `capacity` entries across `shards` shards
    /// (`shards` is clamped to at least 1 and at most `capacity.max(1)`).
    /// Each shard's budget is `capacity / shards` rounded **up**, so when
    /// `capacity` is not a shard multiple the cache admits up to
    /// `shards − 1` extra entries; [`ShardedLru::capacity`] reports the
    /// exact admitted total. `capacity == 0` disables caching: every
    /// lookup misses and inserts are dropped.
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.max(1).min(capacity.max(1));
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry budget across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard_index(&self, key: &CanonicalKey) -> usize {
        // FNV-1a over the key's bytes: deterministic across runs and
        // machines, unlike the std hasher.
        fn eat(h: u64, x: u64) -> u64 {
            x.to_le_bytes()
                .iter()
                .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100000001b3))
        }
        let mut h: u64 = 0xcbf29ce484222325;
        h = key
            .router
            .bytes()
            .fold(h, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3));
        // Full grids keep the historical `rows, cols` byte sequence so
        // shard placement (and therefore eviction grouping) of pure grid
        // workloads is unchanged; other variants prepend a `u64::MAX` tag
        // no grid can produce (a row count that large cannot be a key).
        match &key.topology {
            Topology::Grid(grid) => {
                h = eat(h, grid.rows() as u64);
                h = eat(h, grid.cols() as u64);
            }
            Topology::GridWithDefects { grid, dead_vertices, dead_edges } => {
                h = eat(h, u64::MAX);
                h = eat(h, 1);
                h = eat(h, grid.rows() as u64);
                h = eat(h, grid.cols() as u64);
                for &d in dead_vertices {
                    h = eat(h, d as u64);
                }
                h = eat(h, u64::MAX);
                for &(u, v) in dead_edges {
                    h = eat(h, u as u64);
                    h = eat(h, v as u64);
                }
            }
            Topology::HeavyHex { rows, cols } => {
                h = eat(h, u64::MAX);
                h = eat(h, 2);
                h = eat(h, *rows as u64);
                h = eat(h, *cols as u64);
            }
            Topology::BrickWall { rows, cols } => {
                h = eat(h, u64::MAX);
                h = eat(h, 3);
                h = eat(h, *rows as u64);
                h = eat(h, *cols as u64);
            }
            Topology::Torus { rows, cols } => {
                h = eat(h, u64::MAX);
                h = eat(h, 4);
                h = eat(h, *rows as u64);
                h = eat(h, *cols as u64);
            }
        }
        for &img in &key.perm {
            h = eat(h, img as u64);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Lock shard `idx`. With a trace subscriber armed, the wait for the
    /// shard mutex is measured and emitted as a `cache.shard_lock` event;
    /// disarmed, this is exactly the bare `lock()` — no clock reads.
    fn lock_shard(&self, idx: usize) -> std::sync::MutexGuard<'_, Vec<(CanonicalKey, V)>> {
        if !qroute_obs::trace::armed() {
            return self.shards[idx].lock().expect("cache shard poisoned");
        }
        let start = std::time::Instant::now();
        let guard = self.shards[idx].lock().expect("cache shard poisoned");
        qroute_obs::trace::event(
            "cache.shard_lock",
            &[
                ("shard", qroute_obs::FieldValue::U64(idx as u64)),
                (
                    "wait_us",
                    qroute_obs::FieldValue::U64(start.elapsed().as_micros() as u64),
                ),
            ],
        );
        guard
    }

    /// Look up `key`, touching its recency on a hit.
    pub fn get(&self, key: &CanonicalKey) -> Option<V> {
        let idx = self.shard_index(key);
        let mut shard = self.lock_shard(idx);
        if let Some(pos) = shard.iter().position(|(k, _)| k == key) {
            let entry = shard.remove(pos);
            let value = entry.1.clone();
            shard.push(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            qroute_obs::trace::event(
                "cache.hit",
                &[("shard", qroute_obs::FieldValue::U64(idx as u64))],
            );
            Some(value)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            qroute_obs::trace::event(
                "cache.miss",
                &[("shard", qroute_obs::FieldValue::U64(idx as u64))],
            );
            None
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recently-used
    /// entry when the shard exceeds its budget.
    pub fn insert(&self, key: CanonicalKey, value: V) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let idx = self.shard_index(&key);
        let mut shard = self.lock_shard(idx);
        if let Some(pos) = shard.iter().position(|(k, _)| *k == key) {
            shard.remove(pos);
        }
        shard.push((key, value));
        if shard.len() > self.per_shard_capacity {
            shard.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            qroute_obs::trace::event(
                "cache.eviction",
                &[("shard", qroute_obs::FieldValue::U64(idx as u64))],
            );
        }
    }

    /// Atomic lookup-or-insert: returns `(value, inserted)`, holding the
    /// shard lock across the check and the insert so two threads racing
    /// on the same key agree on exactly one inserter.
    ///
    /// Counter-compatible with a `get` + `insert` pair — present keys
    /// count a hit and touch recency; absent keys count a miss, insert
    /// `make()`, and evict the shard's LRU entry if over budget — so a
    /// shared concurrent cache reports the same statistics shape the
    /// engine's serialized get/insert path does. With capacity 0 the
    /// miss is counted and `make()`'s value returned unstored.
    pub fn get_or_insert_with(&self, key: CanonicalKey, make: impl FnOnce() -> V) -> (V, bool) {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (make(), true);
        }
        let idx = self.shard_index(&key);
        let mut shard = self.lock_shard(idx);
        if let Some(pos) = shard.iter().position(|(k, _)| *k == key) {
            let entry = shard.remove(pos);
            let value = entry.1.clone();
            shard.push(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            qroute_obs::trace::event(
                "cache.hit",
                &[("shard", qroute_obs::FieldValue::U64(idx as u64))],
            );
            return (value, false);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        qroute_obs::trace::event(
            "cache.miss",
            &[("shard", qroute_obs::FieldValue::U64(idx as u64))],
        );
        let value = make();
        shard.push((key, value.clone()));
        if shard.len() > self.per_shard_capacity {
            shard.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            qroute_obs::trace::event(
                "cache.eviction",
                &[("shard", qroute_obs::FieldValue::U64(idx as u64))],
            );
        }
        (value, true)
    }

    /// Drop `key` from the cache, returning its value if present.
    /// Touches no hit/miss/eviction counter — the counters describe the
    /// deterministic lookup/capacity stream, and removal exists for
    /// *error* eviction (a slot whose compute timed out or panicked must
    /// not serve later duplicates), which is inherently fault-driven.
    pub fn remove(&self, key: &CanonicalKey) -> Option<V> {
        let mut shard = self.lock_shard(self.shard_index(key));
        let pos = shard.iter().position(|(k, _)| k == key)?;
        Some(shard.remove(pos).1)
    }

    /// Aggregate counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_core::{GridRouter, RouterKind};
    use qroute_perm::generators;

    /// Empty-state audit: the hit-rate ratio of a cache that has never
    /// been looked up is a finite literal zero, never NaN from 0/0.
    #[test]
    fn empty_cache_stats_hit_rate_is_finite_zero() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert!(stats.hit_rate().is_finite());
        let fresh: ShardedLru<u64> = ShardedLru::new(8, 2);
        assert_eq!(fresh.stats().hit_rate(), 0.0);
    }

    fn key(tag: usize) -> CanonicalKey {
        // Distinct degenerate keys for LRU plumbing tests.
        CanonicalKey {
            router: "ats".to_string(),
            topology: Topology::grid(1, tag + 1),
            perm: vec![0; tag + 1],
        }
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        // Single shard, capacity 2: the *least recently used* entry goes,
        // and a get() refreshes recency.
        let lru: ShardedLru<usize> = ShardedLru::new(2, 1);
        lru.insert(key(0), 10);
        lru.insert(key(1), 11);
        assert_eq!(lru.get(&key(0)), Some(10)); // 1 is now LRU
        lru.insert(key(2), 12); // evicts 1
        assert_eq!(lru.get(&key(1)), None);
        assert_eq!(lru.get(&key(0)), Some(10));
        assert_eq!(lru.get(&key(2)), Some(12));
        let stats = lru.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reinserting_refreshes_instead_of_evicting() {
        let lru: ShardedLru<usize> = ShardedLru::new(2, 1);
        lru.insert(key(0), 1);
        lru.insert(key(1), 2);
        lru.insert(key(0), 3); // refresh, not a third entry
        assert_eq!(lru.stats().evictions, 0);
        assert_eq!(lru.get(&key(0)), Some(3));
        lru.insert(key(2), 4); // now key(1) is LRU
        assert_eq!(lru.get(&key(1)), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let lru: ShardedLru<usize> = ShardedLru::new(0, 8);
        lru.insert(key(0), 1);
        assert_eq!(lru.get(&key(0)), None);
        assert_eq!(lru.stats().misses, 1);
        assert_eq!(lru.stats().hits, 0);
        assert_eq!(lru.get_or_insert_with(key(0), || 2), (2, true));
        assert_eq!(lru.get(&key(0)), None, "nothing is ever stored");
    }

    #[test]
    fn get_or_insert_matches_get_plus_insert_counters() {
        let lru: ShardedLru<usize> = ShardedLru::new(2, 1);
        assert_eq!(lru.get_or_insert_with(key(0), || 10), (10, true));
        assert_eq!(lru.get_or_insert_with(key(0), || 99), (10, false));
        assert_eq!(lru.get_or_insert_with(key(1), || 11), (11, true));
        // key(0) was touched by its hit, so key(1) is... no: the hit on
        // key(0) predates key(1)'s insert, making key(0) the LRU entry.
        assert_eq!(lru.get_or_insert_with(key(2), || 12), (12, true));
        let stats = lru.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 1));
        assert_eq!(lru.get(&key(0)), None, "LRU entry evicted");
        assert_eq!(lru.get(&key(1)), Some(11));
        assert_eq!(lru.get(&key(2)), Some(12));
    }

    #[test]
    fn shard_locked_concurrent_access_keeps_counters_consistent() {
        // 8 threads hammer one shared cache with overlapping key sets:
        // counters must add up exactly (hits + misses == lookups) and
        // every thread racing on the same key must agree on one value —
        // the per-shard locking the daemon relies on.
        use std::sync::Arc;
        // Per-shard budget 32 ≫ 16 keys: even if the fixed hash lumped
        // every key into one shard, nothing could evict.
        let lru: Arc<ShardedLru<usize>> = Arc::new(ShardedLru::new(256, 8));
        const THREADS: usize = 8;
        const OPS: usize = 200;
        const DISTINCT: usize = 16;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let lru = Arc::clone(&lru);
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        let tag = (i + t) % DISTINCT;
                        let (value, _) = lru.get_or_insert_with(key(tag), || tag * 7);
                        assert_eq!(value, tag * 7, "racing inserters must agree");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = lru.stats();
        assert_eq!(stats.hits + stats.misses, (THREADS * OPS) as u64);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses, DISTINCT as u64, "one inserter per key");
    }

    #[test]
    fn sharding_never_loses_entries_under_capacity() {
        let lru: ShardedLru<usize> = ShardedLru::new(64, 8);
        for t in 0..32 {
            lru.insert(key(t), t);
        }
        for t in 0..32 {
            assert_eq!(lru.get(&key(t)), Some(t), "tag {t}");
        }
        assert_eq!(lru.stats().evictions, 0);
    }

    #[test]
    fn canonical_identity_is_the_unit_box() {
        let form = canonicalize(Grid::new(6, 6), &Permutation::identity(36));
        let grid = form.topology.as_grid().expect("clean canonical grid");
        assert_eq!((grid.rows(), grid.cols()), (1, 1));
        assert!(form.pi.is_identity());
    }

    #[test]
    fn translation_and_symmetry_collide_on_one_key() {
        // A 2-cycle in the top-left corner, the same pattern translated,
        // reflected, transposed, and on a different grid size: one orbit,
        // one key.
        let base = Grid::new(6, 6);
        let mut map: Vec<usize> = (0..36).collect();
        map.swap(base.index(0, 0), base.index(0, 1));
        let pi = Permutation::from_vec(map).unwrap();
        let reference = canonicalize(base, &pi).key("ats");

        let mut translated: Vec<usize> = (0..36).collect();
        translated.swap(base.index(4, 3), base.index(4, 4));
        let vertical: Grid = base;
        let mut vert_map: Vec<usize> = (0..36).collect();
        vert_map.swap(vertical.index(2, 5), vertical.index(3, 5));
        let other = Grid::new(9, 4);
        let mut other_map: Vec<usize> = (0..36).collect();
        other_map.swap(other.index(8, 2), other.index(8, 3));
        for (grid, map) in [(base, translated), (vertical, vert_map), (other, other_map)] {
            let key = canonicalize(grid, &Permutation::from_vec(map).unwrap()).key("ats");
            assert_eq!(key, reference);
        }
    }

    #[test]
    fn canonical_box_prefers_smaller_row_count() {
        // A vertical 2-cycle canonicalizes to the 1x2 (not 2x1) box.
        let grid = Grid::new(5, 5);
        let mut map: Vec<usize> = (0..25).collect();
        map.swap(grid.index(1, 2), grid.index(2, 2));
        let form = canonicalize(grid, &Permutation::from_vec(map).unwrap());
        let boxed = form.topology.as_grid().expect("clean canonical grid");
        assert_eq!((boxed.rows(), boxed.cols()), (1, 2));
    }

    #[test]
    fn replay_realizes_the_original_instance() {
        let grid = Grid::new(7, 5);
        let graph = grid.to_graph();
        for seed in 0..6 {
            let pi = generators::block_local(grid, 3, 3, seed);
            let form = canonicalize(grid, &pi);
            let canonical_grid = form.topology.as_grid().expect("clean canonical grid");
            for router in [RouterKind::locality_aware(), RouterKind::Ats] {
                let canonical_schedule = router.route(canonical_grid, &form.pi);
                let replayed = form.replay(&canonical_schedule);
                assert_eq!(replayed.depth(), canonical_schedule.depth());
                assert_eq!(replayed.size(), canonical_schedule.size());
                replayed.validate_on(&graph).unwrap();
                assert!(
                    replayed.realizes(&pi),
                    "{} seed {seed}: replay must realize the original",
                    router.name()
                );
            }
        }
    }

    /// Conjugate a defective-grid instance by a dihedral symmetry of its
    /// full grid: the transformed instance is "the same physical
    /// situation seen in a mirror" and must share a canonical key.
    fn conjugate(
        grid: Grid,
        sym: GridSymmetry,
        defects: &[usize],
        dead_edges: &[(usize, usize)],
        pi: &Permutation,
    ) -> (Topology, Permutation) {
        let mut table = vec![0usize; grid.len()];
        for v in 0..grid.len() {
            table[sym.apply(grid, v)] = sym.apply(grid, pi.apply(v));
        }
        let defects: Vec<usize> = defects.iter().map(|&v| sym.apply(grid, v)).collect();
        let dead_edges: Vec<(usize, usize)> = dead_edges
            .iter()
            .map(|&(u, v)| (sym.apply(grid, u), sym.apply(grid, v)))
            .collect();
        let topology = Topology::grid_with_defects(sym.target(grid), &defects, &dead_edges)
            .expect("conjugated pattern stays valid");
        (topology, Permutation::from_vec_unchecked(table))
    }

    #[test]
    fn defect_orbit_collides_on_one_key() {
        // A 4-cycle around a dead center vertex, versus every dihedral
        // transform of it and a translated copy on a bigger grid: one
        // orbit, one key.
        let grid = Grid::new(5, 5);
        let mut map: Vec<usize> = (0..25).collect();
        let ring = [
            grid.index(1, 1),
            grid.index(1, 3),
            grid.index(3, 3),
            grid.index(3, 1),
        ];
        for w in 0..4 {
            map[ring[w]] = ring[(w + 1) % 4];
        }
        let pi = Permutation::from_vec(map).unwrap();
        let defects = [grid.index(2, 2)];
        let topology = Topology::grid_with_defects(grid, &defects, &[]).unwrap();
        let reference = canonicalize_topology(&topology, &pi).key("ats");
        assert!(
            matches!(reference.topology, Topology::GridWithDefects { .. }),
            "in-box defect must survive canonicalization"
        );

        for sym in GridSymmetry::all() {
            let (topology, pi) = conjugate(grid, sym, &defects, &[], &pi);
            assert_eq!(
                canonicalize_topology(&topology, &pi).key("ats"),
                reference,
                "{sym:?}"
            );
        }

        // Same pattern translated to the bottom-right of a 7×8 grid.
        let big = Grid::new(7, 8);
        let mut map: Vec<usize> = (0..big.len()).collect();
        let ring = [
            big.index(3, 4),
            big.index(3, 6),
            big.index(5, 6),
            big.index(5, 4),
        ];
        for w in 0..4 {
            map[ring[w]] = ring[(w + 1) % 4];
        }
        let topology = Topology::grid_with_defects(big, &[big.index(4, 5)], &[]).unwrap();
        let key = canonicalize_topology(&topology, &Permutation::from_vec(map).unwrap()).key("ats");
        assert_eq!(key, reference);
    }

    #[test]
    fn defect_outside_the_box_shares_the_clean_grid_entry() {
        // The dead corner is outside the support box, so the instance
        // canonicalizes to the same pure-grid key as its pristine twin.
        let grid = Grid::new(4, 4);
        let mut map: Vec<usize> = (0..16).collect();
        map.swap(grid.index(0, 0), grid.index(0, 1));
        let pi = Permutation::from_vec(map).unwrap();
        let topology = Topology::grid_with_defects(grid, &[grid.index(3, 3)], &[]).unwrap();
        let defective = canonicalize_topology(&topology, &pi);
        assert_eq!(defective.key("ats"), canonicalize(grid, &pi).key("ats"));
        assert!(defective.topology.as_grid().is_some());
    }

    #[test]
    fn identity_on_a_defective_grid_is_the_clean_unit_box() {
        let grid = Grid::new(3, 3);
        let topology = Topology::grid_with_defects(grid, &[0], &[]).unwrap();
        let form = canonicalize_topology(&topology, &Permutation::identity(9));
        let unit = form.topology.as_grid().expect("clean canonical grid");
        assert_eq!((unit.rows(), unit.cols()), (1, 1));
        assert!(form.pi.is_identity());
    }

    #[test]
    fn stranded_box_falls_back_to_the_full_frame() {
        // Swapping (1,1) ↔ (1,3) with (1,2) dead: the 1×3 support box is
        // cut in half, so the canonical frame must widen to the full grid
        // (where the detour around the dead vertex exists).
        let grid = Grid::new(5, 5);
        let mut map: Vec<usize> = (0..25).collect();
        map.swap(grid.index(1, 1), grid.index(1, 3));
        let pi = Permutation::from_vec(map).unwrap();
        let topology = Topology::grid_with_defects(grid, &[grid.index(1, 2)], &[]).unwrap();
        let form = canonicalize_topology(&topology, &pi);
        assert_eq!(form.topology.len(), 25, "full-frame fallback");
        let schedule = RouterKind::Ats
            .route_on(&form.topology, &form.pi)
            .expect("ats routes any connected topology");
        let replayed = form.replay(&schedule);
        replayed.validate_on(&topology.graph()).unwrap();
        assert!(replayed.realizes(&pi));
    }

    #[test]
    fn boxed_defective_replay_realizes_the_original() {
        // In-box dead vertex and dead edge: route the canonical
        // representative, replay, and check validity on the original.
        let grid = Grid::new(6, 6);
        let mut map: Vec<usize> = (0..36).collect();
        let ring = [
            grid.index(2, 2),
            grid.index(2, 4),
            grid.index(4, 4),
            grid.index(4, 2),
        ];
        for w in 0..4 {
            map[ring[w]] = ring[(w + 1) % 4];
        }
        let pi = Permutation::from_vec(map).unwrap();
        let dead_edges = [(grid.index(2, 2), grid.index(2, 3))];
        let topology = Topology::grid_with_defects(grid, &[grid.index(3, 3)], &dead_edges).unwrap();
        let form = canonicalize_topology(&topology, &pi);
        assert!(matches!(form.topology, Topology::GridWithDefects { .. }));
        let schedule = RouterKind::Ats
            .route_on(&form.topology, &form.pi)
            .expect("ats routes any connected topology");
        let replayed = form.replay(&schedule);
        assert_eq!(replayed.depth(), schedule.depth());
        replayed.validate_on(&topology.graph()).unwrap();
        assert!(replayed.realizes(&pi));
    }
}
