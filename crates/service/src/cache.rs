//! Canonical instance keying and the sharded LRU routed-schedule cache.
//!
//! Real transpilation campaigns route the *same* local permutation
//! patterns over and over, just placed at different grid positions and
//! orientations (the blockwise locality structure the paper's Algorithm 1
//! exploits). Naive memoization on `(grid, π)` misses all of that reuse;
//! this module instead keys the cache on a **canonical form**:
//!
//! 1. restrict `π` to the bounding box of its support (the tokens that
//!    actually move) — this normalizes *translation* and makes the key
//!    independent of the surrounding grid size;
//! 2. minimize over the eight [`GridSymmetry`] elements (reflections and
//!    transposition) — two instances that are mirror images share a key.
//!
//! The engine routes the canonical representative on its bounding-box
//! grid and replays the cached [`RoutingSchedule`] back through the
//! inverse symmetry ([`CanonicalForm::replay`]), which preserves layer
//! structure (identical depth and size) and maps box edges to coupling
//! edges of the original grid. Differential tests in
//! `tests/cache_differential.rs` prove the replayed schedule is feasible
//! and realizes the original permutation for arbitrary instances.

use qroute_core::RoutingSchedule;
use qroute_perm::Permutation;
use qroute_topology::{Grid, GridSymmetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Identity of a canonical routing instance: the resolved router
/// (label *and* configuration) plus the canonical bounding-box
/// dimensions and permutation table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    /// Resolved router discriminator. The engine uses the router's
    /// `Debug` rendering, not just its [`qroute_core::RouterKind::label`]
    /// — two differently-configured routers sharing a label (e.g. two
    /// `LocalityAware` option sets) must never share cached schedules.
    pub router: String,
    /// Canonical box rows.
    pub rows: usize,
    /// Canonical box columns.
    pub cols: usize,
    /// Canonical permutation image table on the box.
    pub perm: Vec<usize>,
}

/// The canonical form of a `(grid, π)` instance: the representative to
/// route, plus the vertex map to replay schedules back into the original
/// frame.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The canonical bounding-box grid the representative lives on.
    pub grid: Grid,
    /// The canonical permutation on [`CanonicalForm::grid`].
    pub pi: Permutation,
    /// Canonical box vertex id → original grid vertex id (an embedding:
    /// box edges map to grid edges).
    to_original: Vec<usize>,
}

impl CanonicalForm {
    /// The cache key of this form under a resolved router discriminator
    /// (see [`CanonicalKey::router`]).
    pub fn key(&self, router: impl Into<String>) -> CanonicalKey {
        CanonicalKey {
            router: router.into(),
            rows: self.grid.rows(),
            cols: self.grid.cols(),
            perm: self.pi.as_slice().to_vec(),
        }
    }

    /// Replay a schedule computed for the canonical representative back
    /// into the original instance's frame. Depth and size are invariant;
    /// the result is valid on the original grid and realizes the original
    /// permutation (extended by the identity outside the box).
    pub fn replay(&self, schedule: &RoutingSchedule) -> RoutingSchedule {
        schedule.relabeled(|v| self.to_original[v])
    }
}

/// Compute the canonical form of `(grid, pi)`.
///
/// The support bounding box is translated to the origin, and the
/// lexicographically smallest `(rows, cols, table)` over all eight
/// dihedral transforms is chosen — a deterministic pick, so equal-orbit
/// instances collide on the same [`CanonicalKey`]. The identity
/// permutation (empty support) canonicalizes to the `1 × 1` box, which
/// every router handles with an empty schedule.
pub fn canonicalize(grid: Grid, pi: &Permutation) -> CanonicalForm {
    assert_eq!(grid.len(), pi.len(), "permutation does not fit the grid");
    // Support bounding box; (0,0)..=(0,0) for the identity.
    let (mut r0, mut c0, mut r1, mut c1) = (usize::MAX, usize::MAX, 0, 0);
    for v in 0..pi.len() {
        if pi.apply(v) != v {
            let (i, j) = grid.coords(v);
            r0 = r0.min(i);
            c0 = c0.min(j);
            r1 = r1.max(i);
            c1 = c1.max(j);
        }
    }
    if r0 == usize::MAX {
        (r0, c0, r1, c1) = (0, 0, 0, 0);
    }
    let boxed = Grid::new(r1 - r0 + 1, c1 - c0 + 1);
    // π restricted to the box: the support maps onto itself, and in-box
    // fixed points stay fixed, so this is a permutation of the box.
    let mut table = vec![0usize; boxed.len()];
    for i in 0..boxed.rows() {
        for j in 0..boxed.cols() {
            let img = pi.apply(grid.index(r0 + i, c0 + j));
            let (ir, jc) = grid.coords(img);
            debug_assert!(ir >= r0 && ir <= r1 && jc >= c0 && jc <= c1);
            table[boxed.index(i, j)] = boxed.index(ir - r0, jc - c0);
        }
    }

    // Minimize (rows, cols, table) over the dihedral orbit.
    let mut best: Option<(usize, usize, Vec<usize>, GridSymmetry)> = None;
    for sym in GridSymmetry::all() {
        let target = sym.target(boxed);
        let mut cand = vec![0usize; boxed.len()];
        for (v, &img) in table.iter().enumerate() {
            cand[sym.apply(boxed, v)] = sym.apply(boxed, img);
        }
        let candidate = (target.rows(), target.cols(), cand, sym);
        let better = match &best {
            None => true,
            Some((br, bc, bt, _)) => (candidate.0, candidate.1, &candidate.2) < (*br, *bc, bt),
        };
        if better {
            best = Some(candidate);
        }
    }
    let (rows, cols, canonical_table, sym) = best.expect("orbit is non-empty");
    let canonical_grid = Grid::new(rows, cols);
    let inv = sym.inverse();
    let to_original = (0..canonical_grid.len())
        .map(|v| {
            let (i, j) = boxed.coords(inv.apply(canonical_grid, v));
            grid.index(r0 + i, c0 + j)
        })
        .collect();
    CanonicalForm {
        grid: canonical_grid,
        pi: Permutation::from_vec_unchecked(canonical_table),
        to_original,
    }
}

/// Hit/miss/evict counters of a [`ShardedLru`], aggregated over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot (for per-batch
    /// statistics on a long-lived cache).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// A sharded LRU map from [`CanonicalKey`] to a cloneable value.
///
/// Keys are distributed over shards by a *fixed* FNV-1a hash (never the
/// std `RandomState` — shard placement decides eviction grouping, and the
/// engine's byte-determinism guarantee requires the same placement every
/// run). Each shard orders its entries by recency and evicts its own
/// least-recently-used entry when it outgrows `capacity / shards`
/// (rounded up). Lookups touch recency; all counters are atomic, so
/// shared references can be used concurrently — though the engine
/// serializes cache decisions on the submit thread precisely so that
/// hit/miss/evict sequences depend only on job order, never on worker
/// scheduling.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Vec<(CanonicalKey, V)>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache budgeted at `capacity` entries across `shards` shards
    /// (`shards` is clamped to at least 1 and at most `capacity.max(1)`).
    /// Each shard's budget is `capacity / shards` rounded **up**, so when
    /// `capacity` is not a shard multiple the cache admits up to
    /// `shards − 1` extra entries; [`ShardedLru::capacity`] reports the
    /// exact admitted total. `capacity == 0` disables caching: every
    /// lookup misses and inserts are dropped.
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.max(1).min(capacity.max(1));
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry budget across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard_index(&self, key: &CanonicalKey) -> usize {
        // FNV-1a over the key's bytes: deterministic across runs and
        // machines, unlike the std hasher.
        fn eat(h: u64, x: u64) -> u64 {
            x.to_le_bytes()
                .iter()
                .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100000001b3))
        }
        let mut h: u64 = 0xcbf29ce484222325;
        h = key
            .router
            .bytes()
            .fold(h, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3));
        h = eat(h, key.rows as u64);
        h = eat(h, key.cols as u64);
        for &img in &key.perm {
            h = eat(h, img as u64);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Look up `key`, touching its recency on a hit.
    pub fn get(&self, key: &CanonicalKey) -> Option<V> {
        let mut shard = self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned");
        if let Some(pos) = shard.iter().position(|(k, _)| k == key) {
            let entry = shard.remove(pos);
            let value = entry.1.clone();
            shard.push(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(value)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recently-used
    /// entry when the shard exceeds its budget.
    pub fn insert(&self, key: CanonicalKey, value: V) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shards[self.shard_index(&key)]
            .lock()
            .expect("cache shard poisoned");
        if let Some(pos) = shard.iter().position(|(k, _)| *k == key) {
            shard.remove(pos);
        }
        shard.push((key, value));
        if shard.len() > self.per_shard_capacity {
            shard.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Aggregate counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_core::{GridRouter, RouterKind};
    use qroute_perm::generators;

    fn key(tag: usize) -> CanonicalKey {
        // Distinct degenerate keys for LRU plumbing tests.
        CanonicalKey { router: "ats".to_string(), rows: 1, cols: tag + 1, perm: vec![0; tag + 1] }
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        // Single shard, capacity 2: the *least recently used* entry goes,
        // and a get() refreshes recency.
        let lru: ShardedLru<usize> = ShardedLru::new(2, 1);
        lru.insert(key(0), 10);
        lru.insert(key(1), 11);
        assert_eq!(lru.get(&key(0)), Some(10)); // 1 is now LRU
        lru.insert(key(2), 12); // evicts 1
        assert_eq!(lru.get(&key(1)), None);
        assert_eq!(lru.get(&key(0)), Some(10));
        assert_eq!(lru.get(&key(2)), Some(12));
        let stats = lru.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reinserting_refreshes_instead_of_evicting() {
        let lru: ShardedLru<usize> = ShardedLru::new(2, 1);
        lru.insert(key(0), 1);
        lru.insert(key(1), 2);
        lru.insert(key(0), 3); // refresh, not a third entry
        assert_eq!(lru.stats().evictions, 0);
        assert_eq!(lru.get(&key(0)), Some(3));
        lru.insert(key(2), 4); // now key(1) is LRU
        assert_eq!(lru.get(&key(1)), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let lru: ShardedLru<usize> = ShardedLru::new(0, 8);
        lru.insert(key(0), 1);
        assert_eq!(lru.get(&key(0)), None);
        assert_eq!(lru.stats().misses, 1);
        assert_eq!(lru.stats().hits, 0);
    }

    #[test]
    fn sharding_never_loses_entries_under_capacity() {
        let lru: ShardedLru<usize> = ShardedLru::new(64, 8);
        for t in 0..32 {
            lru.insert(key(t), t);
        }
        for t in 0..32 {
            assert_eq!(lru.get(&key(t)), Some(t), "tag {t}");
        }
        assert_eq!(lru.stats().evictions, 0);
    }

    #[test]
    fn canonical_identity_is_the_unit_box() {
        let form = canonicalize(Grid::new(6, 6), &Permutation::identity(36));
        assert_eq!((form.grid.rows(), form.grid.cols()), (1, 1));
        assert!(form.pi.is_identity());
    }

    #[test]
    fn translation_and_symmetry_collide_on_one_key() {
        // A 2-cycle in the top-left corner, the same pattern translated,
        // reflected, transposed, and on a different grid size: one orbit,
        // one key.
        let base = Grid::new(6, 6);
        let mut map: Vec<usize> = (0..36).collect();
        map.swap(base.index(0, 0), base.index(0, 1));
        let pi = Permutation::from_vec(map).unwrap();
        let reference = canonicalize(base, &pi).key("ats");

        let mut translated: Vec<usize> = (0..36).collect();
        translated.swap(base.index(4, 3), base.index(4, 4));
        let vertical: Grid = base;
        let mut vert_map: Vec<usize> = (0..36).collect();
        vert_map.swap(vertical.index(2, 5), vertical.index(3, 5));
        let other = Grid::new(9, 4);
        let mut other_map: Vec<usize> = (0..36).collect();
        other_map.swap(other.index(8, 2), other.index(8, 3));
        for (grid, map) in [(base, translated), (vertical, vert_map), (other, other_map)] {
            let key = canonicalize(grid, &Permutation::from_vec(map).unwrap()).key("ats");
            assert_eq!(key, reference);
        }
    }

    #[test]
    fn canonical_box_prefers_smaller_row_count() {
        // A vertical 2-cycle canonicalizes to the 1x2 (not 2x1) box.
        let grid = Grid::new(5, 5);
        let mut map: Vec<usize> = (0..25).collect();
        map.swap(grid.index(1, 2), grid.index(2, 2));
        let form = canonicalize(grid, &Permutation::from_vec(map).unwrap());
        assert_eq!((form.grid.rows(), form.grid.cols()), (1, 2));
    }

    #[test]
    fn replay_realizes_the_original_instance() {
        let grid = Grid::new(7, 5);
        let graph = grid.to_graph();
        for seed in 0..6 {
            let pi = generators::block_local(grid, 3, 3, seed);
            let form = canonicalize(grid, &pi);
            for router in [RouterKind::locality_aware(), RouterKind::Ats] {
                let canonical_schedule = router.route(form.grid, &form.pi);
                let replayed = form.replay(&canonical_schedule);
                assert_eq!(replayed.depth(), canonical_schedule.depth());
                assert_eq!(replayed.size(), canonical_schedule.size());
                replayed.validate_on(&graph).unwrap();
                assert!(
                    replayed.realizes(&pi),
                    "{} seed {seed}: replay must realize the original",
                    router.name()
                );
            }
        }
    }
}
