//! The batched multi-worker routing engine.
//!
//! Architecture, in job order on the *submit* side and job-id order on
//! the *collect* side:
//!
//! ```text
//!  submit (caller thread, strictly in input order)
//!    parse/resolve → auto-dispatch → canonicalize → cache decision
//!        ├─ hit:  attach the cached slot (maybe still in flight)
//!        └─ miss: insert a fresh slot, push the canonical instance
//!                 onto the bounded work queue  ── backpressure ──┐
//!  workers (std threads)                                         │
//!    pop canonical instance → route → fill its slot  ◄───────────┘
//!  collect (caller thread, strictly in job-id order)
//!    wait on each job's slot → replay through the inverse symmetry
//!    → emit RouteOutcome
//! ```
//!
//! **Every cache decision happens on the submit thread, in input
//! order.** That single invariant is what makes the engine
//! byte-deterministic: hit/miss statuses, LRU evictions, and `auto`
//! router resolution depend only on the job sequence, never on worker
//! scheduling — so `--workers 1` and `--workers 8` produce identical
//! output bytes (proved by `tests/engine_stress.rs`). Workers only ever
//! compute; hits share the *slot* (not the cache entry), so an eviction
//! between insert and use can never strand a job.
//!
//! Shutdown: dropping the engine closes the queue and sets a shutdown
//! flag; workers drain remaining items without routing them and exit, so
//! dropping mid-queue cannot deadlock.

use crate::cache::{canonicalize_topology, CacheStats, CanonicalForm, CanonicalKey, ShardedLru};
use crate::chaos::{self, ChaosConfig, ChaosState, ComputeFault};
use crate::dispatch::select_router_on;
use crate::errors::ServiceError;
use crate::job::{CacheStatus, RouteJob, RouteOutcome, RouterSpec};
use qroute_core::budget::{self, BudgetExceeded, CancelToken, QuietUnwind, RouteBudget};
use qroute_core::{GridRouter, RouterKind, RoutingSchedule, UnsupportedTopology};
use qroute_perm::{metrics, Permutation};
use qroute_topology::Topology;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine configuration. Construct via [`EngineConfig::builder`] (which
/// validates at [`EngineConfigBuilder::build`]) or [`Default`] and
/// struct update syntax; the daemon and `repro batch` both go through
/// the builder.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (clamped to at least 1). Output bytes do not
    /// depend on this.
    pub workers: usize,
    /// Total canonical-schedule cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards (see [`ShardedLru`]).
    pub cache_shards: usize,
    /// Bounded work-queue depth: how many routed-but-not-yet-started
    /// canonical instances may be in flight before `submit` blocks
    /// (backpressure; clamped to at least 1).
    pub queue_depth: usize,
    /// Per-connection in-flight job limit in the daemon: a connection
    /// with this many uncollected jobs gets `backpressure` error
    /// outcomes instead of queueing more (never a hang). Unused by the
    /// in-process [`Engine`], whose `submit` blocks instead.
    pub client_queue_depth: usize,
    /// Router policy for jobs that do not name one (`"router"` absent
    /// from the JSONL line).
    pub default_router: RouterSpec,
    /// Capture per-job wall-clock routing time. Off by default so
    /// outcome lines are byte-deterministic.
    pub timing: bool,
    /// Deadline in milliseconds applied to every job that does not carry
    /// its own `deadline_ms`. `None` (the default) means jobs without a
    /// wire deadline run unbounded.
    pub default_deadline_ms: Option<u64>,
    /// How many crashed workers the supervisor may respawn over the
    /// pool's lifetime. Once exhausted (and every worker is dead), the
    /// pool stops routing and answers queued jobs with `shutdown`
    /// errors instead of hanging.
    pub max_worker_restarts: u64,
    /// Base of the supervisor's exponential respawn backoff, in
    /// milliseconds (doubles per restart, capped at 100 ms).
    pub restart_backoff_ms: u64,
    /// Fault injection. Disarmed by default; see [`ChaosConfig`].
    pub chaos: ChaosConfig,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 4,
            cache_capacity: 1024,
            cache_shards: 8,
            queue_depth: 32,
            client_queue_depth: 256,
            default_router: RouterSpec::Auto,
            timing: false,
            default_deadline_ms: None,
            max_worker_restarts: 64,
            restart_backoff_ms: 1,
            chaos: ChaosConfig::off(),
        }
    }
}

impl EngineConfig {
    /// Start a validated configuration build from the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { config: EngineConfig::default() }
    }
}

/// Builder for [`EngineConfig`]: setters stage values, [`Self::build`]
/// validates the combination and returns a typed
/// [`ServiceError::Config`] on nonsense (zero workers, zero queue
/// depth, ...) instead of silently clamping.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Worker thread count (must be ≥ 1 at build time).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Total canonical-schedule cache capacity. `0` is valid: it
    /// disables caching.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Cache shard count (must be ≥ 1 at build time).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards;
        self
    }

    /// Bounded work-queue depth (must be ≥ 1 at build time).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Per-connection in-flight limit for the daemon (must be ≥ 1 at
    /// build time).
    pub fn client_queue_depth(mut self, depth: usize) -> Self {
        self.config.client_queue_depth = depth;
        self
    }

    /// Router policy for jobs that do not name a router.
    pub fn default_router(mut self, router: RouterSpec) -> Self {
        self.config.default_router = router;
        self
    }

    /// Capture per-job wall-clock routing time (costs byte-determinism).
    pub fn timing(mut self, timing: bool) -> Self {
        self.config.timing = timing;
        self
    }

    /// Deadline (milliseconds, must be ≥ 1 at build time) for jobs that
    /// carry no `deadline_ms` of their own.
    pub fn default_deadline_ms(mut self, ms: u64) -> Self {
        self.config.default_deadline_ms = Some(ms);
        self
    }

    /// Lifetime cap on supervisor worker respawns (0 disables respawn).
    pub fn max_worker_restarts(mut self, restarts: u64) -> Self {
        self.config.max_worker_restarts = restarts;
        self
    }

    /// Base of the supervisor's exponential respawn backoff, in ms.
    pub fn restart_backoff_ms(mut self, ms: u64) -> Self {
        self.config.restart_backoff_ms = ms;
        self
    }

    /// Arm fault injection. The only way chaos turns on — there is no
    /// ambient (env-var) switch.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = chaos;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<EngineConfig, ServiceError> {
        let c = &self.config;
        for (value, what) in [
            (c.workers, "workers"),
            (c.queue_depth, "queue_depth"),
            (c.client_queue_depth, "client_queue_depth"),
            (c.cache_shards, "cache_shards"),
        ] {
            if value == 0 {
                return Err(ServiceError::Config(format!("{what} must be at least 1")));
            }
        }
        if c.default_deadline_ms == Some(0) {
            return Err(ServiceError::Config(
                "default_deadline_ms must be at least 1".to_string(),
            ));
        }
        Ok(self.config)
    }
}

/// A routed canonical instance as produced by a worker.
#[derive(Debug, Clone)]
pub(crate) struct RoutedEntry {
    pub(crate) schedule: Arc<RoutingSchedule>,
    pub(crate) route_ms: f64,
}

/// A write-once slot a worker fills and any number of jobs wait on.
#[derive(Debug, Default)]
pub(crate) struct RouteSlot {
    filled: Mutex<Option<Result<RoutedEntry, ServiceError>>>,
    ready: Condvar,
    cancel: CancelToken,
}

impl RouteSlot {
    fn fill(&self, value: Result<RoutedEntry, ServiceError>) {
        let mut slot = self.filled.lock().expect("slot poisoned");
        debug_assert!(slot.is_none(), "slot filled twice");
        *slot = Some(value);
        self.ready.notify_all();
    }

    /// The token the deadline-armed compute of this slot watches.
    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Ask the compute filling this slot to give up at its next
    /// cooperative checkpoint.
    pub(crate) fn cancel(&self) {
        self.cancel.cancel();
    }

    pub(crate) fn wait(&self) -> Result<RoutedEntry, ServiceError> {
        let mut slot = self.filled.lock().expect("slot poisoned");
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("slot poisoned");
        }
        slot.as_ref().expect("checked above").clone()
    }

    /// [`RouteSlot::wait`] with a deadline. `None` means the deadline
    /// passed with the slot still empty; the slot itself stays valid —
    /// its compute may still fill it for later waiters.
    pub(crate) fn wait_until(
        &self,
        deadline: Instant,
    ) -> Option<Result<RoutedEntry, ServiceError>> {
        let mut slot = self.filled.lock().expect("slot poisoned");
        loop {
            if let Some(value) = slot.as_ref() {
                return Some(value.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("slot poisoned");
            slot = guard;
        }
    }
}

/// One unit of worker work: route a canonical instance into its slot.
pub(crate) struct WorkItem {
    pub(crate) topology: Topology,
    pub(crate) pi: Permutation,
    pub(crate) router: RouterKind,
    pub(crate) slot: Arc<RouteSlot>,
    pub(crate) timing: bool,
    /// The slot's cache key, so fault paths can evict the error-bound
    /// entry (a later duplicate then recomputes instead of replaying the
    /// fault).
    pub(crate) key: CanonicalKey,
    /// The deadline/cancellation this compute must respect.
    pub(crate) budget: RouteBudget,
    /// The effective deadline in milliseconds, for the `timeout` error
    /// payload (`None` = unbounded; then only cancellation can expire
    /// the budget).
    pub(crate) deadline_ms: Option<u64>,
}

impl WorkItem {
    fn timeout_error(&self) -> ServiceError {
        ServiceError::Timeout { deadline_ms: self.deadline_ms.unwrap_or(0) }
    }

    fn panic_error(&self) -> ServiceError {
        ServiceError::RouterPanic {
            router: self.router.label().to_string(),
            topology: self.topology.to_string(),
        }
    }
}

/// Messages to the pool's supervisor thread.
enum SupervisorMsg {
    /// A worker thread died unwinding (sent from its [`DeathGuard`]).
    WorkerDied,
    /// The pool is shutting down: stop respawning, let the channel close.
    Stop,
}

/// Dropped at the end of every worker thread; reports the death to the
/// supervisor only when the thread is unwinding from a panic.
struct DeathGuard {
    deaths: mpsc::Sender<SupervisorMsg>,
}

impl Drop for DeathGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.deaths.send(SupervisorMsg::WorkerDied);
        }
    }
}

/// Everything a worker thread needs, cloneable so the supervisor can
/// respawn replacements. Holds a death-channel sender, so the channel
/// only closes once every worker (and the supervisor's template) is
/// gone.
#[derive(Clone)]
struct WorkerContext {
    receiver: Arc<Mutex<Receiver<WorkItem>>>,
    shutdown: Arc<AtomicBool>,
    cache: Arc<ShardedLru<Arc<RouteSlot>>>,
    chaos: Arc<ChaosState>,
    deaths: mpsc::Sender<SupervisorMsg>,
}

fn spawn_worker(ctx: WorkerContext) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Injected crashes and budget unwinds are expected control flow;
        // keep them off stderr (real router panics still print).
        budget::suppress_quiet_panics();
        let _guard = DeathGuard { deaths: ctx.deaths.clone() };
        worker_main(&ctx);
    })
}

fn worker_main(ctx: &WorkerContext) {
    loop {
        // Hold the lock only while popping, never while routing.
        let item = match ctx.receiver.lock().expect("queue poisoned").recv() {
            Ok(item) => item,
            Err(_) => return, // queue closed: all work done
        };
        if ctx.shutdown.load(Ordering::SeqCst) {
            item.slot.fill(Err(ServiceError::Shutdown));
            continue; // drain remaining items without routing
        }
        if item.budget.is_exceeded() {
            // Expired while queued: answer without routing at all.
            ctx.cache.remove(&item.key);
            item.slot.fill(Err(item.timeout_error()));
            continue;
        }
        match ctx.chaos.on_compute() {
            ComputeFault::None => {}
            ComputeFault::Delay(delay) => {
                if !chaos::sleep_within_budget(delay, &item.budget) {
                    ctx.cache.remove(&item.key);
                    item.slot.fill(Err(item.timeout_error()));
                    continue;
                }
            }
            ComputeFault::Panic => {
                // Record the outcome for the poisoned job first, then
                // crash the thread to exercise the supervisor.
                ctx.cache.remove(&item.key);
                item.slot.fill(Err(item.panic_error()));
                std::panic::panic_any(QuietUnwind("chaos-injected worker crash"));
            }
        }
        let t0 = Instant::now();
        let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            budget::with_budget(&item.budget, || {
                item.router.route_on(&item.topology, &item.pi)
            })
        }));
        let route_ms = if item.timing {
            t0.elapsed().as_secs_f64() * 1e3
        } else {
            0.0
        };
        match routed {
            Ok(Ok(Ok(schedule))) => {
                item.slot
                    .fill(Ok(RoutedEntry { schedule: Arc::new(schedule), route_ms }));
            }
            // Unsupported topologies are normally rejected on the submit
            // thread; this arm is a backstop.
            Ok(Ok(Err(unsupported))) => {
                item.slot.fill(Err(ServiceError::Unsupported(unsupported)));
            }
            Ok(Err(BudgetExceeded)) => {
                ctx.cache.remove(&item.key);
                item.slot.fill(Err(item.timeout_error()));
            }
            Err(payload) => {
                // A real router bug: contain it to this job, evict the
                // poisoned key, then let the thread die so the supervisor
                // decides whether to respawn.
                ctx.cache.remove(&item.key);
                item.slot.fill(Err(item.panic_error()));
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The supervisor loop: respawn dead workers within the restart budget,
/// and once every worker is gone for good, keep the queue drained (with
/// `shutdown` errors) so no submitter can ever hang on a dead pool.
fn supervise(
    msgs: mpsc::Receiver<SupervisorMsg>,
    mut workers: Vec<JoinHandle<()>>,
    template: WorkerContext,
    restarts: Arc<AtomicU64>,
    max_restarts: u64,
    backoff_base_ms: u64,
) {
    let drain_receiver = Arc::clone(&template.receiver);
    let mut template = Some(template);
    let mut alive = workers.len();
    let mut used: u64 = 0;
    loop {
        match msgs.recv() {
            // Every death sender is gone: all workers exited cleanly.
            Err(_) => break,
            Ok(SupervisorMsg::Stop) => {
                // Drop the template (and its death sender) so the channel
                // closes once the remaining workers exit.
                template = None;
            }
            Ok(SupervisorMsg::WorkerDied) => {
                alive = alive.saturating_sub(1);
                let respawn = template
                    .as_ref()
                    .filter(|ctx| !ctx.shutdown.load(Ordering::SeqCst) && used < max_restarts)
                    .cloned();
                match respawn {
                    Some(ctx) => {
                        used += 1;
                        // Count before the backoff sleep so stats polled
                        // during the backoff already see the restart.
                        restarts.fetch_add(1, Ordering::SeqCst);
                        let backoff = backoff_base_ms
                            .saturating_mul(1u64 << (used - 1).min(6))
                            .min(100);
                        if backoff > 0 {
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                        workers.push(spawn_worker(ctx));
                        alive += 1;
                    }
                    None if alive == 0 => {
                        // Restart budget exhausted (or shutting down) with
                        // no routing capacity left: answer everything
                        // still queued with `shutdown` errors rather than
                        // leaving waiters to hang.
                        let receiver = Arc::clone(&drain_receiver);
                        workers.push(std::thread::spawn(move || loop {
                            let item = match receiver.lock().expect("queue poisoned").recv() {
                                Ok(item) => item,
                                Err(_) => return,
                            };
                            item.slot.fill(Err(ServiceError::Shutdown));
                        }));
                        alive = 1;
                    }
                    None => {}
                }
            }
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// The routing worker threads behind an [`Engine`] or a daemon: a
/// bounded work queue drained by `std` threads that route canonical
/// instances into their slots, watched by a supervisor thread that
/// respawns crashed workers (within `max_worker_restarts`, with
/// exponential backoff). Shared so the daemon reuses the exact
/// routing/panic-containment/drain semantics the engine's tests pin
/// down.
pub(crate) struct WorkerPool {
    sender: Option<SyncSender<WorkItem>>,
    supervisor: Option<JoinHandle<()>>,
    control: Option<mpsc::Sender<SupervisorMsg>>,
    shutdown: Arc<AtomicBool>,
    restarts: Arc<AtomicU64>,
    chaos: Arc<ChaosState>,
}

impl WorkerPool {
    /// Spawn the configured number of routing threads (plus the
    /// supervisor) over a bounded queue, all sharing `cache` for
    /// fault-path evictions.
    pub(crate) fn spawn(
        config: &EngineConfig,
        cache: Arc<ShardedLru<Arc<RouteSlot>>>,
    ) -> WorkerPool {
        let (sender, receiver) = sync_channel::<WorkItem>(config.queue_depth.max(1));
        let shutdown = Arc::new(AtomicBool::new(false));
        let chaos = Arc::new(ChaosState::new(config.chaos.clone()));
        let restarts = Arc::new(AtomicU64::new(0));
        let (deaths, death_rx) = mpsc::channel::<SupervisorMsg>();
        let ctx = WorkerContext {
            receiver: Arc::new(Mutex::new(receiver)),
            shutdown: Arc::clone(&shutdown),
            cache,
            chaos: Arc::clone(&chaos),
            deaths: deaths.clone(),
        };
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| spawn_worker(ctx.clone()))
            .collect();
        let (max_restarts, backoff_ms) = (config.max_worker_restarts, config.restart_backoff_ms);
        let counter = Arc::clone(&restarts);
        let supervisor = std::thread::spawn(move || {
            supervise(death_rx, workers, ctx, counter, max_restarts, backoff_ms)
        });
        WorkerPool {
            sender: Some(sender),
            supervisor: Some(supervisor),
            control: Some(deaths),
            shutdown,
            restarts,
            chaos,
        }
    }

    /// Queue one canonical instance, blocking when the queue is full
    /// (backpressure).
    pub(crate) fn dispatch(&self, item: WorkItem) {
        self.sender
            .as_ref()
            .expect("pool alive while dispatching")
            .send(item)
            .expect("workers outlive the pool");
    }

    /// Make workers fill every still-queued slot with
    /// [`ServiceError::Shutdown`] instead of routing it.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// How many crashed workers the supervisor has respawned.
    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// The pool's live fault-injection state (disarmed ⇒ all zeros).
    pub(crate) fn chaos(&self) -> &Arc<ChaosState> {
        &self.chaos
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes idle workers; the flag makes busy
        // ones drain queued items without routing them. The supervisor
        // joins every worker (original, respawned, or drainer) before
        // exiting itself.
        self.begin_shutdown();
        self.sender.take();
        if let Some(control) = self.control.take() {
            let _ = control.send(SupervisorMsg::Stop);
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

/// Everything decided about a resolvable job *before* the cache is
/// consulted: the resolved router, the instance, its canonical form and
/// cache key, and the depth lower bound. Pure — safe to run on any
/// thread (daemon connections plan on their own threads so
/// canonicalization never serializes on a shared submit thread).
pub(crate) struct RoutePlan {
    pub(crate) router: RouterKind,
    pub(crate) lower_bound: usize,
    pub(crate) canonical: Box<CanonicalForm>,
    pub(crate) key: CanonicalKey,
    pub(crate) topology: Topology,
    pub(crate) pi: Permutation,
}

/// Resolve and plan one job: materialize the instance, pick the router
/// (job's own, else `default_router`), reject unsupported pairings
/// before they touch any cache, bound the depth, and canonicalize.
pub(crate) fn plan_route(
    job: &RouteJob,
    default_router: &RouterSpec,
) -> Result<RoutePlan, ServiceError> {
    let (topology, pi) = job.resolve()?;
    let router = match job.router.as_ref().unwrap_or(default_router) {
        RouterSpec::Auto => select_router_on(&topology, &pi),
        RouterSpec::Fixed(kind) => kind.clone(),
    };
    if !router.supports(&topology) {
        // Reject before touching the cache: an unsupported pairing must
        // neither pollute the key space nor reach a worker.
        return Err(ServiceError::Unsupported(UnsupportedTopology {
            router: router.label(),
            topology: topology.to_string(),
        }));
    }
    let lower_bound = match topology.as_grid() {
        Some(grid) => metrics::depth_lower_bound(grid, &pi),
        None => {
            let graph = topology.graph();
            let oracle = topology.oracle(&graph);
            metrics::depth_lower_bound_oracle(&oracle, &pi)
        }
    };
    let canonical = canonicalize_topology(&topology, &pi);
    // Key on the router's full Debug rendering, not its label:
    // differently-configured routers with the same label must not share
    // cached schedules.
    let key = canonical.key(format!("{router:?}"));
    Ok(RoutePlan { router, lower_bound, canonical: Box::new(canonical), key, topology, pi })
}

/// A submitted-but-not-yet-collected job.
struct PendingJob {
    id: u64,
    side: Option<usize>,
    v: Option<u64>,
    plan: Plan,
}

enum Plan {
    Error(ServiceError),
    Route {
        router: &'static str,
        cache: CacheStatus,
        lower_bound: usize,
        canonical: Box<CanonicalForm>,
        topology: Topology,
        pi: Permutation,
        slot: Arc<RouteSlot>,
        /// When to stop waiting on the slot (job deadline, or the
        /// engine-wide default), fixed at submission time.
        deadline: Option<Instant>,
        /// The same deadline in milliseconds, for the error payload.
        deadline_ms: Option<u64>,
    },
}

/// A collected result: the outcome line plus (for routed jobs) the
/// replayed schedule in the job's original frame.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// The JSONL outcome.
    pub outcome: RouteOutcome,
    /// The feasible schedule on the job's own grid (`None` for errored
    /// jobs).
    pub schedule: Option<RoutingSchedule>,
}

/// The routing engine: worker pool + canonical cache + deterministic
/// reassembly.
pub struct Engine {
    config: EngineConfig,
    cache: Arc<ShardedLru<Arc<RouteSlot>>>,
    pool: WorkerPool,
    next_id: u64,
    pending: VecDeque<PendingJob>,
}

impl Engine {
    /// Spawn the worker pool.
    pub fn new(config: EngineConfig) -> Engine {
        let cache = Arc::new(ShardedLru::new(config.cache_capacity, config.cache_shards));
        Engine {
            pool: WorkerPool::spawn(&config, Arc::clone(&cache)),
            cache,
            config,
            next_id: 0,
            pending: VecDeque::new(),
        }
    }

    /// Submit one job; returns its id (0-based submission index). Blocks
    /// when the work queue is full (backpressure). All cache and
    /// dispatch decisions happen here, in submission order.
    pub fn submit(&mut self, job: &RouteJob) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let plan = match plan_route(job, &self.config.default_router) {
            Err(e) => Plan::Error(e),
            Ok(plan) => {
                let deadline_ms = job.deadline_ms.or(self.config.default_deadline_ms);
                let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                let (cache, slot) = match self.cache.get(&plan.key) {
                    Some(slot) => (CacheStatus::Hit, slot),
                    None => {
                        let slot = Arc::new(RouteSlot::default());
                        self.cache.insert(plan.key.clone(), Arc::clone(&slot));
                        // Unbounded jobs keep the zero-overhead routing
                        // path: no deadline means nobody ever cancels, so
                        // the budget stays unarmed.
                        let budget = match deadline {
                            None => RouteBudget::unlimited(),
                            Some(at) => RouteBudget::unlimited()
                                .deadline(at)
                                .cancel_token(slot.cancel_token()),
                        };
                        self.pool.dispatch(WorkItem {
                            topology: plan.canonical.topology.clone(),
                            pi: plan.canonical.pi.clone(),
                            router: plan.router.clone(),
                            slot: Arc::clone(&slot),
                            timing: self.config.timing,
                            key: plan.key,
                            budget,
                            deadline_ms,
                        });
                        (CacheStatus::Miss, slot)
                    }
                };
                Plan::Route {
                    router: plan.router.label(),
                    cache,
                    lower_bound: plan.lower_bound,
                    canonical: plan.canonical,
                    topology: plan.topology,
                    pi: plan.pi,
                    slot,
                    deadline,
                    deadline_ms,
                }
            }
        };
        self.pending
            .push_back(PendingJob { id, side: Some(job.side), v: job.v, plan });
        qroute_obs::trace::event(
            "engine.submit",
            &[
                ("job", qroute_obs::FieldValue::U64(id)),
                (
                    "pending",
                    qroute_obs::FieldValue::U64(self.pending.len() as u64),
                ),
            ],
        );
        id
    }

    /// Record a job that failed before it could even be constructed
    /// (e.g. an unparseable JSONL line), consuming the next id so output
    /// ids keep matching input line numbers.
    pub fn submit_error(&mut self, error: ServiceError) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending
            .push_back(PendingJob { id, side: None, v: None, plan: Plan::Error(error) });
        id
    }

    /// Collect the oldest uncollected job, blocking until its result is
    /// ready. Returns `None` when everything submitted has been
    /// collected. Results always come back in job-id order.
    pub fn collect_next(&mut self) -> Option<RouteResult> {
        let job = self.pending.pop_front()?;
        Some(match job.plan {
            Plan::Error(error) => RouteResult {
                outcome: RouteOutcome::from_error(job.id, job.side, job.v, &error),
                schedule: None,
            },
            Plan::Route {
                router,
                cache,
                lower_bound,
                canonical,
                topology,
                pi,
                slot,
                deadline,
                deadline_ms,
            } => {
                let waited = match deadline {
                    None => slot.wait(),
                    Some(at) => match slot.wait_until(at) {
                        Some(result) => result,
                        None => {
                            // The deadline passed mid-compute. Cancel the
                            // compute only if this job dispatched it: a
                            // cache hit's waiter must not poison the
                            // compute another job is still entitled to.
                            if matches!(cache, CacheStatus::Miss) {
                                slot.cancel();
                            }
                            Err(ServiceError::Timeout { deadline_ms: deadline_ms.unwrap_or(0) })
                        }
                    },
                };
                match waited {
                    Err(e) => RouteResult {
                        outcome: RouteOutcome::from_error(job.id, job.side, job.v, &e),
                        schedule: None,
                    },
                    Ok(entry) => {
                        let schedule = canonical.replay(&entry.schedule);
                        debug_assert!(
                            schedule.realizes(&pi),
                            "replayed schedule must realize the job's permutation"
                        );
                        debug_assert!(schedule.validate_on(&topology.graph()).is_ok());
                        RouteResult {
                            outcome: RouteOutcome {
                                v: job.v,
                                id: job.id,
                                side: job.side,
                                router: Some(router.to_string()),
                                cache: Some(cache.as_str().to_string()),
                                depth: Some(entry.schedule.depth()),
                                size: Some(entry.schedule.size()),
                                lower_bound: Some(lower_bound),
                                time_ms: self.config.timing.then_some(match cache {
                                    CacheStatus::Miss => entry.route_ms,
                                    CacheStatus::Hit => 0.0,
                                }),
                                code: None,
                                error: None,
                            },
                            schedule: Some(schedule),
                        }
                    }
                }
            }
        })
    }

    /// Collect and discard every submitted-but-uncollected job, leaving
    /// the engine empty and reusable. Blocks until in-flight canonical
    /// routes finish (workers never abandon a slot).
    pub fn drain(&mut self) {
        while self.collect_next().is_some() {}
    }

    /// Route a batch: submit everything in order, collect everything in
    /// job-id order, return the outcomes.
    pub fn run(&mut self, jobs: impl IntoIterator<Item = RouteJob>) -> Vec<RouteOutcome> {
        self.run_detailed(jobs)
            .into_iter()
            .map(|r| r.outcome)
            .collect()
    }

    /// [`Engine::run`], but also returning each job's replayed schedule.
    ///
    /// Panic-safe: if the `jobs` iterator panics mid-stream, every job
    /// it already yielded is drained before the panic resumes, so the
    /// engine is left empty (not half-drained) and stays usable — and a
    /// later `run` cannot return a stale predecessor's outcomes.
    pub fn run_detailed(&mut self, jobs: impl IntoIterator<Item = RouteJob>) -> Vec<RouteResult> {
        let submitted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for job in jobs {
                self.submit(&job);
            }
        }));
        if let Err(panic) = submitted {
            self.drain();
            std::panic::resume_unwind(panic);
        }
        let mut out = Vec::new();
        while let Some(result) = self.collect_next() {
            out.push(result);
        }
        out
    }

    /// Number of submitted-but-not-yet-collected jobs. Long job streams
    /// should interleave submission with collection once this exceeds a
    /// window (results arrive in id order either way), keeping resident
    /// schedules bounded instead of proportional to the stream length.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cache counters since engine construction (snapshot-diff with
    /// [`CacheStats::since`] for per-batch numbers).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// How many crashed workers the pool's supervisor has respawned.
    pub fn worker_restarts(&self) -> u64 {
        self.pool.restarts()
    }

    /// Live fault-injection counters (all zero when chaos is disarmed).
    pub fn chaos(&self) -> &ChaosState {
        self.pool.chaos()
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // The pool's own Drop closes the queue and joins the workers;
        // flagging first makes busy workers drain queued items without
        // routing them, so dropping mid-queue cannot deadlock.
        self.pool.begin_shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::RouterSpec;
    use qroute_perm::generators;
    use qroute_topology::Grid;

    fn tiny_engine(workers: usize, cache_capacity: usize) -> Engine {
        Engine::new(EngineConfig { workers, cache_capacity, ..EngineConfig::default() })
    }

    #[test]
    fn identical_jobs_hit_the_cache() {
        let mut engine = tiny_engine(2, 64);
        let job = RouteJob::from_class(6, "ats", "random", 1).unwrap();
        let out = engine.run(vec![job.clone(), job.clone(), job]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(out[1].cache.as_deref(), Some("hit"));
        assert_eq!(out[2].cache.as_deref(), Some("hit"));
        assert_eq!(out[0].depth, out[1].depth);
        assert_eq!(out[0].size, out[2].size);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn outcomes_come_back_in_submission_order() {
        let mut engine = tiny_engine(4, 0);
        let jobs: Vec<RouteJob> = (0..20)
            .map(|seed| RouteJob::from_class(5, "auto", "random", seed).unwrap())
            .collect();
        let out = engine.run(jobs);
        let ids: Vec<u64> = out.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        // Capacity 0: nothing is ever served from cache.
        assert!(out.iter().all(|o| o.cache.as_deref() == Some("miss")));
    }

    #[test]
    fn error_jobs_yield_error_outcomes_in_place() {
        let mut engine = tiny_engine(2, 16);
        engine.submit(&RouteJob::from_class(4, "ats", "random", 0).unwrap());
        engine.submit_error(ServiceError::Parse("line 2 was garbage".to_string()));
        engine.submit(&RouteJob {
            side: 3,
            router: None,
            perm: crate::job::PermSpec::Explicit(vec![0; 9]),
            topology: crate::job::TopologySpec::Grid,
            v: None,
            deadline_ms: None,
        });
        let a = engine.collect_next().unwrap();
        let b = engine.collect_next().unwrap();
        let c = engine.collect_next().unwrap();
        assert!(engine.collect_next().is_none());
        assert_eq!(a.outcome.error, None);
        assert_eq!(a.outcome.code, None);
        assert_eq!(b.outcome.error.as_deref(), Some("line 2 was garbage"));
        assert_eq!(b.outcome.code, Some("parse"));
        assert_eq!(b.outcome.id, 1);
        assert!(c.outcome.error.is_some(), "duplicate images must fail");
        assert_eq!(c.outcome.side, Some(3));
    }

    #[test]
    fn detailed_results_carry_feasible_schedules() {
        let mut engine = tiny_engine(3, 64);
        let grid = Grid::new(6, 6);
        let jobs: Vec<RouteJob> = (0..4)
            .map(|seed| {
                RouteJob::explicit(
                    6,
                    RouterSpec::Fixed(RouterKind::locality_aware()),
                    &generators::block_local(grid, 2, 2, seed),
                )
            })
            .collect();
        let graph = grid.to_graph();
        for result in engine.run_detailed(jobs) {
            let schedule = result.schedule.expect("routed job has a schedule");
            schedule.validate_on(&graph).unwrap();
            assert_eq!(Some(schedule.depth()), result.outcome.depth);
            assert!(result.outcome.depth.unwrap() >= result.outcome.lower_bound.unwrap());
        }
    }

    #[test]
    fn symmetric_instances_share_cache_entries() {
        // The same block pattern translated across the grid: first job
        // misses, every translated copy hits and reports identical
        // depth/size.
        let grid = Grid::new(8, 8);
        let mut jobs = Vec::new();
        for (r, c) in [(0, 0), (0, 5), (5, 0), (5, 5)] {
            let mut map: Vec<usize> = (0..64).collect();
            let a = grid.index(r, c);
            let b = grid.index(r, c + 1);
            let d = grid.index(r + 1, c);
            map.swap(a, b);
            map.swap(b, d);
            jobs.push(RouteJob::explicit(
                8,
                RouterSpec::Fixed(RouterKind::Ats),
                &Permutation::from_vec(map).unwrap(),
            ));
        }
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(jobs);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        for o in &out[1..] {
            assert_eq!(o.cache.as_deref(), Some("hit"));
            assert_eq!(o.depth, out[0].depth);
            assert_eq!(o.size, out[0].size);
        }
    }

    #[test]
    fn differently_configured_routers_never_share_cache_entries() {
        use qroute_core::LocalRouteOptions;
        // Same label ("locality-aware"), different option sets: the
        // second job must be a cache miss routed with its own config.
        let pi = generators::random(36, 3);
        let default_opts = RouterKind::locality_aware();
        let tuned = RouterKind::LocalityAware(LocalRouteOptions {
            try_transpose: !LocalRouteOptions::default().try_transpose,
            ..LocalRouteOptions::default()
        });
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(vec![
            RouteJob::explicit(6, RouterSpec::Fixed(default_opts), &pi),
            RouteJob::explicit(6, RouterSpec::Fixed(tuned.clone()), &pi),
            RouteJob::explicit(6, RouterSpec::Fixed(tuned), &pi),
        ]);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(
            out[1].cache.as_deref(),
            Some("miss"),
            "same label, different config must not hit"
        );
        assert_eq!(out[2].cache.as_deref(), Some("hit"), "same config does hit");
        assert_eq!(out[1].depth, out[2].depth);
    }

    #[test]
    fn oversized_side_becomes_a_per_job_error() {
        let mut engine = tiny_engine(1, 4);
        let out = engine.run(vec![
            RouteJob::from_class(crate::job::MAX_SIDE + 1, "ats", "random", 0).unwrap(),
            RouteJob::from_class(4, "ats", "random", 0).unwrap(),
        ]);
        let err = out[0].error.as_deref().expect("oversized side errors");
        assert!(err.contains("out of range"), "{err}");
        assert_eq!(out[1].error, None, "the rest of the batch still routes");
    }

    #[test]
    fn timing_capture_is_opt_in() {
        let mut engine =
            Engine::new(EngineConfig { workers: 1, timing: true, ..EngineConfig::default() });
        let job = RouteJob::from_class(5, "ats", "random", 0).unwrap();
        let out = engine.run(vec![job.clone(), job]);
        assert!(out[0].time_ms.is_some());
        assert_eq!(out[1].time_ms, Some(0.0), "hits report zero routing time");

        let mut untimed = tiny_engine(1, 16);
        let job = RouteJob::from_class(5, "ats", "random", 0).unwrap();
        assert!(untimed.run(vec![job])[0].time_ms.is_none());
    }

    #[test]
    fn defective_and_heavy_hex_jobs_route_and_duplicates_hit() {
        let defect = RouteJob::from_json_line(
            r#"{"side": 5, "router": "ats", "class": "random", "seed": 7,
                "topology": {"kind": "defect", "defects": [12]}}"#,
        )
        .unwrap();
        let hex = RouteJob::from_json_line(
            r#"{"side": 4, "router": "ats", "class": "random", "seed": 7,
                "topology": {"kind": "heavy-hex"}}"#,
        )
        .unwrap();
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(vec![defect.clone(), defect, hex.clone(), hex]);
        for o in &out {
            assert_eq!(o.error, None, "job {} must route: {:?}", o.id, o.error);
            assert_eq!(o.router.as_deref(), Some("ats"));
            assert!(o.depth.unwrap() >= o.lower_bound.unwrap());
        }
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(out[1].cache.as_deref(), Some("hit"));
        assert_eq!(out[2].cache.as_deref(), Some("miss"));
        assert_eq!(out[3].cache.as_deref(), Some("hit"));
    }

    #[test]
    fn reflected_defect_patterns_share_a_cache_entry() {
        // The same dead-center 4-cycle, and its horizontal mirror: one
        // canonical entry, so the second job is a hit.
        let grid = Grid::new(5, 5);
        let ring = [
            grid.index(1, 1),
            grid.index(1, 3),
            grid.index(3, 3),
            grid.index(3, 1),
        ];
        let mut forward: Vec<usize> = (0..25).collect();
        let mut mirrored: Vec<usize> = (0..25).collect();
        for w in 0..4 {
            forward[ring[w]] = ring[(w + 1) % 4];
            mirrored[ring[(w + 1) % 4]] = ring[w];
        }
        let jobs: Vec<RouteJob> = [forward, mirrored]
            .into_iter()
            .map(|map| {
                RouteJob::from_json_line(&format!(
                    r#"{{"side": 5, "router": "ats", "perm": {map:?},
                        "topology": {{"kind": "defect", "defects": [12]}}}}"#
                ))
                .unwrap()
            })
            .collect();
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(jobs);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(out[1].cache.as_deref(), Some("hit"));
        assert_eq!(out[0].depth, out[1].depth);
    }

    #[test]
    fn grid_only_router_on_a_non_grid_topology_is_a_typed_error_outcome() {
        let bad = RouteJob::from_json_line(
            r#"{"side": 4, "router": "locality-aware", "class": "random", "seed": 0,
                "topology": {"kind": "heavy-hex"}}"#,
        )
        .unwrap();
        let good = RouteJob::from_class(4, "ats", "random", 0).unwrap();
        let mut engine = tiny_engine(2, 16);
        let out = engine.run(vec![bad, good]);
        let err = out[0].error.as_deref().expect("unsupported pairing errors");
        assert!(err.contains("full grids"), "{err}");
        assert!(err.contains("heavy-hex"), "{err}");
        assert_eq!(out[1].error, None, "the rest of the batch still routes");
        assert_eq!(out[0].code, Some("unsupported-router"));
        // The rejection never consulted the cache.
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn builder_validates_and_default_matches_default_impl() {
        let built = EngineConfig::builder()
            .workers(2)
            .cache_capacity(64)
            .queue_depth(8)
            .client_queue_depth(4)
            .default_router(RouterSpec::Fixed(RouterKind::Ats))
            .build()
            .unwrap();
        assert_eq!(built.workers, 2);
        assert_eq!(built.cache_capacity, 64);
        assert_eq!(built.queue_depth, 8);
        assert_eq!(built.client_queue_depth, 4);
        assert!(matches!(
            built.default_router,
            RouterSpec::Fixed(RouterKind::Ats)
        ));

        // A bare build() reproduces Default exactly.
        let (built, default) = (
            EngineConfig::builder().build().unwrap(),
            EngineConfig::default(),
        );
        assert_eq!(built.workers, default.workers);
        assert_eq!(built.cache_capacity, default.cache_capacity);
        assert_eq!(built.cache_shards, default.cache_shards);
        assert_eq!(built.queue_depth, default.queue_depth);
        assert_eq!(built.client_queue_depth, default.client_queue_depth);
        assert_eq!(built.timing, default.timing);

        for (builder, what) in [
            (EngineConfig::builder().workers(0), "workers"),
            (EngineConfig::builder().queue_depth(0), "queue_depth"),
            (
                EngineConfig::builder().client_queue_depth(0),
                "client_queue_depth",
            ),
            (EngineConfig::builder().cache_shards(0), "cache_shards"),
        ] {
            let err = builder.build().unwrap_err();
            assert_eq!(err.code(), "config", "{what}");
            assert!(err.to_string().contains(what), "{err}");
        }
    }

    #[test]
    fn routerless_jobs_follow_the_engine_default_policy() {
        let line = r#"{"side": 4, "class": "random", "seed": 0}"#;
        let job = RouteJob::from_json_line(line).unwrap();
        assert!(job.router.is_none());
        let mut pinned = Engine::new(
            EngineConfig::builder()
                .workers(1)
                .default_router(RouterSpec::Fixed(RouterKind::Ats))
                .build()
                .unwrap(),
        );
        let out = pinned.run(vec![job.clone()]);
        assert_eq!(out[0].router.as_deref(), Some("ats"));
        // ... while a job naming its own router overrides the default.
        let named = RouteJob::from_json_line(
            r#"{"side": 4, "router": "tree", "class": "random", "seed": 0}"#,
        )
        .unwrap();
        assert_eq!(pinned.run(vec![named])[0].router.as_deref(), Some("tree"));
    }

    #[test]
    fn panicking_job_iterator_leaves_the_engine_drained_and_usable() {
        let mut engine = tiny_engine(2, 16);
        let jobs = (0..6).map(|seed| {
            if seed == 4 {
                panic!("iterator exploded mid-stream");
            }
            RouteJob::from_class(4, "ats", "random", seed).unwrap()
        });
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run(jobs);
        }));
        assert!(unwound.is_err(), "the panic must propagate");
        // The four submitted jobs were drained, not left half-collected...
        assert_eq!(engine.pending_len(), 0);
        // ...and the engine still works, with fresh ids after the
        // consumed ones.
        let out = engine.run(vec![RouteJob::from_class(4, "ats", "random", 9).unwrap()]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 4);
        assert_eq!(out[0].error, None);
    }
}
