//! The batched multi-worker routing engine.
//!
//! Architecture, in job order on the *submit* side and job-id order on
//! the *collect* side:
//!
//! ```text
//!  submit (caller thread, strictly in input order)
//!    parse/resolve → auto-dispatch → canonicalize → cache decision
//!        ├─ hit:  attach the cached slot (maybe still in flight)
//!        └─ miss: insert a fresh slot, push the canonical instance
//!                 onto the bounded work queue  ── backpressure ──┐
//!  workers (std threads)                                         │
//!    pop canonical instance → route → fill its slot  ◄───────────┘
//!  collect (caller thread, strictly in job-id order)
//!    wait on each job's slot → replay through the inverse symmetry
//!    → emit RouteOutcome
//! ```
//!
//! **Every cache decision happens on the submit thread, in input
//! order.** That single invariant is what makes the engine
//! byte-deterministic: hit/miss statuses, LRU evictions, and `auto`
//! router resolution depend only on the job sequence, never on worker
//! scheduling — so `--workers 1` and `--workers 8` produce identical
//! output bytes (proved by `tests/engine_stress.rs`). Workers only ever
//! compute; hits share the *slot* (not the cache entry), so an eviction
//! between insert and use can never strand a job.
//!
//! Shutdown: dropping the engine closes the queue and sets a shutdown
//! flag; workers drain remaining items without routing them and exit, so
//! dropping mid-queue cannot deadlock.

use crate::cache::{canonicalize_topology, CacheStats, CanonicalForm, ShardedLru};
use crate::dispatch::select_router_on;
use crate::job::{CacheStatus, RouteJob, RouteOutcome};
use qroute_core::{GridRouter, RouterKind, RoutingSchedule, UnsupportedTopology};
use qroute_perm::{metrics, Permutation};
use qroute_topology::Topology;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (clamped to at least 1). Output bytes do not
    /// depend on this.
    pub workers: usize,
    /// Total canonical-schedule cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards (see [`ShardedLru`]).
    pub cache_shards: usize,
    /// Bounded work-queue depth: how many routed-but-not-yet-started
    /// canonical instances may be in flight before `submit` blocks
    /// (backpressure; clamped to at least 1).
    pub queue_depth: usize,
    /// Capture per-job wall-clock routing time. Off by default so
    /// outcome lines are byte-deterministic.
    pub timing: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 4,
            cache_capacity: 1024,
            cache_shards: 8,
            queue_depth: 32,
            timing: false,
        }
    }
}

/// A routed canonical instance as produced by a worker.
#[derive(Debug, Clone)]
struct RoutedEntry {
    schedule: Arc<RoutingSchedule>,
    route_ms: f64,
}

/// A write-once slot a worker fills and any number of jobs wait on.
#[derive(Debug, Default)]
struct RouteSlot {
    filled: Mutex<Option<Result<RoutedEntry, String>>>,
    ready: Condvar,
}

impl RouteSlot {
    fn fill(&self, value: Result<RoutedEntry, String>) {
        let mut slot = self.filled.lock().expect("slot poisoned");
        debug_assert!(slot.is_none(), "slot filled twice");
        *slot = Some(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<RoutedEntry, String> {
        let mut slot = self.filled.lock().expect("slot poisoned");
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("slot poisoned");
        }
        slot.as_ref().expect("checked above").clone()
    }
}

/// One unit of worker work: route a canonical instance into its slot.
struct WorkItem {
    topology: Topology,
    pi: Permutation,
    router: RouterKind,
    slot: Arc<RouteSlot>,
    timing: bool,
}

/// A submitted-but-not-yet-collected job.
struct PendingJob {
    id: u64,
    side: Option<usize>,
    plan: Plan,
}

enum Plan {
    Error(String),
    Route {
        router: &'static str,
        cache: CacheStatus,
        lower_bound: usize,
        canonical: Box<CanonicalForm>,
        topology: Topology,
        pi: Permutation,
        slot: Arc<RouteSlot>,
    },
}

/// A collected result: the outcome line plus (for routed jobs) the
/// replayed schedule in the job's original frame.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// The JSONL outcome.
    pub outcome: RouteOutcome,
    /// The feasible schedule on the job's own grid (`None` for errored
    /// jobs).
    pub schedule: Option<RoutingSchedule>,
}

/// The routing engine: worker pool + canonical cache + deterministic
/// reassembly.
pub struct Engine {
    config: EngineConfig,
    cache: ShardedLru<Arc<RouteSlot>>,
    sender: Option<SyncSender<WorkItem>>,
    workers: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    next_id: u64,
    pending: VecDeque<PendingJob>,
}

impl Engine {
    /// Spawn the worker pool.
    pub fn new(config: EngineConfig) -> Engine {
        let worker_count = config.workers.max(1);
        let (sender, receiver) = sync_channel::<WorkItem>(config.queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = (0..worker_count)
            .map(|_| {
                let receiver: Arc<Mutex<Receiver<WorkItem>>> = Arc::clone(&receiver);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || loop {
                    // Hold the lock only while popping, never while routing.
                    let item = match receiver.lock().expect("queue poisoned").recv() {
                        Ok(item) => item,
                        Err(_) => return, // queue closed: all work done
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        item.slot
                            .fill(Err("engine shut down before routing".to_string()));
                        continue; // drain remaining items without routing
                    }
                    let t0 = std::time::Instant::now();
                    let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        item.router.route_on(&item.topology, &item.pi)
                    }));
                    let route_ms = if item.timing {
                        t0.elapsed().as_secs_f64() * 1e3
                    } else {
                        0.0
                    };
                    item.slot.fill(match routed {
                        Ok(Ok(schedule)) => {
                            Ok(RoutedEntry { schedule: Arc::new(schedule), route_ms })
                        }
                        // Unsupported topologies are normally rejected on
                        // the submit thread; this arm is a backstop.
                        Ok(Err(unsupported)) => Err(unsupported.to_string()),
                        Err(_) => Err(format!(
                            "router {} panicked on a canonical {} instance",
                            item.router.label(),
                            item.topology
                        )),
                    });
                })
            })
            .collect();
        Engine {
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            config,
            sender: Some(sender),
            workers,
            shutdown,
            next_id: 0,
            pending: VecDeque::new(),
        }
    }

    /// Submit one job; returns its id (0-based submission index). Blocks
    /// when the work queue is full (backpressure). All cache and
    /// dispatch decisions happen here, in submission order.
    pub fn submit(&mut self, job: &RouteJob) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let plan = match job.resolve() {
            Err(e) => Plan::Error(e),
            Ok((topology, pi)) => {
                let router = match &job.router {
                    crate::job::RouterSpec::Auto => select_router_on(&topology, &pi),
                    crate::job::RouterSpec::Fixed(kind) => kind.clone(),
                };
                if !router.supports(&topology) {
                    // Reject before touching the cache: an unsupported
                    // pairing must neither pollute the key space nor
                    // reach a worker.
                    Plan::Error(
                        UnsupportedTopology {
                            router: router.label(),
                            topology: topology.to_string(),
                        }
                        .to_string(),
                    )
                } else {
                    let lower_bound = match topology.as_grid() {
                        Some(grid) => metrics::depth_lower_bound(grid, &pi),
                        None => {
                            let graph = topology.graph();
                            let oracle = topology.oracle(&graph);
                            metrics::depth_lower_bound_oracle(&oracle, &pi)
                        }
                    };
                    let canonical = canonicalize_topology(&topology, &pi);
                    // Key on the router's full Debug rendering, not its
                    // label: differently-configured routers with the same
                    // label must not share cached schedules.
                    let key = canonical.key(format!("{router:?}"));
                    let (cache, slot) = match self.cache.get(&key) {
                        Some(slot) => (CacheStatus::Hit, slot),
                        None => {
                            let slot = Arc::new(RouteSlot::default());
                            self.cache.insert(key, Arc::clone(&slot));
                            let item = WorkItem {
                                topology: canonical.topology.clone(),
                                pi: canonical.pi.clone(),
                                router: router.clone(),
                                slot: Arc::clone(&slot),
                                timing: self.config.timing,
                            };
                            self.sender
                                .as_ref()
                                .expect("engine alive while submitting")
                                .send(item)
                                .expect("workers outlive the engine");
                            (CacheStatus::Miss, slot)
                        }
                    };
                    Plan::Route {
                        router: router.label(),
                        cache,
                        lower_bound,
                        canonical: Box::new(canonical),
                        topology,
                        pi,
                        slot,
                    }
                }
            }
        };
        self.pending
            .push_back(PendingJob { id, side: Some(job.side), plan });
        id
    }

    /// Record a job that failed before it could even be constructed
    /// (e.g. an unparseable JSONL line), consuming the next id so output
    /// ids keep matching input line numbers.
    pub fn submit_error(&mut self, error: String) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending
            .push_back(PendingJob { id, side: None, plan: Plan::Error(error) });
        id
    }

    /// Collect the oldest uncollected job, blocking until its result is
    /// ready. Returns `None` when everything submitted has been
    /// collected. Results always come back in job-id order.
    pub fn collect_next(&mut self) -> Option<RouteResult> {
        let job = self.pending.pop_front()?;
        Some(match job.plan {
            Plan::Error(error) => RouteResult {
                outcome: RouteOutcome::from_error(job.id, job.side, error),
                schedule: None,
            },
            Plan::Route { router, cache, lower_bound, canonical, topology, pi, slot } => {
                match slot.wait() {
                    Err(e) => RouteResult {
                        outcome: RouteOutcome::from_error(job.id, job.side, e),
                        schedule: None,
                    },
                    Ok(entry) => {
                        let schedule = canonical.replay(&entry.schedule);
                        debug_assert!(
                            schedule.realizes(&pi),
                            "replayed schedule must realize the job's permutation"
                        );
                        debug_assert!(schedule.validate_on(&topology.graph()).is_ok());
                        RouteResult {
                            outcome: RouteOutcome {
                                id: job.id,
                                side: job.side,
                                router: Some(router.to_string()),
                                cache: Some(cache.as_str().to_string()),
                                depth: Some(entry.schedule.depth()),
                                size: Some(entry.schedule.size()),
                                lower_bound: Some(lower_bound),
                                time_ms: self.config.timing.then_some(match cache {
                                    CacheStatus::Miss => entry.route_ms,
                                    CacheStatus::Hit => 0.0,
                                }),
                                error: None,
                            },
                            schedule: Some(schedule),
                        }
                    }
                }
            }
        })
    }

    /// Route a batch: submit everything in order, collect everything in
    /// job-id order, return the outcomes.
    pub fn run(&mut self, jobs: impl IntoIterator<Item = RouteJob>) -> Vec<RouteOutcome> {
        self.run_detailed(jobs)
            .into_iter()
            .map(|r| r.outcome)
            .collect()
    }

    /// [`Engine::run`], but also returning each job's replayed schedule.
    pub fn run_detailed(&mut self, jobs: impl IntoIterator<Item = RouteJob>) -> Vec<RouteResult> {
        for job in jobs {
            self.submit(&job);
        }
        let mut out = Vec::new();
        while let Some(result) = self.collect_next() {
            out.push(result);
        }
        out
    }

    /// Number of submitted-but-not-yet-collected jobs. Long job streams
    /// should interleave submission with collection once this exceeds a
    /// window (results arrive in id order either way), keeping resident
    /// schedules bounded instead of proportional to the stream length.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cache counters since engine construction (snapshot-diff with
    /// [`CacheStats::since`] for per-batch numbers).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the channel wakes idle workers; the flag makes busy
        // ones drain queued items without routing them.
        self.shutdown.store(true, Ordering::SeqCst);
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::RouterSpec;
    use qroute_perm::generators;
    use qroute_topology::Grid;

    fn tiny_engine(workers: usize, cache_capacity: usize) -> Engine {
        Engine::new(EngineConfig { workers, cache_capacity, ..EngineConfig::default() })
    }

    #[test]
    fn identical_jobs_hit_the_cache() {
        let mut engine = tiny_engine(2, 64);
        let job = RouteJob::from_class(6, "ats", "random", 1).unwrap();
        let out = engine.run(vec![job.clone(), job.clone(), job]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(out[1].cache.as_deref(), Some("hit"));
        assert_eq!(out[2].cache.as_deref(), Some("hit"));
        assert_eq!(out[0].depth, out[1].depth);
        assert_eq!(out[0].size, out[2].size);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn outcomes_come_back_in_submission_order() {
        let mut engine = tiny_engine(4, 0);
        let jobs: Vec<RouteJob> = (0..20)
            .map(|seed| RouteJob::from_class(5, "auto", "random", seed).unwrap())
            .collect();
        let out = engine.run(jobs);
        let ids: Vec<u64> = out.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        // Capacity 0: nothing is ever served from cache.
        assert!(out.iter().all(|o| o.cache.as_deref() == Some("miss")));
    }

    #[test]
    fn error_jobs_yield_error_outcomes_in_place() {
        let mut engine = tiny_engine(2, 16);
        engine.submit(&RouteJob::from_class(4, "ats", "random", 0).unwrap());
        engine.submit_error("line 2 was garbage".to_string());
        engine.submit(&RouteJob {
            side: 3,
            router: RouterSpec::Auto,
            perm: crate::job::PermSpec::Explicit(vec![0; 9]),
            topology: crate::job::TopologySpec::Grid,
        });
        let a = engine.collect_next().unwrap();
        let b = engine.collect_next().unwrap();
        let c = engine.collect_next().unwrap();
        assert!(engine.collect_next().is_none());
        assert_eq!(a.outcome.error, None);
        assert_eq!(b.outcome.error.as_deref(), Some("line 2 was garbage"));
        assert_eq!(b.outcome.id, 1);
        assert!(c.outcome.error.is_some(), "duplicate images must fail");
        assert_eq!(c.outcome.side, Some(3));
    }

    #[test]
    fn detailed_results_carry_feasible_schedules() {
        let mut engine = tiny_engine(3, 64);
        let grid = Grid::new(6, 6);
        let jobs: Vec<RouteJob> = (0..4)
            .map(|seed| {
                RouteJob::explicit(
                    6,
                    RouterSpec::Fixed(RouterKind::locality_aware()),
                    &generators::block_local(grid, 2, 2, seed),
                )
            })
            .collect();
        let graph = grid.to_graph();
        for result in engine.run_detailed(jobs) {
            let schedule = result.schedule.expect("routed job has a schedule");
            schedule.validate_on(&graph).unwrap();
            assert_eq!(Some(schedule.depth()), result.outcome.depth);
            assert!(result.outcome.depth.unwrap() >= result.outcome.lower_bound.unwrap());
        }
    }

    #[test]
    fn symmetric_instances_share_cache_entries() {
        // The same block pattern translated across the grid: first job
        // misses, every translated copy hits and reports identical
        // depth/size.
        let grid = Grid::new(8, 8);
        let mut jobs = Vec::new();
        for (r, c) in [(0, 0), (0, 5), (5, 0), (5, 5)] {
            let mut map: Vec<usize> = (0..64).collect();
            let a = grid.index(r, c);
            let b = grid.index(r, c + 1);
            let d = grid.index(r + 1, c);
            map.swap(a, b);
            map.swap(b, d);
            jobs.push(RouteJob::explicit(
                8,
                RouterSpec::Fixed(RouterKind::Ats),
                &Permutation::from_vec(map).unwrap(),
            ));
        }
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(jobs);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        for o in &out[1..] {
            assert_eq!(o.cache.as_deref(), Some("hit"));
            assert_eq!(o.depth, out[0].depth);
            assert_eq!(o.size, out[0].size);
        }
    }

    #[test]
    fn differently_configured_routers_never_share_cache_entries() {
        use qroute_core::LocalRouteOptions;
        // Same label ("locality-aware"), different option sets: the
        // second job must be a cache miss routed with its own config.
        let pi = generators::random(36, 3);
        let default_opts = RouterKind::locality_aware();
        let tuned = RouterKind::LocalityAware(LocalRouteOptions {
            try_transpose: !LocalRouteOptions::default().try_transpose,
            ..LocalRouteOptions::default()
        });
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(vec![
            RouteJob::explicit(6, RouterSpec::Fixed(default_opts), &pi),
            RouteJob::explicit(6, RouterSpec::Fixed(tuned.clone()), &pi),
            RouteJob::explicit(6, RouterSpec::Fixed(tuned), &pi),
        ]);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(
            out[1].cache.as_deref(),
            Some("miss"),
            "same label, different config must not hit"
        );
        assert_eq!(out[2].cache.as_deref(), Some("hit"), "same config does hit");
        assert_eq!(out[1].depth, out[2].depth);
    }

    #[test]
    fn oversized_side_becomes_a_per_job_error() {
        let mut engine = tiny_engine(1, 4);
        let out = engine.run(vec![
            RouteJob::from_class(crate::job::MAX_SIDE + 1, "ats", "random", 0).unwrap(),
            RouteJob::from_class(4, "ats", "random", 0).unwrap(),
        ]);
        let err = out[0].error.as_deref().expect("oversized side errors");
        assert!(err.contains("out of range"), "{err}");
        assert_eq!(out[1].error, None, "the rest of the batch still routes");
    }

    #[test]
    fn timing_capture_is_opt_in() {
        let mut engine =
            Engine::new(EngineConfig { workers: 1, timing: true, ..EngineConfig::default() });
        let job = RouteJob::from_class(5, "ats", "random", 0).unwrap();
        let out = engine.run(vec![job.clone(), job]);
        assert!(out[0].time_ms.is_some());
        assert_eq!(out[1].time_ms, Some(0.0), "hits report zero routing time");

        let mut untimed = tiny_engine(1, 16);
        let job = RouteJob::from_class(5, "ats", "random", 0).unwrap();
        assert!(untimed.run(vec![job])[0].time_ms.is_none());
    }

    #[test]
    fn defective_and_heavy_hex_jobs_route_and_duplicates_hit() {
        let defect = RouteJob::from_json_line(
            r#"{"side": 5, "router": "ats", "class": "random", "seed": 7,
                "topology": {"kind": "defect", "defects": [12]}}"#,
        )
        .unwrap();
        let hex = RouteJob::from_json_line(
            r#"{"side": 4, "router": "ats", "class": "random", "seed": 7,
                "topology": {"kind": "heavy-hex"}}"#,
        )
        .unwrap();
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(vec![defect.clone(), defect, hex.clone(), hex]);
        for o in &out {
            assert_eq!(o.error, None, "job {} must route: {:?}", o.id, o.error);
            assert_eq!(o.router.as_deref(), Some("ats"));
            assert!(o.depth.unwrap() >= o.lower_bound.unwrap());
        }
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(out[1].cache.as_deref(), Some("hit"));
        assert_eq!(out[2].cache.as_deref(), Some("miss"));
        assert_eq!(out[3].cache.as_deref(), Some("hit"));
    }

    #[test]
    fn reflected_defect_patterns_share_a_cache_entry() {
        // The same dead-center 4-cycle, and its horizontal mirror: one
        // canonical entry, so the second job is a hit.
        let grid = Grid::new(5, 5);
        let ring = [
            grid.index(1, 1),
            grid.index(1, 3),
            grid.index(3, 3),
            grid.index(3, 1),
        ];
        let mut forward: Vec<usize> = (0..25).collect();
        let mut mirrored: Vec<usize> = (0..25).collect();
        for w in 0..4 {
            forward[ring[w]] = ring[(w + 1) % 4];
            mirrored[ring[(w + 1) % 4]] = ring[w];
        }
        let jobs: Vec<RouteJob> = [forward, mirrored]
            .into_iter()
            .map(|map| {
                RouteJob::from_json_line(&format!(
                    r#"{{"side": 5, "router": "ats", "perm": {map:?},
                        "topology": {{"kind": "defect", "defects": [12]}}}}"#
                ))
                .unwrap()
            })
            .collect();
        let mut engine = tiny_engine(2, 64);
        let out = engine.run(jobs);
        assert_eq!(out[0].cache.as_deref(), Some("miss"));
        assert_eq!(out[1].cache.as_deref(), Some("hit"));
        assert_eq!(out[0].depth, out[1].depth);
    }

    #[test]
    fn grid_only_router_on_a_non_grid_topology_is_a_typed_error_outcome() {
        let bad = RouteJob::from_json_line(
            r#"{"side": 4, "router": "locality-aware", "class": "random", "seed": 0,
                "topology": {"kind": "heavy-hex"}}"#,
        )
        .unwrap();
        let good = RouteJob::from_class(4, "ats", "random", 0).unwrap();
        let mut engine = tiny_engine(2, 16);
        let out = engine.run(vec![bad, good]);
        let err = out[0].error.as_deref().expect("unsupported pairing errors");
        assert!(err.contains("full grids"), "{err}");
        assert!(err.contains("heavy-hex"), "{err}");
        assert_eq!(out[1].error, None, "the rest of the batch still routes");
        // The rejection never consulted the cache.
        assert_eq!(engine.cache_stats().misses, 1);
    }
}
