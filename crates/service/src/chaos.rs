//! Deterministic fault injection for resilience testing.
//!
//! Chaos is **compiled always and armed never by default**: the only way
//! to turn a fault on is an explicit [`ChaosConfig`] passed to
//! [`EngineConfigBuilder::chaos`](crate::EngineConfigBuilder::chaos) —
//! no environment variables, no global registries — so a production
//! daemon can only misbehave if its operator asked it to, and a test
//! can arm exactly the faults it wants without cross-test interference.
//!
//! Four fault families, mirroring what long-lived routing daemons
//! actually see:
//!
//! * **Worker crashes** ([`ChaosConfig::worker_panic_every`]): every
//!   k-th *compute* (canonical instance handed to a worker, counted
//!   across the whole pool in dispatch order) kills its worker thread
//!   after recording a `router-panic` outcome for the poisoned job —
//!   exercising the supervisor's respawn path.
//! * **Latency** ([`ChaosConfig::latency_ms`] every
//!   [`ChaosConfig::latency_every`]): the worker sleeps before routing,
//!   in budget-aware slices, so deadline handling can be tested without
//!   pathological instances.
//! * **Dropped connections**
//!   ([`ChaosConfig::drop_connection_after_bytes`], budgeted by
//!   [`ChaosConfig::drop_connections`]): the daemon's writer severs the
//!   socket once it has written that many bytes, exercising client
//!   reconnect/resubmit.
//! * **Torn writes** ([`ChaosConfig::torn_writes`]): a dropped
//!   connection additionally flushes *half* of the next outcome line
//!   first, exercising the partial-final-line rules on both sides of
//!   the wire.
//!
//! Injection decisions come from shared atomic counters, never from
//! clocks or RNGs, so a single-worker engine injects faults into a
//! byte-reproducible set of jobs run after run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use qroute_core::budget::RouteBudget;

/// Which faults are armed. [`ChaosConfig::default`] arms nothing; the
/// engine and daemon behave identically to a chaos-free build until a
/// field is set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Kill the worker thread on every k-th compute (`0` = never).
    /// Computes are counted pool-wide in dispatch order; the k-th,
    /// 2k-th, ... computes record a `router-panic` outcome for their
    /// job, evict its cache slot, and crash their worker.
    pub worker_panic_every: u64,
    /// Sleep this long before routing an injected-latency compute.
    /// Ignored unless [`ChaosConfig::latency_every`] is nonzero.
    pub latency_ms: u64,
    /// Inject [`ChaosConfig::latency_ms`] of sleep into every k-th
    /// compute (`0` = never). Counted on the same pool-wide compute
    /// counter as panics; when both are armed the panic wins.
    pub latency_every: u64,
    /// Sever a daemon connection once its writer has emitted this many
    /// bytes (`None` = never). Budgeted by
    /// [`ChaosConfig::drop_connections`].
    pub drop_connection_after_bytes: Option<u64>,
    /// How many connections the byte-triggered drop may sever (each
    /// accepted connection consumes at most one unit of this budget).
    pub drop_connections: u32,
    /// When severing a connection, first flush *half* of the next
    /// outcome line — a torn mid-line write — instead of cutting on a
    /// line boundary.
    pub torn_writes: bool,
}

impl ChaosConfig {
    /// A fully disarmed configuration (same as [`Default`]).
    pub fn off() -> ChaosConfig {
        ChaosConfig::default()
    }

    /// Whether any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.worker_panic_every != 0
            || self.latency_every != 0
            || (self.drop_connection_after_bytes.is_some() && self.drop_connections != 0)
    }
}

/// What [`ChaosState::on_compute`] tells a worker to do with the
/// compute it just picked up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ComputeFault {
    /// Route normally.
    None,
    /// Record a `router-panic` outcome and crash the worker thread.
    Panic,
    /// Sleep for this long (budget-aware), then route normally.
    Delay(Duration),
}

/// The live injection counters behind a [`ChaosConfig`] — shared by the
/// worker pool and (in the daemon) every connection writer.
#[derive(Debug)]
pub struct ChaosState {
    config: ChaosConfig,
    /// Pool-wide computes started (1-based after `fetch_add`).
    computes: AtomicU64,
    injected_panics: AtomicU64,
    injected_delays: AtomicU64,
    /// Connection-drop budget *used* so far.
    dropped_connections: AtomicU64,
}

impl ChaosState {
    /// Wrap a configuration with zeroed counters.
    pub fn new(config: ChaosConfig) -> ChaosState {
        ChaosState {
            config,
            computes: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
            dropped_connections: AtomicU64::new(0),
        }
    }

    /// The configuration this state was armed with.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Called by a worker for each compute it starts; decides the fault
    /// for this compute from the shared dispatch-order counter.
    pub(crate) fn on_compute(&self) -> ComputeFault {
        if self.config.worker_panic_every == 0 && self.config.latency_every == 0 {
            return ComputeFault::None;
        }
        let n = self.computes.fetch_add(1, Ordering::SeqCst) + 1;
        if self.config.worker_panic_every != 0 && n.is_multiple_of(self.config.worker_panic_every) {
            self.injected_panics.fetch_add(1, Ordering::SeqCst);
            return ComputeFault::Panic;
        }
        if self.config.latency_every != 0 && n.is_multiple_of(self.config.latency_every) {
            self.injected_delays.fetch_add(1, Ordering::SeqCst);
            return ComputeFault::Delay(Duration::from_millis(self.config.latency_ms));
        }
        ComputeFault::None
    }

    /// Called once per accepted daemon connection: `Some((bytes, torn))`
    /// tells the connection's writer to sever the socket after `bytes`
    /// written bytes (tearing the next line in half first when `torn`),
    /// consuming one unit of the drop budget.
    pub(crate) fn take_connection_drop(&self) -> Option<(u64, bool)> {
        let after = self.config.drop_connection_after_bytes?;
        let budget = self.config.drop_connections as u64;
        // Optimistically claim a unit; give it back on overshoot. Only
        // this method touches the counter, so the net effect is exact.
        let used = self.dropped_connections.fetch_add(1, Ordering::SeqCst);
        if used >= budget {
            self.dropped_connections.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some((after, self.config.torn_writes))
    }

    /// Worker crashes injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::SeqCst)
    }

    /// Latency injections so far.
    pub fn injected_delays(&self) -> u64 {
        self.injected_delays.load(Ordering::SeqCst)
    }

    /// Connection drops claimed so far.
    pub fn dropped_connections(&self) -> u64 {
        self.dropped_connections.load(Ordering::SeqCst)
    }
}

/// Sleep `total`, in small slices, giving up early (returning `false`)
/// as soon as `budget` is exceeded — so an injected delay cannot hold a
/// cancelled compute hostage for the full injected latency.
pub(crate) fn sleep_within_budget(total: Duration, budget: &RouteBudget) -> bool {
    const SLICE: Duration = Duration::from_millis(2);
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if budget.is_exceeded() {
            return false;
        }
        let step = remaining.min(SLICE);
        std::thread::sleep(step);
        remaining -= step;
    }
    !budget.is_exceeded()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disarmed() {
        assert!(!ChaosConfig::default().is_armed());
        assert!(!ChaosConfig::off().is_armed());
        let state = ChaosState::new(ChaosConfig::off());
        for _ in 0..10 {
            assert_eq!(state.on_compute(), ComputeFault::None);
        }
        assert_eq!(state.take_connection_drop(), None);
        assert_eq!(state.injected_panics(), 0);
        assert_eq!(state.dropped_connections(), 0);
    }

    #[test]
    fn panic_every_k_targets_exactly_the_k_multiples() {
        let state = ChaosState::new(ChaosConfig { worker_panic_every: 3, ..ChaosConfig::off() });
        let faults: Vec<ComputeFault> = (0..9).map(|_| state.on_compute()).collect();
        for (i, fault) in faults.iter().enumerate() {
            let expect = if (i + 1) % 3 == 0 {
                ComputeFault::Panic
            } else {
                ComputeFault::None
            };
            assert_eq!(*fault, expect, "compute {}", i + 1);
        }
        assert_eq!(state.injected_panics(), 3);
    }

    #[test]
    fn panic_wins_over_latency_on_a_shared_multiple() {
        let state = ChaosState::new(ChaosConfig {
            worker_panic_every: 2,
            latency_ms: 5,
            latency_every: 2,
            ..ChaosConfig::off()
        });
        assert_eq!(state.on_compute(), ComputeFault::None);
        assert_eq!(state.on_compute(), ComputeFault::Panic);
        assert_eq!(state.injected_delays(), 0);
    }

    #[test]
    fn connection_drop_budget_is_exact() {
        let state = ChaosState::new(ChaosConfig {
            drop_connection_after_bytes: Some(100),
            drop_connections: 2,
            torn_writes: true,
            ..ChaosConfig::off()
        });
        assert_eq!(state.take_connection_drop(), Some((100, true)));
        assert_eq!(state.take_connection_drop(), Some((100, true)));
        assert_eq!(state.take_connection_drop(), None, "budget exhausted");
        assert_eq!(state.dropped_connections(), 2);
    }

    #[test]
    fn budgeted_sleep_gives_up_on_an_expired_budget() {
        use std::time::Instant;
        let expired = RouteBudget::unlimited().deadline(Instant::now());
        let t0 = Instant::now();
        assert!(!sleep_within_budget(Duration::from_secs(60), &expired));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "must not sleep it out"
        );
        assert!(sleep_within_budget(
            Duration::from_millis(1),
            &RouteBudget::unlimited()
        ));
    }
}
