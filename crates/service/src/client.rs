//! A small blocking client for the routing daemon.
//!
//! One [`Client`] is one connection — one submit stream with the
//! daemon's per-connection determinism guarantee. [`Client::route_lines`]
//! pipelines a whole job list with a bounded in-flight window (staying
//! under the daemon's admission limit), so replaying a jobs file takes
//! one round trip per window rather than per job. Tests, `repro batch
//! --connect`, `repro ctl`, and the `service_daemon` bench cells all
//! drive the daemon through this type.
//!
//! [`RetryingClient`] wraps the same wire protocol with a
//! [`RetryPolicy`]: on a dropped connection (or a retry-safe error
//! outcome — codes `backpressure`, `io`, `shutdown`, where the job was
//! definitely not routed or its answer was lost with the socket) it
//! reconnects with exponential, deterministically-jittered backoff and
//! resubmits exactly the unanswered jobs, reassembling results under the
//! *caller's* job indices. Codes like `parse` or `timeout` are final:
//! resubmitting them would just repeat the failure.

use crate::errors::ServiceError;
use crate::job::RouteOutcome;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Job lines a client keeps in flight before reading an outcome back.
/// Well under the default `client_queue_depth` (256), so a pipelined
/// replay never triggers the daemon's backpressure rejections.
const PIPELINE_WINDOW: usize = 32;

/// A blocking JSONL connection to a routing daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServiceError::Io(e.to_string()))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServiceError::Io(e.to_string()))?,
        );
        Ok(Client { reader, writer: stream })
    }

    /// Send one raw request line (job or control).
    pub fn send_line(&mut self, line: &str) -> Result<(), ServiceError> {
        writeln!(self.writer, "{line}")
            .and_then(|_| self.writer.flush())
            .map_err(|e| ServiceError::Io(e.to_string()))
    }

    /// Receive one response line; `None` when the daemon closed the
    /// connection. A torn final line (bytes with no trailing newline —
    /// the daemon died mid-write) is dropped and reported as a closed
    /// connection, never surfaced as data: a fragment is not a valid
    /// outcome and a retrying caller will get the full line on
    /// resubmission.
    pub fn recv_line(&mut self) -> Result<Option<String>, ServiceError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) if !line.ends_with('\n') => Ok(None),
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
            Err(e) => Err(ServiceError::Io(e.to_string())),
        }
    }

    /// Replay a stream of job lines, pipelined; returns one outcome line
    /// per non-blank job line, in submission order. Blank lines are
    /// skipped (they produce no outcome — same as `repro batch`).
    pub fn route_lines<'a>(
        &mut self,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<String>, ServiceError> {
        let mut outcomes = Vec::new();
        let mut in_flight = 0usize;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            self.send_line(line)?;
            in_flight += 1;
            if in_flight >= PIPELINE_WINDOW {
                outcomes.push(self.expect_line()?);
                in_flight -= 1;
            }
        }
        for _ in 0..in_flight {
            outcomes.push(self.expect_line()?);
        }
        Ok(outcomes)
    }

    /// Request a [`crate::StatsSnapshot`]; returns the raw
    /// `{"stats": {...}}` response line. Call with no outcomes pending
    /// (responses share the connection's ordered stream).
    pub fn stats(&mut self) -> Result<String, ServiceError> {
        self.send_line("{\"req\": \"stats\"}")?;
        self.expect_line()
    }

    /// Request the daemon's Prometheus text exposition; returns the raw
    /// `{"metrics": "..."}` response line (the exposition rides as one
    /// JSON-escaped string). Call with no outcomes pending.
    pub fn metrics(&mut self) -> Result<String, ServiceError> {
        self.send_line("{\"req\": \"metrics\"}")?;
        self.expect_line()
    }

    /// Ask the daemon to drain and exit; returns its acknowledgement
    /// line (`{"ok":"shutdown"}`).
    pub fn shutdown_server(&mut self) -> Result<String, ServiceError> {
        self.send_line("{\"req\": \"shutdown\"}")?;
        self.expect_line()
    }

    fn expect_line(&mut self) -> Result<String, ServiceError> {
        self.recv_line()?
            .ok_or_else(|| ServiceError::Io("daemon closed the connection mid-stream".to_string()))
    }
}

/// Reconnect/resubmit policy for [`RetryingClient`]: exponential backoff
/// from [`RetryPolicy::base_ms`] (doubling per retry, capped at
/// [`RetryPolicy::max_ms`]) with *deterministic* jitter — the jitter is
/// a hash of the attempt number and a caller salt, not a clock or RNG,
/// so a retry schedule is reproducible run to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect/resubmit cycles allowed beyond the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 3, base_ms: 10, max_ms: 1000 }
    }
}

impl RetryPolicy {
    /// Reject configurations that defeat the backoff: a zero `base_ms`
    /// (or a zero `max_ms` ceiling) makes every wait zero, turning the
    /// retry loop into a zero-delay hot loop against a daemon that is
    /// already struggling. Checked at [`RetryingClient::new`] so a bad
    /// `--retry-base-ms` becomes a typed config error up front.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.base_ms == 0 {
            return Err(ServiceError::Config(
                "retry base_ms must be at least 1 ms (zero-delay retries hot-loop)".to_string(),
            ));
        }
        if self.max_ms == 0 {
            return Err(ServiceError::Config(
                "retry max_ms must be at least 1 ms".to_string(),
            ));
        }
        Ok(())
    }

    /// The backoff before retry `attempt` (1-based), jittered into the
    /// upper half of the exponential step: `[step/2, step]` where
    /// `step = clamp(base_ms << (attempt-1), 1, max_ms)`, never 0.
    pub fn backoff_ms(&self, attempt: u32, salt: u64) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        // Clamp to the ceiling *before* jitter and floor at 1, so a
        // saturated `base_ms << shift` waits `max_ms`, not forever, and
        // even a hand-built zero policy cannot hot-loop.
        let step = self
            .base_ms
            .saturating_mul(1u64 << shift)
            .clamp(1, self.max_ms.max(1));
        // splitmix64 of (attempt, salt): deterministic, well-mixed.
        let mut z = salt ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let half = step / 2;
        (half + z % (step - half + 1)).max(1)
    }
}

/// Whether an outcome line carries a retry-safe error code: the daemon
/// either never routed the job (`backpressure`, `shutdown` during drain)
/// or the failure was transport-level (`io`), so resubmitting cannot
/// produce a second answer for a job that already has one.
fn is_retryable_outcome(line: &str) -> bool {
    let Ok(doc) = serde_json::from_str(line) else {
        return false;
    };
    doc.get("code")
        .and_then(|c| c.as_str())
        .is_some_and(|code| matches!(code, "backpressure" | "io" | "shutdown"))
}

/// Rewrite the first `"id":N` in an outcome line to the caller's job
/// index. Connection-local ids restart at 0 after every reconnect; the
/// caller wants stable indices into the job list it submitted.
fn rewrite_id(line: &str, id: usize) -> String {
    match line.find("\"id\":") {
        None => line.to_string(),
        Some(pos) => {
            let start = pos + "\"id\":".len();
            let end = line[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(line.len(), |off| start + off);
            format!("{}{}{}", &line[..start], id, &line[end..])
        }
    }
}

/// A daemon client that survives dropped connections: it replays job
/// lines like [`Client::route_lines`], but on a severed socket (or a
/// retry-safe error outcome) it reconnects per its [`RetryPolicy`] and
/// resubmits exactly the jobs that have no answer yet. Results come back
/// in the caller's submission order with the caller's indices in `"id"`.
/// When its retry budget runs out, unanswered jobs get synthetic `io`
/// error outcomes — never a hang, never a missing line.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    retries: u64,
}

impl RetryingClient {
    /// Resolve `addr` and set up the client (dialing happens lazily in
    /// [`RetryingClient::route_lines`], so constructing against a
    /// not-yet-started daemon is fine).
    pub fn new(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<RetryingClient, ServiceError> {
        policy.validate()?;
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ServiceError::Io(e.to_string()))?
            .next()
            .ok_or_else(|| ServiceError::Io("address resolved to nothing".to_string()))?;
        Ok(RetryingClient { addr, policy, retries: 0 })
    }

    /// Total retries performed so far: reconnect attempts plus
    /// resubmitted jobs, accumulated across calls.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Replay a stream of job lines with retries; returns one outcome
    /// line per non-blank job line, in submission order, with `"id"`
    /// rewritten to the line's index among them. With a healthy daemon
    /// and no faults this is byte-identical to [`Client::route_lines`].
    pub fn route_lines<'a>(
        &mut self,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<String>, ServiceError> {
        let jobs: Vec<&str> = lines
            .into_iter()
            .filter(|line| !line.trim().is_empty())
            .collect();
        let mut results: Vec<Option<String>> = vec![None; jobs.len()];
        // Job indices still without an answer, always kept ascending so
        // every round resubmits in the caller's original order.
        let mut todo: Vec<usize> = (0..jobs.len()).collect();
        let salt = jobs.len() as u64;
        let mut attempt: u32 = 0;
        let mut resubmissions: u64 = 0;
        let mut last_client: Option<Client> = None;

        while !todo.is_empty() {
            let mut client = match Client::connect(self.addr) {
                Ok(client) => client,
                Err(e) => {
                    if attempt >= self.policy.max_retries {
                        for &j in &todo {
                            results[j] = Some(
                                RouteOutcome::from_error(j as u64, None, None, &e).to_json_line(),
                            );
                        }
                        todo.clear();
                        break;
                    }
                    attempt += 1;
                    self.retries += 1;
                    std::thread::sleep(Duration::from_millis(
                        self.policy.backoff_ms(attempt, salt),
                    ));
                    continue;
                }
            };

            // One pipelined round over everything unanswered. `pending`
            // doubles as the conn-local id → job index map: the daemon
            // answers in submission order, so the k-th outcome received
            // belongs to job `pending[k]`.
            let pending = std::mem::take(&mut todo);
            let mut sent = 0usize;
            let mut received = 0usize;
            let mut dropped = false;
            while received < pending.len() {
                while sent < pending.len() && sent - received < PIPELINE_WINDOW && !dropped {
                    if client.send_line(jobs[pending[sent]]).is_err() {
                        dropped = true;
                        break;
                    }
                    sent += 1;
                }
                if received == sent {
                    break; // nothing in flight and nothing sendable
                }
                match client.recv_line() {
                    Ok(Some(line)) => {
                        let j = pending[received];
                        received += 1;
                        if is_retryable_outcome(&line) {
                            todo.push(j);
                        } else {
                            results[j] = Some(rewrite_id(&line, j));
                        }
                    }
                    Ok(None) | Err(_) => break, // connection gone; retry
                }
            }
            // Sent-but-unanswered and never-sent jobs both go to the
            // next round (both slices are ascending, and past `todo`
            // entries all precede them, so order is preserved).
            todo.extend_from_slice(&pending[received..]);

            if todo.is_empty() {
                last_client = Some(client);
                break;
            }
            if attempt >= self.policy.max_retries {
                let err =
                    ServiceError::Io("retries exhausted before the daemon answered".to_string());
                for &j in &todo {
                    results[j] =
                        Some(RouteOutcome::from_error(j as u64, None, None, &err).to_json_line());
                }
                todo.clear();
                last_client = Some(client);
                break;
            }
            attempt += 1;
            let round = todo.len() as u64;
            self.retries += round;
            resubmissions += round;
            std::thread::sleep(Duration::from_millis(self.policy.backoff_ms(attempt, salt)));
        }

        // Best-effort observability: tell the daemon how many
        // resubmissions this call cost (shows up as `retries_observed`).
        if resubmissions > 0 {
            let report = format!("{{\"req\": \"retried\", \"n\": {resubmissions}}}");
            let reported = last_client.as_mut().is_some_and(|c| {
                c.send_line(&report).is_ok() && matches!(c.recv_line(), Ok(Some(_)))
            });
            if !reported {
                if let Ok(mut fresh) = Client::connect(self.addr) {
                    let _ = fresh.send_line(&report);
                    let _ = fresh.recv_line();
                }
            }
        }

        Ok(results
            .into_iter()
            .map(|r| r.expect("every job answered or synthesized"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_first_attempt_jitters_in_the_upper_half_of_base() {
        let policy = RetryPolicy::default();
        for salt in 0..64 {
            let ms = policy.backoff_ms(1, salt);
            assert!((5..=10).contains(&ms), "salt {salt}: {ms}");
        }
        // Distinct salts actually spread (jitter is not constant).
        let spread: std::collections::BTreeSet<u64> =
            (0..64).map(|salt| policy.backoff_ms(1, salt)).collect();
        assert!(spread.len() > 1, "{spread:?}");
        // Deterministic per (attempt, salt).
        assert_eq!(policy.backoff_ms(1, 7), policy.backoff_ms(1, 7));
    }

    #[test]
    fn backoff_attempt_17_with_huge_base_is_clamped_before_jitter() {
        // `base_ms << 16` saturates for these bases; the step must land
        // on the ceiling, never on a saturated u64 wait.
        for base in [1u64 << 50, u64::MAX / 2, u64::MAX] {
            let policy = RetryPolicy { max_retries: 20, base_ms: base, max_ms: 1000 };
            for attempt in [1, 17, 40, u32::MAX] {
                for salt in 0..8 {
                    let ms = policy.backoff_ms(attempt, salt);
                    assert!(
                        (500..=1000).contains(&ms),
                        "base {base} attempt {attempt}: {ms}"
                    );
                }
            }
        }
    }

    #[test]
    fn backoff_is_never_zero_even_for_degenerate_policies() {
        // A hand-built zero policy must still wait ≥ 1 ms per retry —
        // the pre-fix code returned 0 and hot-looped.
        let zero = RetryPolicy { max_retries: 3, base_ms: 0, max_ms: 0 };
        for attempt in [1, 2, 17] {
            for salt in 0..8 {
                assert!(zero.backoff_ms(attempt, salt) >= 1, "attempt {attempt}");
            }
        }
        let tiny = RetryPolicy { max_retries: 3, base_ms: 1, max_ms: 1 };
        for salt in 0..8 {
            assert_eq!(tiny.backoff_ms(1, salt), 1);
        }
    }

    #[test]
    fn zero_base_is_rejected_at_construction() {
        let policy = RetryPolicy { base_ms: 0, ..RetryPolicy::default() };
        let err = RetryingClient::new("127.0.0.1:1", policy).unwrap_err();
        assert_eq!(err.code(), "config");
        assert!(err.to_string().contains("base_ms"), "{err}");
        let policy = RetryPolicy { max_ms: 0, ..RetryPolicy::default() };
        let err = RetryingClient::new("127.0.0.1:1", policy).unwrap_err();
        assert_eq!(err.code(), "config");
        // The default policy stays constructible.
        assert!(RetryingClient::new("127.0.0.1:1", RetryPolicy::default()).is_ok());
    }
}
