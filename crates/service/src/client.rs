//! A small blocking client for the routing daemon.
//!
//! One [`Client`] is one connection — one submit stream with the
//! daemon's per-connection determinism guarantee. [`Client::route_lines`]
//! pipelines a whole job list with a bounded in-flight window (staying
//! under the daemon's admission limit), so replaying a jobs file takes
//! one round trip per window rather than per job. Tests, `repro batch
//! --connect`, `repro ctl`, and the `service_daemon` bench cells all
//! drive the daemon through this type.

use crate::errors::ServiceError;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Job lines a client keeps in flight before reading an outcome back.
/// Well under the default `client_queue_depth` (256), so a pipelined
/// replay never triggers the daemon's backpressure rejections.
const PIPELINE_WINDOW: usize = 32;

/// A blocking JSONL connection to a routing daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServiceError::Io(e.to_string()))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServiceError::Io(e.to_string()))?,
        );
        Ok(Client { reader, writer: stream })
    }

    /// Send one raw request line (job or control).
    pub fn send_line(&mut self, line: &str) -> Result<(), ServiceError> {
        writeln!(self.writer, "{line}")
            .and_then(|_| self.writer.flush())
            .map_err(|e| ServiceError::Io(e.to_string()))
    }

    /// Receive one response line; `None` when the daemon closed the
    /// connection.
    pub fn recv_line(&mut self) -> Result<Option<String>, ServiceError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
            Err(e) => Err(ServiceError::Io(e.to_string())),
        }
    }

    /// Replay a stream of job lines, pipelined; returns one outcome line
    /// per non-blank job line, in submission order. Blank lines are
    /// skipped (they produce no outcome — same as `repro batch`).
    pub fn route_lines<'a>(
        &mut self,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<String>, ServiceError> {
        let mut outcomes = Vec::new();
        let mut in_flight = 0usize;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            self.send_line(line)?;
            in_flight += 1;
            if in_flight >= PIPELINE_WINDOW {
                outcomes.push(self.expect_line()?);
                in_flight -= 1;
            }
        }
        for _ in 0..in_flight {
            outcomes.push(self.expect_line()?);
        }
        Ok(outcomes)
    }

    /// Request a [`crate::StatsSnapshot`]; returns the raw
    /// `{"stats": {...}}` response line. Call with no outcomes pending
    /// (responses share the connection's ordered stream).
    pub fn stats(&mut self) -> Result<String, ServiceError> {
        self.send_line("{\"req\": \"stats\"}")?;
        self.expect_line()
    }

    /// Ask the daemon to drain and exit; returns its acknowledgement
    /// line (`{"ok":"shutdown"}`).
    pub fn shutdown_server(&mut self) -> Result<String, ServiceError> {
        self.send_line("{\"req\": \"shutdown\"}")?;
        self.expect_line()
    }

    fn expect_line(&mut self) -> Result<String, ServiceError> {
        self.recv_line()?
            .ok_or_else(|| ServiceError::Io("daemon closed the connection mid-stream".to_string()))
    }
}
