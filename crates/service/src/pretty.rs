//! Human-readable rendering of wire responses, for `repro ctl --pretty`.
//!
//! The JSON wire format is append-only versioned, so the renderer is
//! *generic* over the stats object: every scalar field becomes one
//! aligned `key value` row (underscores become spaces, in wire order —
//! a field appended by a newer daemon renders without a code change),
//! and the `routers` array expands into indented per-router rows.
//! Fields whose key ends in `_rate` or `_ms` render with four decimals;
//! other numbers render as integers when integral.

use serde_json::Value;

/// Render one number the way the table wants it: four decimals for
/// rates/latencies (`fractional`), plain integer otherwise (falling
/// back to four decimals for non-integral values).
fn render_number(x: f64, fractional: bool) -> String {
    if fractional || x.fract() != 0.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.0}")
    }
}

fn render_scalar(key: &str, value: &Value) -> String {
    let fractional = key.ends_with("_rate") || key.ends_with("_ms");
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Number(x) => render_number(*x, fractional),
        Value::String(s) => s.clone(),
        other => serde_json::to_string(other).unwrap_or_default(),
    }
}

/// Render a `StatsSnapshot` JSON object (the payload of a wire
/// `{"stats": {...}}` response) as an aligned two-column text table.
/// Non-object input falls back to pretty-printed JSON.
pub fn render_stats_table(stats: &Value) -> String {
    let Value::Object(entries) = stats else {
        return serde_json::to_string_pretty(stats).unwrap_or_default();
    };
    let mut rows: Vec<(String, String)> = Vec::new();
    for (key, value) in entries {
        match value {
            Value::Array(routers) => {
                rows.push((key.replace('_', " "), String::new()));
                for router in routers {
                    let name = router
                        .get("router")
                        .and_then(Value::as_str)
                        .unwrap_or("<unknown>");
                    let jobs = router
                        .get("jobs")
                        .map(|v| render_scalar("jobs", v))
                        .unwrap_or_default();
                    rows.push((format!("  {name}"), jobs));
                }
            }
            other => rows.push((key.replace('_', " "), render_scalar(key, other))),
        }
    }
    let key_width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let value_width = rows.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (key, value) in &rows {
        if value.is_empty() {
            out.push_str(key);
        } else {
            out.push_str(&format!("{key:<key_width$}  {value:>value_width$}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden: the exact table rendering of a representative snapshot is
    /// pinned — alignment, underscore expansion, four-decimal rates and
    /// latencies, indented router rows.
    #[test]
    fn stats_table_rendering_is_pinned() {
        let line = concat!(
            "{\"jobs_routed\":42,\"jobs_errored\":1,\"connections\":3,",
            "\"queue_depth\":0,\"cache_hits\":12,\"cache_misses\":30,",
            "\"cache_evictions\":0,\"hit_rate\":0.2857142857142857,",
            "\"routers\":[{\"router\":\"ats\",\"jobs\":12},",
            "{\"router\":\"locality-aware\",\"jobs\":30}],",
            "\"latency_p50_ms\":0.3547,\"latency_p99_ms\":1.4484,",
            "\"timeouts\":0,\"worker_restarts\":0,\"retries_observed\":0}",
        );
        let stats = serde_json::from_str(line).unwrap();
        let expected = concat!(
            "jobs routed           42\n",
            "jobs errored           1\n",
            "connections            3\n",
            "queue depth            0\n",
            "cache hits            12\n",
            "cache misses          30\n",
            "cache evictions        0\n",
            "hit rate          0.2857\n",
            "routers\n",
            "  ats                 12\n",
            "  locality-aware      30\n",
            "latency p50 ms    0.3547\n",
            "latency p99 ms    1.4484\n",
            "timeouts               0\n",
            "worker restarts        0\n",
            "retries observed       0\n",
        );
        assert_eq!(render_stats_table(&stats), expected);
    }

    /// Append-only wire evolution: a field this renderer has never heard
    /// of still renders as a row instead of vanishing.
    #[test]
    fn unknown_appended_fields_still_render() {
        let stats = serde_json::from_str("{\"jobs_routed\":1,\"future_field\":7}").unwrap();
        let table = render_stats_table(&stats);
        assert!(table.contains("future field  7"), "{table}");
    }

    #[test]
    fn non_object_input_falls_back_to_json() {
        let v = serde_json::from_str("[1,2]").unwrap();
        assert_eq!(
            render_stats_table(&v),
            serde_json::to_string_pretty(&v).unwrap()
        );
    }
}
