//! Request/response types of the routing service and their JSONL wire
//! format.
//!
//! One job per line. A job names a square grid side, a router (a
//! [`RouterKind::label`] or `"auto"` for feature-based dispatch), and a
//! permutation — either an explicit image table (`"perm"`) or a seeded
//! workload-class reference (`"class"` + `"seed"`, the same class labels
//! the benchmark matrix uses):
//!
//! ```text
//! {"side": 8, "router": "auto", "class": "block4", "seed": 3}
//! {"side": 4, "router": "ats", "perm": [1, 0, 2, 3, ...]}
//! ```
//!
//! A bare `side` keeps meaning the full `side × side` grid — every
//! pre-existing jobs file stays byte-compatible. An optional
//! `"topology"` object generalizes the architecture (see
//! [`TopologySpec`]):
//!
//! ```text
//! {"side": 8, "router": "ats", "class": "random", "seed": 1,
//!  "topology": {"kind": "defect", "defects": [9, 13], "dead_edges": [[0, 1]]}}
//! {"side": 6, "router": "auto", "class": "random", "seed": 2,
//!  "topology": {"kind": "heavy-hex"}}
//! ```
//!
//! One [`RouteOutcome`] line per job, in job order, with `null` for
//! fields an errored job could not produce. With timing capture disabled
//! (the default), outcome lines are byte-deterministic for fixed inputs
//! regardless of worker count.
//!
//! **Versioning.** Jobs may carry an optional integer `"v"` field naming
//! the wire protocol version; *absent means v1*, so every committed job
//! file stays byte-compatible. A job declaring an unknown version
//! becomes a per-job error outcome with code `version` instead of
//! aborting the stream, and outcomes echo the job's `"v"` when (and only
//! when) the job carried one. Error outcomes carry a stable
//! machine-readable `"code"` field next to the human-readable `"error"`
//! message — see [`crate::ServiceError::code`].

use crate::errors::ServiceError;
use qroute_core::RouterKind;
use qroute_perm::{generators, Permutation};
use qroute_topology::{Grid, Topology};

/// Largest accepted grid side. Side 1024 means 1024² = 2²⁰ ≈ 1.05
/// million qubits — far beyond any near-term grid. The cap turns absurd
/// `side` values into per-job error outcomes instead of multi-terabyte
/// allocation aborts on the submit thread, and keeps `side * side` far
/// from overflow on every platform.
pub const MAX_SIDE: usize = 1024;

/// The wire protocol version this service speaks. Jobs with no `"v"`
/// field are treated as this version; jobs declaring any other version
/// become per-job error outcomes (code `version`).
pub const WIRE_VERSION: u64 = 1;

/// Router requested by a job.
#[derive(Debug, Clone)]
pub enum RouterSpec {
    /// Pick per job from instance features (see [`crate::dispatch`]).
    Auto,
    /// A fixed router kind in its default configuration.
    Fixed(RouterKind),
}

/// Permutation payload of a job.
#[derive(Debug, Clone)]
pub enum PermSpec {
    /// An explicit image table (`perm[v] = π(v)`), validated at
    /// resolution time.
    Explicit(Vec<usize>),
    /// A seeded workload-class instance (benchmark class labels:
    /// `random`, `block<B>`, `overlap<B>s<S>`, `skinny`, `sparse-pairs`).
    Class {
        /// The class label.
        label: String,
        /// The generator seed.
        seed: u64,
    },
}

/// Architecture requested by a job — the wire form of the `"topology"`
/// object, materialized into a [`Topology`] at resolution time (always
/// against the job's `side × side` base dimensions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// The full square grid (`"kind": "grid"`, or no `"topology"` at
    /// all — the byte-compatible default).
    Grid,
    /// A grid with dead vertices/edges (`"kind": "defect"`).
    Defect {
        /// Dead vertex ids on the `side × side` grid.
        defects: Vec<usize>,
        /// Dead coupling edges as vertex-id pairs.
        dead_edges: Vec<(usize, usize)>,
    },
    /// A heavy-hex lattice with `side × side` data vertices plus bridge
    /// vertices (`"kind": "heavy-hex"`).
    HeavyHex,
    /// A brick-wall lattice on `side × side` vertices
    /// (`"kind": "brick"`).
    Brick,
    /// The torus `C_side □ C_side` (`"kind": "torus"`, `side >= 3`).
    Torus,
}

impl TopologySpec {
    /// Materialize against the job's square base grid, validating defect
    /// patterns (range, duplicates, coupledness, emptied grids).
    fn materialize(&self, side: usize) -> Result<Topology, String> {
        let grid = Grid::new(side, side);
        match self {
            TopologySpec::Grid => Ok(Topology::Grid(grid)),
            TopologySpec::Defect { defects, dead_edges } => {
                Topology::grid_with_defects(grid, defects, dead_edges).map_err(|e| e.to_string())
            }
            TopologySpec::HeavyHex => Ok(Topology::heavy_hex(side, side)),
            TopologySpec::Brick => Ok(Topology::brick_wall(side, side)),
            TopologySpec::Torus => Topology::torus(side, side).map_err(|e| e.to_string()),
        }
    }
}

/// One routing request: an architecture, a router choice, and a
/// permutation.
#[derive(Debug, Clone)]
pub struct RouteJob {
    /// Side of the square base grid (`side × side` qubits for grid-family
    /// topologies; heavy-hex adds bridge vertices on top).
    pub side: usize,
    /// Requested router; `None` defers to the engine's configured
    /// default policy ([`crate::EngineConfig::default_router`]).
    pub router: Option<RouterSpec>,
    /// Requested permutation.
    pub perm: PermSpec,
    /// Requested architecture (defaults to the full square grid).
    pub topology: TopologySpec,
    /// Wire protocol version the job declared (`None` when the line had
    /// no `"v"` field — implicitly [`WIRE_VERSION`]). Echoed into the
    /// outcome so response lines are self-describing exactly when
    /// request lines were.
    pub v: Option<u64>,
    /// Optional per-job deadline in milliseconds, measured from
    /// admission. A job still routing when it expires is cooperatively
    /// cancelled and answered with a `timeout` error outcome; `None`
    /// falls back to the engine's configured default deadline (itself
    /// `None` — no deadline — by default). Append-only wire field: v1
    /// lines without it parse exactly as before.
    pub deadline_ms: Option<u64>,
}

impl RouteJob {
    /// A class-reference job (`router` is a label or `"auto"`).
    pub fn from_class(
        side: usize,
        router: &str,
        class: &str,
        seed: u64,
    ) -> Result<RouteJob, ServiceError> {
        Ok(RouteJob {
            side,
            router: Some(parse_router(router).map_err(ServiceError::Parse)?),
            perm: PermSpec::Class { label: class.to_string(), seed },
            topology: TopologySpec::Grid,
            v: None,
            deadline_ms: None,
        })
    }

    /// An explicit-permutation job.
    pub fn explicit(side: usize, router: RouterSpec, pi: &Permutation) -> RouteJob {
        RouteJob {
            side,
            router: Some(router),
            perm: PermSpec::Explicit(pi.as_slice().to_vec()),
            topology: TopologySpec::Grid,
            v: None,
            deadline_ms: None,
        }
    }

    /// Parse one JSONL line. Strict: unknown fields, missing required
    /// fields, conflicting `perm`/`class`, and malformed values are all
    /// errors (which the engine turns into per-job error outcomes rather
    /// than aborting the batch). A `"v"` field naming a version other
    /// than [`WIRE_VERSION`] is its own error kind
    /// ([`ServiceError::Version`]) so clients can branch on it.
    pub fn from_json_line(line: &str) -> Result<RouteJob, ServiceError> {
        let doc = serde_json::from_str(line).map_err(|e| ServiceError::Parse(e.to_string()))?;
        let v = parse_version(&doc)?;
        parse_job_fields(&doc, v).map_err(ServiceError::Parse)
    }

    /// Materialize the instance: the topology and a validated
    /// permutation. Every defect-pattern pathology (out-of-range or
    /// duplicate defect ids, dead edges that are not coupling edges,
    /// patterns that empty or disconnect the grid, permutations moving
    /// dead vertices) comes back as an `Err` — a per-job error outcome —
    /// never a panic on the submit thread.
    pub fn resolve(&self) -> Result<(Topology, Permutation), ServiceError> {
        self.resolve_impl().map_err(ServiceError::Invalid)
    }

    fn resolve_impl(&self) -> Result<(Topology, Permutation), String> {
        if self.side == 0 || self.side > MAX_SIDE {
            // An absurd side must become a per-job error outcome, not an
            // allocation abort that takes the whole batch down.
            return Err(format!("side {} out of range (1..={MAX_SIDE})", self.side));
        }
        let topology = self.topology.materialize(self.side)?;
        topology.validate_routable().map_err(|e| e.to_string())?;
        let pi = match &self.perm {
            PermSpec::Explicit(table) => {
                if table.len() != topology.len() {
                    return Err(format!(
                        "\"perm\" has {} entries; {} needs {}",
                        table.len(),
                        topology,
                        topology.len()
                    ));
                }
                topology.permutation_fits(table)?;
                Permutation::from_vec(table.clone()).map_err(|e| e.to_string())?
            }
            PermSpec::Class { label, seed } => generate_class_on(&topology, label, *seed)?,
        };
        Ok((topology, pi))
    }
}

fn parse_router(s: &str) -> Result<RouterSpec, String> {
    if s == "auto" {
        Ok(RouterSpec::Auto)
    } else {
        Ok(RouterSpec::Fixed(s.parse::<RouterKind>()?))
    }
}

/// Extract and check the optional `"v"` field. Absent means
/// [`WIRE_VERSION`]; any other declared version is a
/// [`ServiceError::Version`] so the outcome's `"code"` lets clients
/// tell "wrong protocol" apart from "malformed job".
fn parse_version(doc: &serde_json::Value) -> Result<Option<u64>, ServiceError> {
    match doc.get("v") {
        None => Ok(None),
        Some(raw) => {
            let v = raw.as_u64().ok_or_else(|| {
                ServiceError::Parse("\"v\" must be a nonnegative integer".to_string())
            })?;
            if v != WIRE_VERSION {
                return Err(ServiceError::Version(v));
            }
            Ok(Some(v))
        }
    }
}

/// The version-agnostic part of job-line parsing (everything but `"v"`,
/// which [`parse_version`] has already validated).
fn parse_job_fields(doc: &serde_json::Value, v: Option<u64>) -> Result<RouteJob, String> {
    let serde_json::Value::Object(entries) = doc else {
        return Err("job line must be a JSON object".to_string());
    };
    for (field, _) in entries {
        if !matches!(
            field.as_str(),
            "v" | "side" | "router" | "perm" | "class" | "seed" | "topology" | "deadline_ms"
        ) {
            return Err(format!(
                "unknown job field {field:?} (expected v, side, router, perm, class, seed, \
                 topology, deadline_ms)"
            ));
        }
    }
    let side = doc
        .get("side")
        .and_then(|v| v.as_u64())
        .ok_or("job needs an integer \"side\"")? as usize;
    if side == 0 {
        return Err("\"side\" must be at least 1".to_string());
    }
    let router = match doc.get("router") {
        None => None,
        Some(r) => Some(parse_router(
            r.as_str().ok_or("\"router\" must be a string")?,
        )?),
    };
    let perm = match (doc.get("perm"), doc.get("class")) {
        (Some(_), Some(_)) => {
            return Err("job has both \"perm\" and \"class\"; pick one".to_string())
        }
        (None, None) => return Err("job needs either \"perm\" or \"class\"".to_string()),
        (Some(p), None) => {
            if doc.get("seed").is_some() {
                return Err("\"seed\" only applies to class jobs".to_string());
            }
            let table = p
                .as_array()
                .ok_or("\"perm\" must be an array of integers")?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .map(|v| v as usize)
                        .ok_or_else(|| "\"perm\" must be an array of integers".to_string())
                })
                .collect::<Result<Vec<usize>, String>>()?;
            PermSpec::Explicit(table)
        }
        (None, Some(c)) => PermSpec::Class {
            label: c.as_str().ok_or("\"class\" must be a string")?.to_string(),
            seed: doc
                .get("seed")
                .and_then(|v| v.as_u64())
                .ok_or("class jobs need an integer \"seed\"")?,
        },
    };
    let topology = match doc.get("topology") {
        None => TopologySpec::Grid,
        Some(t) => parse_topology(t)?,
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(d) => {
            let ms = d
                .as_u64()
                .ok_or("\"deadline_ms\" must be a nonnegative integer")?;
            if ms == 0 {
                return Err("\"deadline_ms\" must be at least 1".to_string());
            }
            Some(ms)
        }
    };
    Ok(RouteJob { side, router, perm, topology, v, deadline_ms })
}

/// Parse the `"topology"` object. Strict like the job line itself:
/// unknown fields, defect lists on non-defect kinds, and malformed
/// values are all errors.
fn parse_topology(value: &serde_json::Value) -> Result<TopologySpec, String> {
    let serde_json::Value::Object(entries) = value else {
        return Err("\"topology\" must be a JSON object".to_string());
    };
    for (field, _) in entries {
        if !matches!(field.as_str(), "kind" | "defects" | "dead_edges") {
            return Err(format!(
                "unknown topology field {field:?} (expected kind, defects, dead_edges)"
            ));
        }
    }
    let kind = value
        .get("kind")
        .and_then(|v| v.as_str())
        .ok_or("\"topology\" needs a string \"kind\"")?;
    let has_defect_fields = value.get("defects").is_some() || value.get("dead_edges").is_some();
    if kind != "defect" && has_defect_fields {
        return Err(format!(
            "\"defects\"/\"dead_edges\" only apply to kind \"defect\", not {kind:?}"
        ));
    }
    match kind {
        "grid" => Ok(TopologySpec::Grid),
        "heavy-hex" => Ok(TopologySpec::HeavyHex),
        "brick" => Ok(TopologySpec::Brick),
        "torus" => Ok(TopologySpec::Torus),
        "defect" => {
            let defects = match value.get("defects") {
                None => Vec::new(),
                Some(d) => d
                    .as_array()
                    .ok_or("\"defects\" must be an array of integers")?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .map(|v| v as usize)
                            .ok_or_else(|| "\"defects\" must be an array of integers".to_string())
                    })
                    .collect::<Result<Vec<usize>, String>>()?,
            };
            let dead_edges = match value.get("dead_edges") {
                None => Vec::new(),
                Some(e) => e
                    .as_array()
                    .ok_or("\"dead_edges\" must be an array of [u, v] pairs")?
                    .iter()
                    .map(|pair| {
                        let ints: Option<Vec<usize>> = pair.as_array().map(|xs| {
                            xs.iter()
                                .filter_map(|x| x.as_u64().map(|v| v as usize))
                                .collect()
                        });
                        match ints.as_deref() {
                            Some([u, v]) => Ok((*u, *v)),
                            _ => Err("\"dead_edges\" must be an array of [u, v] pairs".to_string()),
                        }
                    })
                    .collect::<Result<Vec<(usize, usize)>, String>>()?,
            };
            Ok(TopologySpec::Defect { defects, dead_edges })
        }
        other => Err(format!(
            "unknown topology kind {other:?}; expected grid, defect, heavy-hex, brick, torus"
        )),
    }
}

/// Generate a benchmark-class instance on a topology. Full grids use the
/// grid generators directly; defective grids generate on the underlying
/// full grid and then fix every permutation cycle that visits a dead
/// vertex (a deterministic projection, so class jobs on defective grids
/// stay byte-reproducible); the remaining topologies have no grid
/// coordinates and support only `random`.
fn generate_class_on(topology: &Topology, label: &str, seed: u64) -> Result<Permutation, String> {
    match topology {
        Topology::Grid(grid) => generate_class(*grid, label, seed),
        Topology::GridWithDefects { grid, .. } => {
            let pi = generate_class(*grid, label, seed)?;
            Ok(project_fixing_dead(topology, &pi))
        }
        _ => {
            if label == "random" {
                Ok(generators::random(topology.len(), seed))
            } else {
                Err(format!(
                    "class {label:?} needs grid coordinates; \"{}\" topologies support only \"random\"",
                    topology.kind()
                ))
            }
        }
    }
}

/// Fix every cycle of `pi` that visits a dead vertex of `topology`,
/// leaving the other cycles untouched.
fn project_fixing_dead(topology: &Topology, pi: &Permutation) -> Permutation {
    let n = pi.len();
    let mut table: Vec<usize> = (0..n).map(|v| pi.apply(v)).collect();
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut cycle = Vec::new();
        let mut v = start;
        loop {
            visited[v] = true;
            cycle.push(v);
            v = pi.apply(v);
            if v == start {
                break;
            }
        }
        if cycle.iter().any(|&v| !topology.is_alive(v)) {
            for &v in &cycle {
                table[v] = v;
            }
        }
    }
    Permutation::from_vec_unchecked(table)
}

/// Generate a benchmark-class instance from its label (`random`,
/// `block<B>`, `overlap<B>s<S>`, `skinny`, `sparse-pairs`).
fn generate_class(grid: Grid, label: &str, seed: u64) -> Result<Permutation, String> {
    if label == "random" {
        return Ok(generators::random(grid.len(), seed));
    }
    if label == "skinny" {
        return Ok(generators::skinny_cycles(grid, seed));
    }
    if label == "sparse-pairs" {
        // Same parameterization as the bench matrix's sparse class.
        return Ok(generators::sparse_pairs(
            grid,
            (grid.len() / 16).max(1),
            (grid.rows().max(grid.cols()) / 4).max(2),
            seed,
        ));
    }
    if let Some(b) = label.strip_prefix("block") {
        let b: usize = b
            .parse()
            .map_err(|_| format!("malformed block class {label:?} (want e.g. \"block4\")"))?;
        if b == 0 {
            return Err("block size must be at least 1".to_string());
        }
        return Ok(generators::block_local(grid, b, b, seed));
    }
    if let Some(rest) = label.strip_prefix("overlap") {
        let parts: Vec<&str> = rest.splitn(2, 's').collect();
        let parsed = match parts.as_slice() {
            [b, s] => b.parse::<usize>().ok().zip(s.parse::<usize>().ok()),
            _ => None,
        };
        let Some((b, s)) = parsed else {
            return Err(format!(
                "malformed overlap class {label:?} (want e.g. \"overlap8s4\")"
            ));
        };
        if b == 0 || s == 0 {
            return Err("overlap window and stride must be at least 1".to_string());
        }
        return Ok(generators::overlapping_blocks(grid, b, b, s, s, seed));
    }
    Err(format!(
        "unknown class {label:?}; expected random, block<B>, overlap<B>s<S>, skinny, or sparse-pairs"
    ))
}

/// Whether a routed result was served from the canonical cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The canonical form was routed for this job.
    Miss,
    /// The canonical form was already cached (or in flight).
    Hit,
}

impl CacheStatus {
    /// Stable wire label.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
        }
    }
}

/// One result line: metrics for a routed job, or a per-job error.
///
/// Field order is the wire order. `time_ms` is `null` unless the engine
/// captured timing (timing is off by default so output bytes are
/// deterministic); error outcomes carry `null` metrics plus a stable
/// machine-readable `"code"`. The `"v"` field is emitted only when the
/// job declared one, keeping v1 outcome bytes identical to the
/// pre-versioning era.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// Echo of the job's declared wire version (`None` ⇒ field omitted).
    pub v: Option<u64>,
    /// Job id: the 0-based position of the job in submission order.
    pub id: u64,
    /// Grid side echoed from the job (`None` when the line never parsed).
    pub side: Option<usize>,
    /// Resolved router label (concrete even for `auto` jobs).
    pub router: Option<String>,
    /// Cache status (`"hit"` / `"miss"`).
    pub cache: Option<String>,
    /// Schedule depth (layers).
    pub depth: Option<usize>,
    /// Schedule size (total swaps).
    pub size: Option<usize>,
    /// Depth lower bound of the instance on its own grid.
    pub lower_bound: Option<usize>,
    /// Wall-clock routing time for cache misses (`0.0` for hits) when
    /// timing capture is on; `null` otherwise.
    pub time_ms: Option<f64>,
    /// Machine-readable error discriminator ([`ServiceError::code`]),
    /// `null` on success. Clients branch on this, never on `error` text.
    pub code: Option<&'static str>,
    /// Error message for jobs that failed to parse, resolve, or route.
    pub error: Option<String>,
}

impl RouteOutcome {
    /// The error outcome for job `id`.
    pub fn from_error(
        id: u64,
        side: Option<usize>,
        v: Option<u64>,
        error: &ServiceError,
    ) -> RouteOutcome {
        RouteOutcome {
            v,
            id,
            side,
            router: None,
            cache: None,
            depth: None,
            size: None,
            lower_bound: None,
            time_ms: None,
            code: Some(error.code()),
            error: Some(error.to_string()),
        }
    }

    /// Serialize as one compact JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("serialize outcome")
    }
}

// Hand-written (not derived) so `"v"` can be *omitted* — rather than
// `null` — on v1 jobs, keeping their outcome bytes identical to the
// pre-versioning wire format.
impl serde::Serialize for RouteOutcome {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        if let Some(v) = self.v {
            out.push_str("\"v\":");
            serde::Serialize::write_json(&v, out);
            out.push(',');
        }
        out.push_str("\"id\":");
        serde::Serialize::write_json(&self.id, out);
        out.push_str(",\"side\":");
        serde::Serialize::write_json(&self.side, out);
        out.push_str(",\"router\":");
        serde::Serialize::write_json(&self.router, out);
        out.push_str(",\"cache\":");
        serde::Serialize::write_json(&self.cache, out);
        out.push_str(",\"depth\":");
        serde::Serialize::write_json(&self.depth, out);
        out.push_str(",\"size\":");
        serde::Serialize::write_json(&self.size, out);
        out.push_str(",\"lower_bound\":");
        serde::Serialize::write_json(&self.lower_bound, out);
        out.push_str(",\"time_ms\":");
        serde::Serialize::write_json(&self.time_ms, out);
        out.push_str(",\"code\":");
        serde::Serialize::write_json(&self.code, out);
        out.push_str(",\"error\":");
        serde::Serialize::write_json(&self.error, out);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_and_perm_jobs() {
        let job = RouteJob::from_json_line(
            r#"{"side": 8, "router": "auto", "class": "overlap4s2", "seed": 5}"#,
        )
        .unwrap();
        assert_eq!(job.side, 8);
        assert!(matches!(job.router, Some(RouterSpec::Auto)));
        assert_eq!(job.topology, TopologySpec::Grid);
        assert_eq!(job.v, None);
        let (topology, pi) = job.resolve().unwrap();
        assert_eq!(topology.len(), 64);
        assert_eq!(pi.len(), 64);

        let job = RouteJob::from_json_line(r#"{"side": 2, "router": "ats", "perm": [1, 0, 2, 3]}"#)
            .unwrap();
        let (_, pi) = job.resolve().unwrap();
        assert_eq!(pi.apply(0), 1);

        // The sparse-pairs bench class resolves to a sparse involution.
        let job = RouteJob::from_json_line(
            r#"{"side": 16, "router": "auto", "class": "sparse-pairs", "seed": 0}"#,
        )
        .unwrap();
        let (_, pi) = job.resolve().unwrap();
        assert_eq!(pi.support_size(), 32);
        // An omitted router defers to the engine's configured default.
        let job = RouteJob::from_json_line(r#"{"side": 2, "perm": [0, 1, 2, 3]}"#).unwrap();
        assert!(job.router.is_none());
    }

    #[test]
    fn version_field_round_trips() {
        // "v": 1 is accepted and remembered.
        let job = RouteJob::from_json_line(r#"{"v": 1, "side": 2, "perm": [0, 1, 2, 3]}"#).unwrap();
        assert_eq!(job.v, Some(1));
        // Unknown versions are their own error kind with a stable code.
        let err =
            RouteJob::from_json_line(r#"{"v": 2, "side": 2, "perm": [0, 1, 2, 3]}"#).unwrap_err();
        assert_eq!(err, ServiceError::Version(2));
        assert_eq!(err.code(), "version");
        // Malformed "v" is a parse error, not a version error.
        let err =
            RouteJob::from_json_line(r#"{"v": "x", "side": 2, "perm": [0, 1, 2, 3]}"#).unwrap_err();
        assert_eq!(err.code(), "parse");
    }

    #[test]
    fn deadline_field_parses_and_validates() {
        let job = RouteJob::from_json_line(
            r#"{"side": 4, "class": "random", "seed": 0, "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(job.deadline_ms, Some(250));
        let job = RouteJob::from_json_line(r#"{"side": 4, "class": "random", "seed": 0}"#).unwrap();
        assert_eq!(job.deadline_ms, None, "absent deadline stays absent");
        for (line, needle) in [
            (
                r#"{"side": 4, "class": "random", "seed": 0, "deadline_ms": "soon"}"#,
                "nonnegative integer",
            ),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "deadline_ms": 0}"#,
                "at least 1",
            ),
        ] {
            let err = RouteJob::from_json_line(line).unwrap_err();
            assert!(err.to_string().contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn every_router_label_parses() {
        for kind in RouterKind::all_default() {
            let line = format!(
                r#"{{"side": 4, "router": "{}", "class": "random", "seed": 0}}"#,
                kind.label()
            );
            let job = RouteJob::from_json_line(&line).unwrap();
            match job.router {
                Some(RouterSpec::Fixed(parsed)) => assert_eq!(parsed.label(), kind.label()),
                other => panic!("{} parsed as {other:?}", kind.label()),
            }
        }
    }

    #[test]
    fn malformed_jobs_error_with_context() {
        for (line, needle) in [
            ("not json", "JSON"),
            ("[1, 2]", "object"),
            (r#"{"router": "ats", "class": "random", "seed": 0}"#, "side"),
            (r#"{"side": 0, "class": "random", "seed": 0}"#, "side"),
            (
                r#"{"side": 4, "router": "warp", "class": "random", "seed": 0}"#,
                "warp",
            ),
            (r#"{"side": 4, "class": "random"}"#, "seed"),
            (r#"{"side": 4, "perm": [0], "seed": 1}"#, "seed"),
            (r#"{"side": 4, "perm": [0], "class": "random"}"#, "pick one"),
            (r#"{"side": 4}"#, "either"),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "bogus": 1}"#,
                "bogus",
            ),
            (r#"{"side": 4, "perm": [0, "x"]}"#, "integers"),
        ] {
            let err = RouteJob::from_json_line(line).unwrap_err();
            assert!(err.to_string().contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn resolve_rejects_malformed_class_labels() {
        for (class, needle) in [
            ("blockx", "block"),
            ("block0", "at least 1"),
            ("overlap4", "overlap"),
            ("overlap0s1", "at least 1"),
            ("mystery", "mystery"),
        ] {
            let line = format!(r#"{{"side": 4, "class": "{class}", "seed": 0}}"#);
            let job = RouteJob::from_json_line(&line).unwrap();
            let err = job.resolve().unwrap_err();
            assert!(err.to_string().contains(needle), "{class}: {err}");
        }
    }

    #[test]
    fn resolve_validates_explicit_permutations() {
        let short = RouteJob::from_json_line(r#"{"side": 2, "perm": [1, 0]}"#).unwrap();
        assert!(short.resolve().unwrap_err().to_string().contains("4"));
        // An absurd side is a per-job error, not an allocation abort.
        let huge =
            RouteJob::from_json_line(r#"{"side": 1000000000, "class": "random", "seed": 0}"#)
                .unwrap();
        let err = huge.resolve().unwrap_err();
        assert!(err.to_string().contains("out of range"));
        assert_eq!(err.code(), "invalid-job");
        let max = RouteJob::from_class(MAX_SIDE, "ats", "skinny", 0).unwrap();
        assert_eq!(max.side, MAX_SIDE);
        let repeat = RouteJob::from_json_line(r#"{"side": 2, "perm": [0, 0, 2, 3]}"#).unwrap();
        assert!(repeat
            .resolve()
            .unwrap_err()
            .to_string()
            .contains("permutation"));
    }

    #[test]
    fn parses_topology_objects() {
        let job = RouteJob::from_json_line(
            r#"{"side": 4, "router": "ats", "class": "random", "seed": 0,
                "topology": {"kind": "defect", "defects": [5], "dead_edges": [[0, 1]]}}"#,
        )
        .unwrap();
        assert_eq!(
            job.topology,
            TopologySpec::Defect { defects: vec![5], dead_edges: vec![(0, 1)] }
        );
        let (topology, pi) = job.resolve().unwrap();
        assert_eq!(topology.kind(), "defect");
        assert_eq!(pi.apply(5), 5, "class instances fix dead vertices");

        for (kind, expect) in [
            ("grid", TopologySpec::Grid),
            ("heavy-hex", TopologySpec::HeavyHex),
            ("brick", TopologySpec::Brick),
            ("torus", TopologySpec::Torus),
        ] {
            let line = format!(
                r#"{{"side": 4, "router": "ats", "class": "random", "seed": 0, "topology": {{"kind": "{kind}"}}}}"#
            );
            let job = RouteJob::from_json_line(&line).unwrap();
            assert_eq!(job.topology, expect, "{kind}");
            let (topology, pi) = job.resolve().unwrap();
            assert_eq!(pi.len(), topology.len(), "{kind}");
        }
    }

    #[test]
    fn malformed_topologies_error_with_context() {
        for (line, needle) in [
            (
                r#"{"side": 4, "class": "random", "seed": 0, "topology": 7}"#,
                "object",
            ),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "topology": {"kind": "moebius"}}"#,
                "moebius",
            ),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "topology": {"defects": [1]}}"#,
                "kind",
            ),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "topology": {"kind": "grid", "defects": [1]}}"#,
                "only apply",
            ),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "topology": {"kind": "defect", "bogus": 1}}"#,
                "bogus",
            ),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "topology": {"kind": "defect", "defects": ["x"]}}"#,
                "integers",
            ),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "topology": {"kind": "defect", "dead_edges": [[0]]}}"#,
                "pairs",
            ),
        ] {
            let err = RouteJob::from_json_line(line).unwrap_err();
            assert!(err.to_string().contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn defect_resolution_errors_are_per_job() {
        // Out-of-range, duplicate, emptied, disconnected, moved-dead,
        // non-random class off-grid: all Err, never panic.
        for (line, needle) in [
            (
                r#"{"side": 2, "class": "random", "seed": 0, "topology": {"kind": "defect", "defects": [4]}}"#,
                "out of range",
            ),
            (
                r#"{"side": 2, "class": "random", "seed": 0, "topology": {"kind": "defect", "defects": [1, 1]}}"#,
                "duplicate",
            ),
            (
                r#"{"side": 1, "class": "random", "seed": 0, "topology": {"kind": "defect", "defects": [0]}}"#,
                "no alive vertex",
            ),
            (
                r#"{"side": 3, "class": "random", "seed": 0, "topology": {"kind": "defect", "defects": [1, 3]}}"#,
                "disconnects",
            ),
            (
                r#"{"side": 2, "perm": [1, 0, 2, 3], "topology": {"kind": "defect", "defects": [3], "dead_edges": [[0, 3]]}}"#,
                "not a coupling edge",
            ),
            (
                r#"{"side": 2, "perm": [0, 1, 3, 2], "topology": {"kind": "defect", "defects": [3]}}"#,
                "dead vertex",
            ),
            (
                r#"{"side": 4, "class": "block2", "seed": 0, "topology": {"kind": "heavy-hex"}}"#,
                "only \"random\"",
            ),
            (
                r#"{"side": 2, "class": "random", "seed": 0, "topology": {"kind": "torus"}}"#,
                "at least 3",
            ),
        ] {
            let err = RouteJob::from_json_line(line)
                .unwrap()
                .resolve()
                .unwrap_err();
            assert!(err.to_string().contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn outcome_serializes_stable_jsonl() {
        let ok = RouteOutcome {
            v: None,
            id: 3,
            side: Some(8),
            router: Some("ats".to_string()),
            cache: Some("hit".to_string()),
            depth: Some(12),
            size: Some(40),
            lower_bound: Some(9),
            time_ms: None,
            code: None,
            error: None,
        };
        assert_eq!(
            ok.to_json_line(),
            r#"{"id":3,"side":8,"router":"ats","cache":"hit","depth":12,"size":40,"lower_bound":9,"time_ms":null,"code":null,"error":null}"#
        );
        let err = RouteOutcome::from_error(4, None, None, &ServiceError::Parse("boom".to_string()));
        assert_eq!(
            err.to_json_line(),
            r#"{"id":4,"side":null,"router":null,"cache":null,"depth":null,"size":null,"lower_bound":null,"time_ms":null,"code":"parse","error":"boom"}"#
        );
    }

    #[test]
    fn outcome_emits_v_only_when_the_job_declared_one() {
        let versioned = RouteOutcome {
            v: Some(1),
            id: 0,
            side: Some(2),
            router: Some("ats".to_string()),
            cache: Some("miss".to_string()),
            depth: Some(1),
            size: Some(1),
            lower_bound: Some(1),
            time_ms: None,
            code: None,
            error: None,
        };
        assert!(versioned.to_json_line().starts_with(r#"{"v":1,"id":0,"#));
        let version_err = RouteOutcome::from_error(7, Some(2), None, &ServiceError::Version(9));
        let line = version_err.to_json_line();
        assert!(
            line.contains(r#""code":"version""#) && !line.contains(r#""v":"#),
            "{line}"
        );
    }
}
