//! Request/response types of the routing service and their JSONL wire
//! format.
//!
//! One job per line. A job names a square grid side, a router (a
//! [`RouterKind::label`] or `"auto"` for feature-based dispatch), and a
//! permutation — either an explicit image table (`"perm"`) or a seeded
//! workload-class reference (`"class"` + `"seed"`, the same class labels
//! the benchmark matrix uses):
//!
//! ```text
//! {"side": 8, "router": "auto", "class": "block4", "seed": 3}
//! {"side": 4, "router": "ats", "perm": [1, 0, 2, 3, ...]}
//! ```
//!
//! One [`RouteOutcome`] line per job, in job order, with `null` for
//! fields an errored job could not produce. With timing capture disabled
//! (the default), outcome lines are byte-deterministic for fixed inputs
//! regardless of worker count.

use qroute_core::RouterKind;
use qroute_perm::{generators, Permutation};
use qroute_topology::Grid;
use serde::Serialize;

/// Largest accepted grid side (2²⁰ = 1,048,576 qubits at side 1024 —
/// far beyond any near-term grid). The cap turns absurd `side` values
/// into per-job error outcomes instead of multi-terabyte allocation
/// aborts on the submit thread, and keeps `side * side` far from
/// overflow on every platform.
pub const MAX_SIDE: usize = 1024;

/// Router requested by a job.
#[derive(Debug, Clone)]
pub enum RouterSpec {
    /// Pick per job from instance features (see [`crate::dispatch`]).
    Auto,
    /// A fixed router kind in its default configuration.
    Fixed(RouterKind),
}

/// Permutation payload of a job.
#[derive(Debug, Clone)]
pub enum PermSpec {
    /// An explicit image table (`perm[v] = π(v)`), validated at
    /// resolution time.
    Explicit(Vec<usize>),
    /// A seeded workload-class instance (benchmark class labels:
    /// `random`, `block<B>`, `overlap<B>s<S>`, `skinny`).
    Class {
        /// The class label.
        label: String,
        /// The generator seed.
        seed: u64,
    },
}

/// One routing request: a square grid, a router choice, and a
/// permutation.
#[derive(Debug, Clone)]
pub struct RouteJob {
    /// Side of the square grid (`side × side` qubits).
    pub side: usize,
    /// Requested router.
    pub router: RouterSpec,
    /// Requested permutation.
    pub perm: PermSpec,
}

impl RouteJob {
    /// A class-reference job (`router` is a label or `"auto"`).
    pub fn from_class(
        side: usize,
        router: &str,
        class: &str,
        seed: u64,
    ) -> Result<RouteJob, String> {
        Ok(RouteJob {
            side,
            router: parse_router(router)?,
            perm: PermSpec::Class { label: class.to_string(), seed },
        })
    }

    /// An explicit-permutation job.
    pub fn explicit(side: usize, router: RouterSpec, pi: &Permutation) -> RouteJob {
        RouteJob { side, router, perm: PermSpec::Explicit(pi.as_slice().to_vec()) }
    }

    /// Parse one JSONL line. Strict: unknown fields, missing required
    /// fields, conflicting `perm`/`class`, and malformed values are all
    /// errors (which the engine turns into per-job error outcomes rather
    /// than aborting the batch).
    pub fn from_json_line(line: &str) -> Result<RouteJob, String> {
        let doc = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let serde_json::Value::Object(entries) = &doc else {
            return Err("job line must be a JSON object".to_string());
        };
        for (field, _) in entries {
            if !matches!(
                field.as_str(),
                "side" | "router" | "perm" | "class" | "seed"
            ) {
                return Err(format!(
                    "unknown job field {field:?} (expected side, router, perm, class, seed)"
                ));
            }
        }
        let side = doc
            .get("side")
            .and_then(|v| v.as_u64())
            .ok_or("job needs an integer \"side\"")? as usize;
        if side == 0 {
            return Err("\"side\" must be at least 1".to_string());
        }
        let router = match doc.get("router") {
            None => RouterSpec::Auto,
            Some(v) => parse_router(v.as_str().ok_or("\"router\" must be a string")?)?,
        };
        let perm = match (doc.get("perm"), doc.get("class")) {
            (Some(_), Some(_)) => {
                return Err("job has both \"perm\" and \"class\"; pick one".to_string())
            }
            (None, None) => return Err("job needs either \"perm\" or \"class\"".to_string()),
            (Some(p), None) => {
                if doc.get("seed").is_some() {
                    return Err("\"seed\" only applies to class jobs".to_string());
                }
                let table = p
                    .as_array()
                    .ok_or("\"perm\" must be an array of integers")?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .map(|v| v as usize)
                            .ok_or_else(|| "\"perm\" must be an array of integers".to_string())
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
                PermSpec::Explicit(table)
            }
            (None, Some(c)) => PermSpec::Class {
                label: c.as_str().ok_or("\"class\" must be a string")?.to_string(),
                seed: doc
                    .get("seed")
                    .and_then(|v| v.as_u64())
                    .ok_or("class jobs need an integer \"seed\"")?,
            },
        };
        Ok(RouteJob { side, router, perm })
    }

    /// Materialize the instance: the grid and a validated permutation.
    pub fn resolve(&self) -> Result<(Grid, Permutation), String> {
        if self.side == 0 || self.side > MAX_SIDE {
            // An absurd side must become a per-job error outcome, not an
            // allocation abort that takes the whole batch down.
            return Err(format!("side {} out of range (1..={MAX_SIDE})", self.side));
        }
        let grid = Grid::new(self.side, self.side);
        let pi = match &self.perm {
            PermSpec::Explicit(table) => {
                if table.len() != grid.len() {
                    return Err(format!(
                        "\"perm\" has {} entries; side {} needs {}",
                        table.len(),
                        self.side,
                        grid.len()
                    ));
                }
                Permutation::from_vec(table.clone()).map_err(|e| e.to_string())?
            }
            PermSpec::Class { label, seed } => generate_class(grid, label, *seed)?,
        };
        Ok((grid, pi))
    }
}

fn parse_router(s: &str) -> Result<RouterSpec, String> {
    if s == "auto" {
        Ok(RouterSpec::Auto)
    } else {
        Ok(RouterSpec::Fixed(s.parse::<RouterKind>()?))
    }
}

/// Generate a benchmark-class instance from its label (`random`,
/// `block<B>`, `overlap<B>s<S>`, `skinny`).
fn generate_class(grid: Grid, label: &str, seed: u64) -> Result<Permutation, String> {
    if label == "random" {
        return Ok(generators::random(grid.len(), seed));
    }
    if label == "skinny" {
        return Ok(generators::skinny_cycles(grid, seed));
    }
    if let Some(b) = label.strip_prefix("block") {
        let b: usize = b
            .parse()
            .map_err(|_| format!("malformed block class {label:?} (want e.g. \"block4\")"))?;
        if b == 0 {
            return Err("block size must be at least 1".to_string());
        }
        return Ok(generators::block_local(grid, b, b, seed));
    }
    if let Some(rest) = label.strip_prefix("overlap") {
        let parts: Vec<&str> = rest.splitn(2, 's').collect();
        let parsed = match parts.as_slice() {
            [b, s] => b.parse::<usize>().ok().zip(s.parse::<usize>().ok()),
            _ => None,
        };
        let Some((b, s)) = parsed else {
            return Err(format!(
                "malformed overlap class {label:?} (want e.g. \"overlap8s4\")"
            ));
        };
        if b == 0 || s == 0 {
            return Err("overlap window and stride must be at least 1".to_string());
        }
        return Ok(generators::overlapping_blocks(grid, b, b, s, s, seed));
    }
    Err(format!(
        "unknown class {label:?}; expected random, block<B>, overlap<B>s<S>, or skinny"
    ))
}

/// Whether a routed result was served from the canonical cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The canonical form was routed for this job.
    Miss,
    /// The canonical form was already cached (or in flight).
    Hit,
}

impl CacheStatus {
    /// Stable wire label.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
        }
    }
}

/// One result line: metrics for a routed job, or a per-job error.
///
/// Field order is the wire order. `time_ms` is `null` unless the engine
/// captured timing (timing is off by default so output bytes are
/// deterministic); error outcomes carry `null` metrics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouteOutcome {
    /// Job id: the 0-based position of the job in submission order.
    pub id: u64,
    /// Grid side echoed from the job (`None` when the line never parsed).
    pub side: Option<usize>,
    /// Resolved router label (concrete even for `auto` jobs).
    pub router: Option<String>,
    /// Cache status (`"hit"` / `"miss"`).
    pub cache: Option<String>,
    /// Schedule depth (layers).
    pub depth: Option<usize>,
    /// Schedule size (total swaps).
    pub size: Option<usize>,
    /// Depth lower bound of the instance on its own grid.
    pub lower_bound: Option<usize>,
    /// Wall-clock routing time for cache misses (`0.0` for hits) when
    /// timing capture is on; `null` otherwise.
    pub time_ms: Option<f64>,
    /// Error message for jobs that failed to parse, resolve, or route.
    pub error: Option<String>,
}

impl RouteOutcome {
    /// The error outcome for job `id`.
    pub fn from_error(id: u64, side: Option<usize>, error: String) -> RouteOutcome {
        RouteOutcome {
            id,
            side,
            router: None,
            cache: None,
            depth: None,
            size: None,
            lower_bound: None,
            time_ms: None,
            error: Some(error),
        }
    }

    /// Serialize as one compact JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("serialize outcome")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_and_perm_jobs() {
        let job = RouteJob::from_json_line(
            r#"{"side": 8, "router": "auto", "class": "overlap4s2", "seed": 5}"#,
        )
        .unwrap();
        assert_eq!(job.side, 8);
        assert!(matches!(job.router, RouterSpec::Auto));
        let (grid, pi) = job.resolve().unwrap();
        assert_eq!(grid.len(), 64);
        assert_eq!(pi.len(), 64);

        let job = RouteJob::from_json_line(r#"{"side": 2, "router": "ats", "perm": [1, 0, 2, 3]}"#)
            .unwrap();
        let (_, pi) = job.resolve().unwrap();
        assert_eq!(pi.apply(0), 1);
        // Router defaults to auto when omitted.
        let job = RouteJob::from_json_line(r#"{"side": 2, "perm": [0, 1, 2, 3]}"#).unwrap();
        assert!(matches!(job.router, RouterSpec::Auto));
    }

    #[test]
    fn every_router_label_parses() {
        for kind in RouterKind::all_default() {
            let line = format!(
                r#"{{"side": 4, "router": "{}", "class": "random", "seed": 0}}"#,
                kind.label()
            );
            let job = RouteJob::from_json_line(&line).unwrap();
            match job.router {
                RouterSpec::Fixed(parsed) => assert_eq!(parsed.label(), kind.label()),
                RouterSpec::Auto => panic!("{} parsed as auto", kind.label()),
            }
        }
    }

    #[test]
    fn malformed_jobs_error_with_context() {
        for (line, needle) in [
            ("not json", "JSON"),
            ("[1, 2]", "object"),
            (r#"{"router": "ats", "class": "random", "seed": 0}"#, "side"),
            (r#"{"side": 0, "class": "random", "seed": 0}"#, "side"),
            (
                r#"{"side": 4, "router": "warp", "class": "random", "seed": 0}"#,
                "warp",
            ),
            (r#"{"side": 4, "class": "random"}"#, "seed"),
            (r#"{"side": 4, "perm": [0], "seed": 1}"#, "seed"),
            (r#"{"side": 4, "perm": [0], "class": "random"}"#, "pick one"),
            (r#"{"side": 4}"#, "either"),
            (
                r#"{"side": 4, "class": "random", "seed": 0, "bogus": 1}"#,
                "bogus",
            ),
            (r#"{"side": 4, "perm": [0, "x"]}"#, "integers"),
        ] {
            let err = RouteJob::from_json_line(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn resolve_rejects_malformed_class_labels() {
        for (class, needle) in [
            ("blockx", "block"),
            ("block0", "at least 1"),
            ("overlap4", "overlap"),
            ("overlap0s1", "at least 1"),
            ("mystery", "mystery"),
        ] {
            let line = format!(r#"{{"side": 4, "class": "{class}", "seed": 0}}"#);
            let job = RouteJob::from_json_line(&line).unwrap();
            let err = job.resolve().unwrap_err();
            assert!(err.contains(needle), "{class}: {err}");
        }
    }

    #[test]
    fn resolve_validates_explicit_permutations() {
        let short = RouteJob::from_json_line(r#"{"side": 2, "perm": [1, 0]}"#).unwrap();
        assert!(short.resolve().unwrap_err().contains("4"));
        // An absurd side is a per-job error, not an allocation abort.
        let huge =
            RouteJob::from_json_line(r#"{"side": 1000000000, "class": "random", "seed": 0}"#)
                .unwrap();
        assert!(huge.resolve().unwrap_err().contains("out of range"));
        let max = RouteJob::from_class(MAX_SIDE, "ats", "skinny", 0).unwrap();
        assert_eq!(max.side, MAX_SIDE);
        let repeat = RouteJob::from_json_line(r#"{"side": 2, "perm": [0, 0, 2, 3]}"#).unwrap();
        assert!(repeat.resolve().unwrap_err().contains("permutation"));
    }

    #[test]
    fn outcome_serializes_stable_jsonl() {
        let ok = RouteOutcome {
            id: 3,
            side: Some(8),
            router: Some("ats".to_string()),
            cache: Some("hit".to_string()),
            depth: Some(12),
            size: Some(40),
            lower_bound: Some(9),
            time_ms: None,
            error: None,
        };
        assert_eq!(
            ok.to_json_line(),
            r#"{"id":3,"side":8,"router":"ats","cache":"hit","depth":12,"size":40,"lower_bound":9,"time_ms":null,"error":null}"#
        );
        let err = RouteOutcome::from_error(4, None, "boom".to_string());
        assert_eq!(
            err.to_json_line(),
            r#"{"id":4,"side":null,"router":null,"cache":null,"depth":null,"size":null,"lower_bound":null,"time_ms":null,"error":"boom"}"#
        );
    }
}
