//! The `auto` router-selection policy.
//!
//! §V of the paper (and the committed benchmark matrix) splits routing
//! workloads into three regimes with different winners: block-local
//! instances (the locality-aware router's home turf), overlapping-window
//! instances (where approximate token swapping is ahead), and global
//! instances (where the hybrid clamp — locality-aware ⊓ naive — is the
//! safe pick). This module classifies a job into one of those regimes
//! from features that cost `O(n)` to compute — orders of magnitude less
//! than trial-routing every candidate.

use qroute_core::RouterKind;
use qroute_perm::{metrics, Permutation};
use qroute_topology::{Grid, Topology};

/// Cheap instance features the policy keys off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// Sum of L1 displacements over all tokens.
    pub total_displacement: usize,
    /// Largest single-token L1 displacement.
    pub max_displacement: usize,
    /// Number of tokens that move at all (the permutation's support
    /// size) — the density signal behind the pathfinder regime.
    pub moved_tokens: usize,
    /// `metrics::block_locality_score`: 1 − max cycle spread / diameter.
    pub block_locality_score: f64,
    /// L1 diameter of the grid.
    pub diameter: usize,
}

/// Compute the feature vector of an instance.
pub fn features(grid: Grid, pi: &Permutation) -> InstanceFeatures {
    InstanceFeatures {
        total_displacement: metrics::total_displacement(grid, pi),
        max_displacement: metrics::max_displacement(grid, pi),
        moved_tokens: pi.support_size(),
        block_locality_score: metrics::block_locality_score(grid, pi),
        diameter: (grid.rows() - 1) + (grid.cols() - 1),
    }
}

/// Block-locality score at or above which an instance counts as
/// block-local (every cycle confined to a quarter-diameter region).
pub const LOCAL_SCORE_THRESHOLD: f64 = 0.75;

/// A permutation moving at most this fraction of its tokens counts as a
/// sparse partial permutation — the pathfinder regime, checked *before*
/// block locality because a handful of local 2-cycles is still cheaper
/// per token than any full-grid matching sweep.
pub const SPARSE_SUPPORT_FRACTION: f64 = 0.25;

/// Resolve `auto` to a concrete router for one instance:
///
/// * identity → the paper's locality-aware router (free either way);
/// * sparse partial permutation (support ≤ [`SPARSE_SUPPORT_FRACTION`]
///   of the tokens) → the pathfinder router, whose negotiated per-token
///   search pays per moved token instead of per grid sweep;
/// * block-local (score ≥ [`LOCAL_SCORE_THRESHOLD`]) → the paper's
///   locality-aware router;
/// * small average displacement (≤ 2 per token) or mid-range
///   displacement (`2 · max ≤ diameter`, the overlapping-window
///   signature) → approximate token swapping;
/// * global otherwise → the hybrid clamp, never deeper than the naive
///   3-phase bound.
///
/// Deterministic per instance, so `auto` jobs stay byte-reproducible.
pub fn select_router(grid: Grid, pi: &Permutation) -> RouterKind {
    let f = features(grid, pi);
    let picked = if f.max_displacement == 0 {
        RouterKind::locality_aware()
    } else if (f.moved_tokens as f64) <= SPARSE_SUPPORT_FRACTION * pi.len() as f64 {
        RouterKind::pathfinder()
    } else if f.block_locality_score >= LOCAL_SCORE_THRESHOLD {
        RouterKind::locality_aware()
    } else if f.total_displacement <= 2 * pi.len() || 2 * f.max_displacement <= f.diameter {
        RouterKind::Ats
    } else {
        RouterKind::hybrid()
    };
    qroute_obs::trace::event(
        "dispatch.auto",
        &[
            ("picked", qroute_obs::FieldValue::Str(picked.label())),
            (
                "total_displacement",
                qroute_obs::FieldValue::U64(f.total_displacement as u64),
            ),
            (
                "max_displacement",
                qroute_obs::FieldValue::U64(f.max_displacement as u64),
            ),
            (
                "moved_tokens",
                qroute_obs::FieldValue::U64(f.moved_tokens as u64),
            ),
            (
                "block_locality_score",
                qroute_obs::FieldValue::F64(f.block_locality_score),
            ),
            ("diameter", qroute_obs::FieldValue::U64(f.diameter as u64)),
        ],
    );
    picked
}

/// [`select_router`] generalized over a [`Topology`]: full grids go
/// through the feature-based policy; every other topology picks between
/// the two topology-generic parallel routers — pathfinder for sparse
/// partial permutations (support ≤ [`SPARSE_SUPPORT_FRACTION`]),
/// approximate token swapping otherwise. Deterministic per instance,
/// like [`select_router`].
pub fn select_router_on(topology: &Topology, pi: &Permutation) -> RouterKind {
    match topology.as_grid() {
        Some(grid) => select_router(grid, pi),
        None => {
            let moved = pi.support_size();
            let picked = if moved > 0 && (moved as f64) <= SPARSE_SUPPORT_FRACTION * pi.len() as f64
            {
                RouterKind::pathfinder()
            } else {
                RouterKind::Ats
            };
            qroute_obs::trace::event(
                "dispatch.auto",
                &[
                    ("picked", qroute_obs::FieldValue::Str(picked.label())),
                    ("moved_tokens", qroute_obs::FieldValue::U64(moved as u64)),
                ],
            );
            picked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::generators;

    #[test]
    fn identity_and_tiny_grids_pick_locality_aware() {
        let grid = Grid::new(1, 1);
        assert_eq!(
            select_router(grid, &Permutation::identity(1)).label(),
            "locality-aware"
        );
        let grid = Grid::new(8, 8);
        assert_eq!(
            select_router(grid, &Permutation::identity(64)).label(),
            "locality-aware"
        );
    }

    #[test]
    fn block_local_instances_pick_locality_aware() {
        let grid = Grid::new(16, 16);
        for seed in 0..5 {
            let pi = generators::block_local(grid, 4, 4, seed);
            assert_eq!(
                select_router(grid, &pi).label(),
                "locality-aware",
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sparse_instances_pick_pathfinder() {
        let grid = Grid::new(16, 16);
        // 8 moved tokens out of 256: per-token search pays per token,
        // regardless of how block-local the pairs happen to be.
        for seed in 0..5 {
            let pi = generators::sparse_random(grid.len(), 8, seed);
            assert_eq!(
                select_router(grid, &pi).label(),
                "pathfinder",
                "seed {seed}"
            );
            let pairs = generators::sparse_pairs(grid, 8, 4, seed);
            assert_eq!(
                select_router(grid, &pairs).label(),
                "pathfinder",
                "local pairs seed {seed}"
            );
        }
        // Right at the density boundary: 64 of 256 still sparse, 65 not.
        let at = generators::sparse_random(grid.len(), 64, 1);
        assert_eq!(select_router(grid, &at).label(), "pathfinder");
        let above = generators::sparse_random(grid.len(), 65, 1);
        assert_ne!(select_router(grid, &above).label(), "pathfinder");
    }

    #[test]
    fn global_random_instances_pick_hybrid() {
        let grid = Grid::new(16, 16);
        for seed in 0..5 {
            let pi = generators::random(grid.len(), seed);
            assert_eq!(select_router(grid, &pi).label(), "hybrid", "seed {seed}");
        }
    }

    #[test]
    fn non_grid_topologies_split_between_ats_and_pathfinder() {
        let topology = Topology::heavy_hex(4, 4);
        let pi = generators::random(topology.len(), 0);
        assert_eq!(select_router_on(&topology, &pi).label(), "ats");
        // A sparse instance on the same topology goes to pathfinder, and
        // the identity stays with ATS (both are free on it).
        let sparse = generators::sparse_random(topology.len(), 4, 0);
        assert_eq!(select_router_on(&topology, &sparse).label(), "pathfinder");
        let id = Permutation::identity(topology.len());
        assert_eq!(select_router_on(&topology, &id).label(), "ats");
        // A full grid goes through the regular policy.
        let pi = generators::random(64, 0);
        assert_eq!(
            select_router_on(&Topology::grid(8, 8), &pi).label(),
            select_router(Grid::new(8, 8), &pi).label()
        );
    }

    #[test]
    fn policy_matches_features() {
        // The policy is a pure function of the features — spot-check that
        // the three branches are each reachable and consistent.
        let grid = Grid::new(12, 12);
        let mut labels = std::collections::BTreeSet::new();
        for seed in 0..8 {
            for pi in [
                generators::block_local(grid, 3, 3, seed),
                generators::overlapping_blocks(grid, 4, 4, 2, 2, seed),
                generators::random(grid.len(), seed),
                generators::sparse_random(grid.len(), 6, seed),
            ] {
                let f = features(grid, &pi);
                let got = select_router(grid, &pi).label();
                let expect = if f.max_displacement == 0 {
                    "locality-aware"
                } else if (f.moved_tokens as f64) <= SPARSE_SUPPORT_FRACTION * pi.len() as f64 {
                    "pathfinder"
                } else if f.block_locality_score >= LOCAL_SCORE_THRESHOLD {
                    "locality-aware"
                } else if f.total_displacement <= 2 * pi.len()
                    || 2 * f.max_displacement <= f.diameter
                {
                    "ats"
                } else {
                    "hybrid"
                };
                assert_eq!(got, expect);
                labels.insert(got);
            }
        }
        assert!(
            labels.len() >= 2,
            "workloads exercise multiple branches: {labels:?}"
        );
    }
}
