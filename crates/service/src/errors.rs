//! The unified service-layer error type.
//!
//! Before this module existed, every failure mode in the service layer
//! was a bare `String`: parse failures, resolution failures, unsupported
//! router/topology pairings, worker panics. Daemon clients need to
//! *branch* on error kind (retry on backpressure, fix the job on
//! validation errors, reconnect on shutdown), so [`ServiceError`] gives
//! every failure a stable machine-readable [`ServiceError::code`] that
//! is carried verbatim in the `"code"` field of error outcomes, while
//! [`std::fmt::Display`] keeps the human-readable message the `String`
//! era produced (several tests and downstream scripts match on message
//! fragments like `"out of range"` — those stay intact).

use qroute_core::UnsupportedTopology;

/// Every way a routing job, an engine, or the daemon can fail.
///
/// The [`ServiceError::code`] string is part of the wire protocol:
/// clients branch on it, so codes are append-only — never rename one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request line was not a well-formed job (bad JSON, unknown
    /// fields, missing required fields). Code `parse`.
    Parse(String),
    /// The job declared a wire protocol version this service does not
    /// speak (see the README's versioning rule: absent ⇒ v1). The
    /// payload is the requested version. Code `version`.
    Version(u64),
    /// The job parsed but failed validation or resolution (side out of
    /// range, malformed class label, permutation that does not fit,
    /// invalid defect pattern, ...). Code `invalid-job`.
    Invalid(String),
    /// A grid-only router was paired with a non-grid topology. Code
    /// `unsupported-router`.
    Unsupported(UnsupportedTopology),
    /// Per-client admission control rejected the job: the connection
    /// already has `limit` jobs in flight. The job was *not* routed;
    /// resubmit after draining outcomes. Code `backpressure`.
    Backpressure {
        /// The connection's in-flight limit at rejection time.
        limit: usize,
    },
    /// The engine or daemon shut down before this job was routed. Code
    /// `shutdown`.
    Shutdown,
    /// The job's deadline passed before its route finished (its compute
    /// was cooperatively cancelled at the next routing round). The
    /// payload is the effective deadline in milliseconds. Code
    /// `timeout`.
    Timeout {
        /// The deadline that was exceeded, in milliseconds (the job's
        /// own `deadline_ms`, or the daemon-wide default).
        deadline_ms: u64,
    },
    /// A router panicked on the job's canonical instance — a router bug,
    /// contained to this job. Code `router-panic`.
    RouterPanic {
        /// The router's stable label.
        router: String,
        /// Display form of the canonical topology it panicked on.
        topology: String,
    },
    /// An [`crate::EngineConfig`] failed builder validation. Code
    /// `config`.
    Config(String),
    /// A socket/transport failure (client side, or daemon bind). Code
    /// `io`.
    Io(String),
}

impl ServiceError {
    /// The stable machine-readable discriminator carried in the
    /// `"code"` field of error outcomes.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Parse(_) => "parse",
            ServiceError::Version(_) => "version",
            ServiceError::Invalid(_) => "invalid-job",
            ServiceError::Unsupported(_) => "unsupported-router",
            ServiceError::Backpressure { .. } => "backpressure",
            ServiceError::Shutdown => "shutdown",
            ServiceError::Timeout { .. } => "timeout",
            ServiceError::RouterPanic { .. } => "router-panic",
            ServiceError::Config(_) => "config",
            ServiceError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Parse(msg) | ServiceError::Invalid(msg) | ServiceError::Io(msg) => {
                f.write_str(msg)
            }
            ServiceError::Version(v) => write!(
                f,
                "unsupported wire version {v} (this service speaks v1; omit \"v\" or send 1)"
            ),
            ServiceError::Unsupported(u) => u.fmt(f),
            ServiceError::Backpressure { limit } => write!(
                f,
                "client queue full ({limit} jobs in flight); collect outcomes before submitting more"
            ),
            ServiceError::Shutdown => f.write_str("engine shut down before routing"),
            ServiceError::Timeout { deadline_ms } => {
                write!(f, "job exceeded its {deadline_ms} ms deadline")
            }
            ServiceError::RouterPanic { router, topology } => {
                write!(f, "router {router} panicked on a canonical {topology} instance")
            }
            ServiceError::Config(msg) => write!(f, "invalid engine config: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ServiceError::Parse("x".into()),
            ServiceError::Version(2),
            ServiceError::Invalid("x".into()),
            ServiceError::Unsupported(UnsupportedTopology {
                router: "locality-aware",
                topology: "heavy-hex(4x4)".into(),
            }),
            ServiceError::Backpressure { limit: 8 },
            ServiceError::Shutdown,
            ServiceError::Timeout { deadline_ms: 50 },
            ServiceError::RouterPanic { router: "ats".into(), topology: "grid(2x2)".into() },
            ServiceError::Config("x".into()),
            ServiceError::Io("x".into()),
        ];
        let codes: Vec<&str> = errors.iter().map(ServiceError::code).collect();
        assert_eq!(
            codes,
            vec![
                "parse",
                "version",
                "invalid-job",
                "unsupported-router",
                "backpressure",
                "shutdown",
                "timeout",
                "router-panic",
                "config",
                "io",
            ]
        );
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be distinct");
    }

    #[test]
    fn display_preserves_the_string_era_messages() {
        // Messages existing tests and scripts grep for.
        assert_eq!(
            ServiceError::Invalid("side 2000000 out of range (1..=1024)".into()).to_string(),
            "side 2000000 out of range (1..=1024)"
        );
        assert_eq!(
            ServiceError::Shutdown.to_string(),
            "engine shut down before routing"
        );
        assert_eq!(
            ServiceError::Timeout { deadline_ms: 250 }.to_string(),
            "job exceeded its 250 ms deadline"
        );
        let unsupported = ServiceError::Unsupported(UnsupportedTopology {
            router: "locality-aware",
            topology: "heavy-hex(4x4, 16+24 vertices)".into(),
        });
        let msg = unsupported.to_string();
        assert!(msg.contains("full grids"), "{msg}");
        assert!(msg.contains("heavy-hex"), "{msg}");
        let panic =
            ServiceError::RouterPanic { router: "ats".into(), topology: "grid(2x2)".into() };
        assert!(panic.to_string().contains("panicked"), "{panic}");
        assert!(
            ServiceError::Version(3)
                .to_string()
                .contains("wire version 3"),
            "{}",
            ServiceError::Version(3)
        );
        assert!(ServiceError::Backpressure { limit: 4 }
            .to_string()
            .contains("4 jobs in flight"),);
    }
}
