//! The persistent routing daemon: a long-lived TCP server speaking the
//! JSONL job wire format, one request line in → one outcome line out.
//!
//! Architecture, per connection:
//!
//! ```text
//!  reader thread (one per connection)
//!    read line → admission check → parse/resolve → plan (canonicalize)
//!      → per-shard-locked shared cache get_or_insert → dispatch miss
//!      → enqueue wait-ticket on the connection's ordered channel ──┐
//!  worker pool (shared, routes canonical instances)                │
//!  writer thread (one per connection)                              │
//!    pop ticket → wait on its slot → write outcome line  ◄─────────┘
//! ```
//!
//! **Concurrency without losing determinism.** Unlike the in-process
//! [`Engine`](crate::Engine), nothing serializes on a global submit
//! thread: every connection plans (resolves, canonicalizes) and looks up
//! the **shared** cache on its own reader thread, synchronized only by
//! the cache's per-shard mutexes
//! ([`ShardedLru::get_or_insert_with`]). The determinism guarantee is
//! scoped *per connection*: outcome order matches that connection's
//! submit order, and the hit/miss status on each outcome comes from a
//! private per-connection *mirror* cache (same capacity and sharding,
//! tracking keys only) that replays the connection's stream exactly the
//! way a single-threaded `repro batch` would — so a connection's outcome
//! bytes are identical to batch output for the same job list, no matter
//! how many other clients are connected. The shared cache still dedups
//! *computation* across connections (a mirror-miss may be served from
//! another connection's routed slot; routers are deterministic, so
//! depth/size are identical either way).
//!
//! **Admission control.** Each connection may have at most
//! `client_queue_depth` jobs in flight (submitted, outcome not yet
//! written). Excess job lines are rejected immediately with an in-order
//! error outcome (code `backpressure`) — never a hang — and do not count
//! against the limit. A client that floods without reading outcomes
//! eventually blocks in TCP flow control, which bounds daemon memory; it
//! cannot wedge the server.
//!
//! **Control requests.** A line that is a JSON object with a `"req"`
//! field is a control request, answered in stream order like any job:
//! `{"req": "stats"}` returns `{"stats": {...}}` (a serialized
//! [`StatsSnapshot`]); `{"req": "metrics"}` returns
//! `{"metrics": "..."}` — the registry's Prometheus text exposition as
//! one JSON-escaped string; `{"req": "shutdown"}` acknowledges with
//! `{"ok": "shutdown"}` and begins a graceful drain: the listener stops
//! accepting, open connections finish every accepted job, then the
//! daemon exits; `{"req": "retried", "n": K}` lets a reconnecting client
//! report K resubmissions for the `retries_observed` counter. Control
//! requests consume no job id.
//!
//! **Deadlines.** A job line may carry `"deadline_ms"`; jobs without one
//! inherit the daemon's `default_deadline_ms` (when set). The deadline
//! is measured from admission: if it passes before the route finishes,
//! the job gets a `timeout` error outcome, the compute is cooperatively
//! cancelled at its next routing-round checkpoint, and the key is
//! evicted so a later duplicate recomputes. Later jobs on the same
//! connection are unaffected.
//!
//! The daemon always runs with timing capture off (`time_ms` is `null`),
//! keeping outcome bytes deterministic and batch-identical.

use crate::cache::ShardedLru;
use crate::engine::{plan_route, EngineConfig, RouteSlot, WorkItem, WorkerPool};
use crate::errors::ServiceError;
use crate::job::{CacheStatus, RouteJob, RouteOutcome};
use qroute_core::budget::RouteBudget;
use qroute_obs::{Counter, Gauge, Log2Histogram, Registry};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Jobs routed per router kind, one row of [`StatsSnapshot::routers`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouterJobs {
    /// The router's stable label.
    pub router: String,
    /// Jobs dispatched to it (cache hits included — the job was
    /// *answered* by this router's schedule).
    pub jobs: u64,
}

/// A point-in-time view of daemon counters, returned by
/// [`Daemon::stats`] and the wire `{"req": "stats"}` request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Successfully routed job outcomes written.
    pub jobs_routed: u64,
    /// Error outcomes written (parse, validation, version, backpressure,
    /// shutdown, panic).
    pub jobs_errored: u64,
    /// Connections accepted since the daemon started.
    pub connections: u64,
    /// Jobs currently in flight across all connections (admitted,
    /// outcome not yet written).
    pub queue_depth: u64,
    /// Shared-cache hits (see [`crate::CacheStats`]).
    pub cache_hits: u64,
    /// Shared-cache misses.
    pub cache_misses: u64,
    /// Shared-cache evictions.
    pub cache_evictions: u64,
    /// Shared-cache hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Jobs per router kind, sorted by label.
    pub routers: Vec<RouterJobs>,
    /// Median service latency (admission → outcome written) in
    /// milliseconds, at the geometric midpoint of the histogram bucket
    /// holding the median sample.
    pub latency_p50_ms: f64,
    /// 99th-percentile service latency in milliseconds.
    pub latency_p99_ms: f64,
    /// `timeout` error outcomes written (jobs whose deadline passed
    /// before their route finished). Appended field: absent in snapshots
    /// from older daemons.
    pub timeouts: u64,
    /// Crashed routing workers the pool's supervisor has respawned.
    /// Appended field.
    pub worker_restarts: u64,
    /// Client-side retries reported over the wire via
    /// `{"req": "retried", "n": K}` (see
    /// [`RetryingClient`](crate::RetryingClient)). Appended field.
    pub retries_observed: u64,
}

/// Cumulative daemon counters (all monotone except the `in_flight`
/// gauge), held as handles into a [`Registry`] so the same atomics feed
/// both [`StatsSnapshot`] (the versioned JSON wire format, unchanged)
/// and the Prometheus exposition served by `{"req": "metrics"}`.
struct DaemonStats {
    registry: Registry,
    jobs_routed: Counter,
    jobs_errored: Counter,
    connections: Counter,
    in_flight: Gauge,
    timeouts: Counter,
    retries: Counter,
    /// Per-router handle cache; each entry is also registered as
    /// `qroute_router_jobs_total{router="..."}`, so the snapshot and the
    /// exposition read the same atomic.
    dispatch: Mutex<BTreeMap<String, Counter>>,
    latency_us: Arc<Log2Histogram>,
    /// Mirrors of counters owned elsewhere ([`ShardedLru`], the worker
    /// pool supervisor), overwritten at scrape/snapshot time.
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    worker_restarts: Gauge,
}

impl DaemonStats {
    fn new() -> DaemonStats {
        let registry = Registry::new();
        DaemonStats {
            jobs_routed: registry.counter("qroute_jobs_total", "Successfully routed job outcomes"),
            jobs_errored: registry.counter(
                "qroute_job_errors_total",
                "Error outcomes (parse, validation, backpressure, shutdown, timeout, panic)",
            ),
            connections: registry.counter(
                "qroute_connections_total",
                "Connections accepted since start",
            ),
            in_flight: registry.gauge(
                "qroute_queue_depth",
                "Jobs in flight across all connections (admitted, outcome not yet written)",
            ),
            timeouts: registry.counter(
                "qroute_timeouts_total",
                "Jobs whose deadline passed before their route finished",
            ),
            retries: registry.counter(
                "qroute_retries_observed_total",
                "Client-side retries reported via {\"req\": \"retried\"}",
            ),
            dispatch: Mutex::new(BTreeMap::new()),
            latency_us: registry.histogram(
                "qroute_service_latency_us",
                "Service latency (admission to outcome written) in microseconds",
            ),
            cache_hits: registry.counter("qroute_cache_hits_total", "Shared-cache hits"),
            cache_misses: registry.counter("qroute_cache_misses_total", "Shared-cache misses"),
            cache_evictions: registry
                .counter("qroute_cache_evictions_total", "Shared-cache evictions"),
            worker_restarts: registry.gauge(
                "qroute_worker_restarts",
                "Crashed routing workers respawned by the pool supervisor",
            ),
            registry,
        }
    }

    /// The per-router dispatch counter for `label`, registering the
    /// labeled Prometheus series on first use. Monotone counters stay
    /// meaningful after a panic poisoned the lock, so handle lookup
    /// recovers from poison like every other stats path.
    fn dispatch_counter(&self, label: &str) -> Counter {
        self.dispatch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(label.to_string())
            .or_insert_with(|| {
                self.registry.labeled_counter(
                    "qroute_router_jobs_total",
                    "Jobs dispatched per router kind (cache hits included)",
                    &[("router", label)],
                )
            })
            .clone()
    }

    fn record_latency(&self, since: Instant) {
        let us = since.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.latency_us.record(us);
    }

    /// Quantile over the latency histogram in milliseconds: the
    /// [`Log2Histogram`] geometric-midpoint/ceil-rank contract (see
    /// `qroute_obs::metrics`), scaled from the recorded microseconds.
    fn latency_quantile_ms(&self, q: f64) -> f64 {
        self.latency_us.quantile(q) / 1e3
    }
}

/// State shared by the accept loop, every connection thread, and the
/// [`Daemon`] handle.
struct DaemonShared {
    config: EngineConfig,
    cache: Arc<ShardedLru<Arc<RouteSlot>>>,
    pool: WorkerPool,
    stats: DaemonStats,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Read-half clones of open connections, for shutdown wakeup.
    conns: Mutex<Vec<TcpStream>>,
}

impl DaemonShared {
    /// Idempotently begin the graceful drain: stop admitting new work,
    /// wake blocked connection readers, and wake the accept loop.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // A connection thread that panicked while holding the lock must
        // not take shutdown down with it: the registry is a plain list
        // of read-half clones, safe to use after a poison.
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let _ = conn.shutdown(Shutdown::Read);
        }
        // A throwaway self-connection unblocks the accept loop so it can
        // observe the flag (std's TcpListener has no native cancel).
        let _ = TcpStream::connect(self.addr);
    }

    fn snapshot(&self) -> StatsSnapshot {
        let cache = self.cache.stats();
        StatsSnapshot {
            jobs_routed: self.stats.jobs_routed.get(),
            jobs_errored: self.stats.jobs_errored.get(),
            connections: self.stats.connections.get(),
            queue_depth: self.stats.in_flight.get(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            hit_rate: cache.hit_rate(),
            // Plain monotone counters: still meaningful after a panic
            // poisoned the lock, so stats must keep answering.
            routers: self
                .stats
                .dispatch
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(router, jobs)| RouterJobs { router: router.clone(), jobs: jobs.get() })
                .collect(),
            latency_p50_ms: self.stats.latency_quantile_ms(0.50),
            latency_p99_ms: self.stats.latency_quantile_ms(0.99),
            timeouts: self.stats.timeouts.get(),
            worker_restarts: self.pool.restarts(),
            retries_observed: self.stats.retries.get(),
        }
    }

    /// Prometheus text exposition of the registry, with the counters
    /// owned outside [`DaemonStats`] (shared cache, pool supervisor)
    /// mirrored in first. Served by `{"req": "metrics"}`.
    fn prometheus(&self) -> String {
        let cache = self.cache.stats();
        self.stats.cache_hits.set(cache.hits);
        self.stats.cache_misses.set(cache.misses);
        self.stats.cache_evictions.set(cache.evictions);
        self.stats.worker_restarts.set(self.pool.restarts());
        self.stats.registry.to_prometheus()
    }
}

/// One entry of a connection's ordered reader → writer channel.
enum ConnItem {
    /// An already-final outcome (errors, rejections). `counted` marks
    /// whether it holds an admission slot (backpressure rejections do
    /// not).
    Ready {
        outcome: RouteOutcome,
        counted: bool,
        start: Instant,
    },
    /// A routed job waiting on its (possibly shared) slot.
    Wait {
        id: u64,
        side: usize,
        v: Option<u64>,
        router: &'static str,
        cache: CacheStatus,
        lower_bound: usize,
        slot: Arc<RouteSlot>,
        start: Instant,
        /// When to stop waiting (the job's `deadline_ms`, or the
        /// daemon-wide default, measured from admission).
        deadline: Option<Instant>,
        /// The same deadline in milliseconds, for the error payload.
        deadline_ms: Option<u64>,
        /// Whether *this connection* dispatched the slot's compute (a
        /// wait-side timeout may only cancel a compute it owns).
        dispatched: bool,
    },
    /// A control response line, written verbatim.
    Control(String),
}

/// A running routing daemon. Bind with [`Daemon::bind`], stop with
/// [`Daemon::shutdown`] (or a wire `{"req": "shutdown"}`), and
/// [`Daemon::join`] to wait for the drain; dropping the handle shuts
/// down and joins implicitly.
pub struct Daemon {
    shared: Arc<DaemonShared>,
    accept: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Bind a listener on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// test port) and start serving. Timing capture is forced off so
    /// outcome bytes stay deterministic and batch-identical.
    pub fn bind(addr: impl ToSocketAddrs, config: EngineConfig) -> Result<Daemon, ServiceError> {
        let config = EngineConfig { timing: false, ..config };
        let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        let cache = Arc::new(ShardedLru::new(config.cache_capacity, config.cache_shards));
        let shared = Arc::new(DaemonShared {
            pool: WorkerPool::spawn(&config, Arc::clone(&cache)),
            cache,
            config,
            stats: DaemonStats::new(),
            shutdown: AtomicBool::new(false),
            addr,
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Daemon { shared, accept: Some(accept) })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A point-in-time counter snapshot (also served on the wire as
    /// `{"req": "stats"}`).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Begin the graceful drain: stop accepting connections, let every
    /// open connection finish its admitted jobs. Idempotent; returns
    /// immediately (use [`Daemon::join`] to wait).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the daemon has fully drained — every connection's
    /// admitted jobs routed and written, all threads exited — and return
    /// the final counter snapshot.
    pub fn join(mut self) -> StatsSnapshot {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.snapshot()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<DaemonShared>) {
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.stats.connections.inc();
        if let Ok(read_half) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(read_half);
        }
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || serve_connection(stream, shared)));
    }
    // Graceful drain: every connection finishes its admitted jobs
    // before the daemon (and with it the worker pool) goes away.
    for handle in handles {
        let _ = handle.join();
    }
}

/// Reader side of one connection (the writer runs on its own thread,
/// joined before this returns).
fn serve_connection(stream: TcpStream, shared: Arc<DaemonShared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // ×2: admitted jobs can occupy at most `client_queue_depth` entries,
    // and rejections/control responses need room to flow out without
    // stalling the reader ahead of the admission check.
    let (sender, receiver) = sync_channel::<ConnItem>(shared.config.client_queue_depth.max(1) * 2);
    // The per-connection admission gauge: reader increments on admit,
    // writer decrements as outcomes leave.
    let in_flight = Arc::new(AtomicUsize::new(0));
    let writer = {
        let shared = Arc::clone(&shared);
        let in_flight = Arc::clone(&in_flight);
        std::thread::spawn(move || write_outcomes(write_half, receiver, in_flight, shared))
    };

    // The mirror cache that makes this connection's hit/miss statuses —
    // and therefore its outcome bytes — identical to a single-threaded
    // batch run of the same stream.
    let mirror: ShardedLru<()> =
        ShardedLru::new(shared.config.cache_capacity, shared.config.cache_shards);
    let mut next_id: u64 = 0;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        // A torn final line (bytes with no trailing newline at EOF —
        // e.g. a client that died mid-write) is dropped silently: the
        // sender never finished the request, and answering a fragment
        // would desynchronize ids for a resubmitting client.
        if !line.ends_with('\n') {
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue; // blank lines consume no id, exactly like batch
        }
        if let Some(response) = control_response(trimmed, &shared) {
            if sender.send(ConnItem::Control(response)).is_err() {
                break;
            }
            continue;
        }

        let start = Instant::now();
        let id = next_id;
        next_id += 1;
        // Admission control *before* parsing: a flooding client is
        // rejected at O(1) cost, in order, never hung.
        let limit = shared.config.client_queue_depth;
        if in_flight.load(Ordering::SeqCst) >= limit {
            let outcome =
                RouteOutcome::from_error(id, None, None, &ServiceError::Backpressure { limit });
            shared.stats.jobs_errored.inc();
            if sender
                .send(ConnItem::Ready { outcome, counted: false, start })
                .is_err()
            {
                break;
            }
            continue;
        }

        let item = match RouteJob::from_json_line(trimmed) {
            Err(e) => {
                shared.stats.jobs_errored.inc();
                ConnItem::Ready {
                    outcome: RouteOutcome::from_error(id, None, None, &e),
                    counted: true,
                    start,
                }
            }
            Ok(job) => match plan_route(&job, &shared.config.default_router) {
                Err(e) => {
                    shared.stats.jobs_errored.inc();
                    ConnItem::Ready {
                        outcome: RouteOutcome::from_error(id, Some(job.side), job.v, &e),
                        counted: true,
                        start,
                    }
                }
                Ok(plan) => {
                    shared.stats.dispatch_counter(plan.router.label()).inc();
                    let deadline_ms = job.deadline_ms.or(shared.config.default_deadline_ms);
                    let deadline = deadline_ms.map(|ms| start + Duration::from_millis(ms));
                    // Mirror first (connection-deterministic status),
                    // then the shared cache (cross-connection compute
                    // dedup).
                    let (_, mirror_inserted) = mirror.get_or_insert_with(plan.key.clone(), || ());
                    let cache = if mirror_inserted {
                        CacheStatus::Miss
                    } else {
                        CacheStatus::Hit
                    };
                    let (slot, inserted) = shared
                        .cache
                        .get_or_insert_with(plan.key.clone(), || Arc::new(RouteSlot::default()));
                    if inserted {
                        let budget = match deadline {
                            None => RouteBudget::unlimited(),
                            Some(at) => RouteBudget::unlimited()
                                .deadline(at)
                                .cancel_token(slot.cancel_token()),
                        };
                        shared.pool.dispatch(WorkItem {
                            topology: plan.canonical.topology.clone(),
                            pi: plan.canonical.pi.clone(),
                            router: plan.router.clone(),
                            slot: Arc::clone(&slot),
                            timing: false,
                            key: plan.key,
                            budget,
                            deadline_ms,
                        });
                    }
                    ConnItem::Wait {
                        id,
                        side: job.side,
                        v: job.v,
                        router: plan.router.label(),
                        cache,
                        lower_bound: plan.lower_bound,
                        slot,
                        start,
                        deadline,
                        deadline_ms,
                        dispatched: inserted,
                    }
                }
            },
        };
        // Increment *before* the send so the writer's decrement can
        // never race the gauge below zero.
        in_flight.fetch_add(1, Ordering::SeqCst);
        shared.stats.in_flight.inc();
        if sender.send(item).is_err() {
            break;
        }
    }
    // EOF (or shutdown): close the channel so the writer drains what
    // was admitted and exits.
    drop(sender);
    let _ = writer.join();
    // The accept loop holds a read-half clone of this socket (for
    // shutdown wakeup), so dropping our handles alone would never send
    // FIN; shut the connection itself down so the peer sees EOF.
    let _ = reader.get_ref().shutdown(Shutdown::Both);
}

/// Handle `{"req": ...}` control lines; `None` means the line is a job.
fn control_response(line: &str, shared: &Arc<DaemonShared>) -> Option<String> {
    let doc = serde_json::from_str(line).ok()?;
    let req = doc.get("req")?;
    Some(match req.as_str() {
        Some("stats") => {
            let mut out = String::from("{\"stats\":");
            shared.snapshot().write_json(&mut out);
            out.push('}');
            out
        }
        Some("metrics") => {
            // Prometheus text exposition is multi-line; the JSONL wire
            // carries it as one escaped string field.
            let mut out = String::from("{\"metrics\":");
            shared.prometheus().write_json(&mut out);
            out.push('}');
            out
        }
        Some("shutdown") => {
            shared.begin_shutdown();
            "{\"ok\":\"shutdown\"}".to_string()
        }
        Some("retried") => {
            // A retrying client reporting how many resubmissions its
            // last reconnect cycle cost (observability only).
            let n = doc.get("n").and_then(|n| n.as_u64()).unwrap_or(1);
            shared.stats.retries.add(n);
            "{\"ok\":\"retried\"}".to_string()
        }
        other => {
            let err = ServiceError::Parse(format!(
                "unknown control request {:?} (expected \"stats\", \"metrics\", \"shutdown\", or \"retried\")",
                other.unwrap_or("<non-string>")
            ));
            let mut out = String::from("{\"code\":");
            err.code().write_json(&mut out);
            out.push_str(",\"error\":");
            err.to_string().write_json(&mut out);
            out.push('}');
            out
        }
    })
}

/// The outgoing half of one connection, with optional injected faults:
/// after `drop_plan.0` written bytes the socket is severed (first
/// flushing half of the next line when `drop_plan.1` asks for a torn
/// write). Once broken — organically or by injection — lines are
/// discarded but the channel keeps draining for the gauges' sake.
struct ConnWriter {
    out: std::io::BufWriter<TcpStream>,
    broken: bool,
    written: u64,
    drop_plan: Option<(u64, bool)>,
}

impl ConnWriter {
    fn emit(&mut self, line: String) {
        if self.broken {
            return;
        }
        if let Some((after, torn)) = self.drop_plan {
            if self.written >= after {
                if torn {
                    let half = &line.as_bytes()[..line.len() / 2];
                    let _ = self.out.write_all(half);
                    let _ = self.out.flush();
                }
                let _ = self.out.get_ref().shutdown(Shutdown::Both);
                self.drop_plan = None;
                self.broken = true;
                return;
            }
        }
        self.written += line.len() as u64 + 1;
        self.broken = writeln!(self.out, "{line}")
            .and_then(|_| self.out.flush())
            .is_err();
    }
}

/// Writer side of one connection: preserves channel (= submission)
/// order, decrements the admission gauges as outcomes leave. Keeps
/// draining (for the gauges' sake) even after the socket breaks.
fn write_outcomes(
    stream: TcpStream,
    receiver: Receiver<ConnItem>,
    in_flight: Arc<AtomicUsize>,
    shared: Arc<DaemonShared>,
) {
    let mut writer = ConnWriter {
        out: std::io::BufWriter::new(stream),
        broken: false,
        written: 0,
        drop_plan: shared.pool.chaos().take_connection_drop(),
    };
    for item in receiver.iter() {
        match item {
            ConnItem::Control(line) => writer.emit(line),
            ConnItem::Ready { outcome, counted, start } => {
                writer.emit(outcome.to_json_line());
                if counted {
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    shared.stats.in_flight.dec();
                }
                shared.stats.record_latency(start);
            }
            ConnItem::Wait {
                id,
                side,
                v,
                router,
                cache,
                lower_bound,
                slot,
                start,
                deadline,
                deadline_ms,
                dispatched,
            } => {
                let waited = match deadline {
                    None => slot.wait(),
                    Some(at) => match slot.wait_until(at) {
                        Some(result) => result,
                        None => {
                            // The deadline passed mid-compute. Cancel the
                            // compute only if this connection dispatched
                            // it: another connection's hit must not poison
                            // a compute it merely shares.
                            if dispatched {
                                slot.cancel();
                            }
                            Err(ServiceError::Timeout { deadline_ms: deadline_ms.unwrap_or(0) })
                        }
                    },
                };
                let outcome = match waited {
                    Err(e) => {
                        if matches!(e, ServiceError::Timeout { .. }) {
                            shared.stats.timeouts.inc();
                        }
                        shared.stats.jobs_errored.inc();
                        RouteOutcome::from_error(id, Some(side), v, &e)
                    }
                    Ok(entry) => {
                        shared.stats.jobs_routed.inc();
                        RouteOutcome {
                            v,
                            id,
                            side: Some(side),
                            router: Some(router.to_string()),
                            cache: Some(cache.as_str().to_string()),
                            // Depth and size are replay-invariant, so the
                            // canonical schedule answers without replaying.
                            depth: Some(entry.schedule.depth()),
                            size: Some(entry.schedule.size()),
                            lower_bound: Some(lower_bound),
                            time_ms: None,
                            code: None,
                            error: None,
                        }
                    }
                };
                writer.emit(outcome.to_json_line());
                in_flight.fetch_sub(1, Ordering::SeqCst);
                shared.stats.in_flight.dec();
                shared.stats.record_latency(start);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_buckets(buckets: &[(usize, u64)]) -> DaemonStats {
        let stats = DaemonStats::new();
        for &(bucket, count) in buckets {
            // Record a representative value of the bucket: 0 for the
            // sub-microsecond bucket, the lower bound 2^(b−1) otherwise.
            let value = if bucket == 0 { 0 } else { 1u64 << (bucket - 1) };
            for _ in 0..count {
                stats.latency_us.record(value);
            }
        }
        stats
    }

    fn midpoint_ms(bucket: usize) -> f64 {
        if bucket == 0 {
            0.5 / 1e3
        } else {
            (1u64 << bucket) as f64 / std::f64::consts::SQRT_2 / 1e3
        }
    }

    /// Empty-state audit: every derived field of a fresh daemon's
    /// snapshot (ratios, quantiles) must be a finite literal zero — not
    /// NaN from 0/0, not Inf, not `null` on the wire.
    #[test]
    fn fresh_daemon_snapshot_has_finite_zero_derived_fields() {
        let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::default()).unwrap();
        let stats = daemon.stats();
        assert_eq!(stats.hit_rate, 0.0);
        assert_eq!(stats.latency_p50_ms, 0.0);
        assert_eq!(stats.latency_p99_ms, 0.0);
        assert!(stats.hit_rate.is_finite());
        assert!(stats.latency_p50_ms.is_finite());
        assert!(stats.latency_p99_ms.is_finite());
        assert!(stats.routers.is_empty());
        let mut line = String::new();
        stats.write_json(&mut line);
        // The serde shim writes non-finite floats as `null`; a fresh
        // snapshot must never contain one.
        assert!(!line.contains("null"), "{line}");
        assert!(line.contains("\"hit_rate\":0.0"), "{line}");
        assert!(line.contains("\"latency_p50_ms\":0.0"), "{line}");
        assert!(line.contains("\"latency_p99_ms\":0.0"), "{line}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let stats = stats_with_buckets(&[]);
        assert_eq!(stats.latency_quantile_ms(0.50), 0.0);
        assert_eq!(stats.latency_quantile_ms(0.99), 0.0);
    }

    #[test]
    fn single_sample_reports_the_bucket_geometric_midpoint() {
        // One sample in bucket 3, i.e. [4, 8) µs: every quantile must be
        // the geometric midpoint 8/√2 ≈ 5.66 µs — not the 8 µs upper
        // bound, which overstates the true latency by up to 2×.
        let stats = stats_with_buckets(&[(3, 1)]);
        for q in [0.01, 0.50, 0.99] {
            let got = stats.latency_quantile_ms(q);
            assert!((got - midpoint_ms(3)).abs() < 1e-12, "q={q}: {got}");
        }
        // Sub-microsecond bucket reports half a microsecond.
        let zero = stats_with_buckets(&[(0, 5)]);
        assert!((zero.latency_quantile_ms(0.5) - midpoint_ms(0)).abs() < 1e-12);
    }

    #[test]
    fn boundary_rank_selects_the_upper_median() {
        // Two samples in bucket 2, two in bucket 5: with an even count,
        // q=0.5 lands exactly on a bucket boundary. The inverse-CDF rank
        // ⌊0.5·4⌋+1 = 3 selects the *upper* median bucket; the pre-fix
        // ⌈0.5·4⌉ = 2 rounded down into bucket 2.
        let stats = stats_with_buckets(&[(2, 2), (5, 2)]);
        let p50 = stats.latency_quantile_ms(0.50);
        assert!((p50 - midpoint_ms(5)).abs() < 1e-12, "p50={p50}");
        // Below the boundary the lower bucket still answers…
        let p25 = stats.latency_quantile_ms(0.25);
        assert!((p25 - midpoint_ms(2)).abs() < 1e-12, "p25={p25}");
        // …and the top rank clamps to the last sample.
        let p99 = stats.latency_quantile_ms(0.99);
        assert!((p99 - midpoint_ms(5)).abs() < 1e-12, "p99={p99}");
    }

    #[test]
    fn quantile_rank_never_exceeds_total() {
        let stats = stats_with_buckets(&[(1, 1), (7, 1)]);
        assert!((stats.latency_quantile_ms(1.0) - midpoint_ms(7)).abs() < 1e-12);
        assert!((stats.latency_quantile_ms(0.0) - midpoint_ms(1)).abs() < 1e-12);
    }

    /// Chaos: a connection thread that panics while holding a shared
    /// mutex poisons it. Stats served over the wire and the graceful
    /// drain must both survive (pre-fix, the `expect("… poisoned")`
    /// calls turned one crashed connection into a daemon-wide outage).
    #[test]
    fn poisoned_shared_locks_still_answer_stats_and_drain() {
        let daemon = Daemon::bind("127.0.0.1:0", EngineConfig::default()).unwrap();
        let addr = daemon.local_addr();

        // Route one job first so the dispatch map is non-empty.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"side\": 4, \"router\": \"ats\", \"class\": \"random\", \"seed\": 1}\n")
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"depth\""), "{line}");

        // Panic a thread mid-update while it holds each shared lock.
        for _ in 0..2 {
            let shared = Arc::clone(&daemon.shared);
            let _ = std::thread::spawn(move || {
                let _conns = shared.conns.lock().unwrap();
                let _dispatch = shared.stats.dispatch.lock().unwrap();
                panic!("injected chaos: poison the shared daemon locks");
            })
            .join();
        }

        // `ctl --stats` over the wire must still answer, with the
        // dispatch counters intact.
        conn.write_all(b"{\"req\": \"stats\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"jobs_routed\":1"), "{line}");
        assert!(line.contains("\"ats\""), "{line}");

        // And the graceful drain must still complete.
        drop(conn);
        daemon.shutdown();
        let final_stats = daemon.join();
        assert_eq!(final_stats.jobs_routed, 1);
        assert_eq!(
            final_stats.routers,
            vec![RouterJobs { router: "ats".into(), jobs: 1 }]
        );
    }
}
