//! Gate dependency structure.
//!
//! Gates form a DAG: gate `g₂` depends on `g₁` when they share a qubit and
//! `g₁` precedes `g₂` in program order (Figure 1-(b) of the paper). Since
//! each qubit's gates are totally ordered, the DAG is exactly the union of
//! per-qubit chains, which makes an incremental "ready front" cheap to
//! maintain — that is what the transpiler consumes.

use crate::circuit::Circuit;

/// ASAP layering of a circuit: `layers[k]` holds the indices of gates that
/// can execute at time step `k` (all predecessors in earlier layers).
pub fn ascending_layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut frontier = vec![0usize; circuit.num_qubits()];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for (idx, g) in circuit.gates().iter().enumerate() {
        let (a, b) = g.qubits();
        let t = match b {
            Some(b) => frontier[a].max(frontier[b]),
            None => frontier[a],
        };
        if t == layers.len() {
            layers.push(Vec::new());
        }
        layers[t].push(idx);
        frontier[a] = t + 1;
        if let Some(b) = b {
            frontier[b] = t + 1;
        }
    }
    layers
}

/// Incremental dependency queue: per-qubit FIFOs of gate indices. A gate
/// is *ready* when it is at the head of the FIFO of every qubit it acts
/// on. Executing a ready gate pops it and may ready its successors.
#[derive(Debug, Clone)]
pub struct DependencyQueue {
    /// For each qubit, the indices of its gates in program order.
    per_qubit: Vec<Vec<usize>>,
    /// Cursor into each per-qubit list.
    head: Vec<usize>,
    /// Number of gates not yet executed.
    remaining: usize,
    /// Gate table: qubits of each gate.
    gate_qubits: Vec<(usize, Option<usize>)>,
    /// Executed flags (guards against double execution).
    done: Vec<bool>,
}

impl DependencyQueue {
    /// Build the queue for a circuit.
    pub fn new(circuit: &Circuit) -> DependencyQueue {
        let n = circuit.num_qubits();
        let mut per_qubit: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut gate_qubits = Vec::with_capacity(circuit.size());
        for (idx, g) in circuit.gates().iter().enumerate() {
            let (a, b) = g.qubits();
            per_qubit[a].push(idx);
            if let Some(b) = b {
                per_qubit[b].push(idx);
            }
            gate_qubits.push((a, b));
        }
        DependencyQueue {
            per_qubit,
            head: vec![0; n],
            remaining: circuit.size(),
            gate_qubits,
            done: vec![false; circuit.size()],
        }
    }

    /// Number of unexecuted gates.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// `true` when every gate has been executed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn at_head(&self, gate: usize, qubit: usize) -> bool {
        self.per_qubit[qubit]
            .get(self.head[qubit])
            .is_some_and(|&g| g == gate)
    }

    /// `true` when `gate` is ready (front of all its qubits' queues and
    /// not yet executed).
    pub fn is_ready(&self, gate: usize) -> bool {
        if self.done[gate] {
            return false;
        }
        let (a, b) = self.gate_qubits[gate];
        self.at_head(gate, a) && b.is_none_or(|b| self.at_head(gate, b))
    }

    /// The current ready front (ascending gate indices).
    pub fn ready_front(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for q in 0..self.per_qubit.len() {
            if let Some(&g) = self.per_qubit[q].get(self.head[q]) {
                if self.is_ready(g) && !out.contains(&g) {
                    out.push(g);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Execute a ready gate, popping it from its qubits' queues.
    ///
    /// # Panics
    /// Panics when the gate is not ready.
    pub fn execute(&mut self, gate: usize) {
        assert!(self.is_ready(gate), "gate {gate} is not ready");
        let (a, b) = self.gate_qubits[gate];
        self.head[a] += 1;
        if let Some(b) = b {
            self.head[b] += 1;
        }
        self.done[gate] = true;
        self.remaining -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0)) // 0
            .push(Gate::Cx(0, 1)) // 1
            .push(Gate::Cx(1, 2)) // 2
            .push(Gate::H(0)); // 3
        c
    }

    #[test]
    fn layers_respect_dependencies() {
        let c = sample();
        let layers = ascending_layers(&c);
        assert_eq!(layers, vec![vec![0], vec![1], vec![2, 3]]);
        assert_eq!(layers.len(), c.depth());
    }

    #[test]
    fn empty_circuit_layers() {
        assert!(ascending_layers(&Circuit::new(3)).is_empty());
    }

    #[test]
    fn ready_front_progression() {
        let c = sample();
        let mut q = DependencyQueue::new(&c);
        assert_eq!(q.ready_front(), vec![0]);
        q.execute(0);
        assert_eq!(q.ready_front(), vec![1]);
        q.execute(1);
        // Gate 3 (H on qubit 0) and gate 2 (CX 1,2) both ready now.
        assert_eq!(q.ready_front(), vec![2, 3]);
        q.execute(3);
        q.execute(2);
        assert!(q.is_done());
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn executing_blocked_gate_panics() {
        let c = sample();
        let mut q = DependencyQueue::new(&c);
        q.execute(1); // blocked behind gate 0
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn double_execution_panics() {
        let c = sample();
        let mut q = DependencyQueue::new(&c);
        q.execute(0);
        q.execute(0);
    }

    #[test]
    fn parallel_independent_gates_all_ready() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 1)).push(Gate::Cx(2, 3));
        let q = DependencyQueue::new(&c);
        assert_eq!(q.ready_front(), vec![0, 1]);
    }

    #[test]
    fn layer_count_matches_depth_on_random_circuits() {
        use crate::builders;
        let c = builders::random_two_qubit_circuit(6, 40, 7);
        assert_eq!(ascending_layers(&c).len(), c.depth());
    }
}
