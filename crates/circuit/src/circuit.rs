//! The circuit container.

use crate::gate::Gate;

/// A quantum circuit: an ordered gate list over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(n: usize) -> Circuit {
        Circuit { num_qubits: n, gates: Vec::new() }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list in program order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (circuit *size*).
    #[inline]
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Append a gate.
    ///
    /// # Panics
    /// Panics when a qubit index is out of range, or a 2-qubit gate
    /// addresses the same qubit twice.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        let (a, b) = gate.qubits();
        assert!(a < self.num_qubits, "qubit {a} out of range");
        if let Some(b) = b {
            assert!(b < self.num_qubits, "qubit {b} out of range");
            assert_ne!(a, b, "two-qubit gate on a single qubit");
        }
        self.gates.push(gate);
        self
    }

    /// Append all gates of `other` (must have the same qubit count).
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        self.gates.extend_from_slice(&other.gates);
        self
    }

    /// Number of 2-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of `SWAP` gates (routing verifiers recount inserted swaps
    /// from this).
    pub fn swap_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Swap(_, _)))
            .count()
    }

    /// Circuit depth: the length of the longest per-qubit dependency chain
    /// (every gate costs one time step).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let (a, b) = g.qubits();
            let t = match b {
                Some(b) => frontier[a].max(frontier[b]) + 1,
                None => frontier[a] + 1,
            };
            frontier[a] = t;
            if let Some(b) = b {
                frontier[b] = t;
            }
            depth = depth.max(t);
        }
        depth
    }

    /// Depth counting only 2-qubit gates (1-qubit gates are free) — the
    /// metric routing overhead is usually reported in.
    pub fn two_qubit_depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            if let (a, Some(b)) = g.qubits() {
                let t = frontier[a].max(frontier[b]) + 1;
                frontier[a] = t;
                frontier[b] = t;
                depth = depth.max(t);
            }
        }
        depth
    }

    /// The inverse circuit (reversed gate order, each gate daggered).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::dagger).collect(),
        }
    }

    /// Rewrite all qubit indices through `f` (must be injective into
    /// `0..new_n`).
    pub fn relabeled(&self, new_n: usize, f: impl Fn(usize) -> usize) -> Circuit {
        let mut out = Circuit::new(new_n);
        for g in &self.gates {
            out.push(g.relabel(&f));
        }
        out
    }

    /// Replace every `SWAP` with its three-`CX` decomposition, as executed
    /// on hardware without a native SWAP.
    pub fn decompose_swaps(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for g in &self.gates {
            if let Gate::Swap(a, b) = *g {
                out.push(Gate::Cx(a, b));
                out.push(Gate::Cx(b, a));
                out.push(Gate::Cx(a, b));
            } else {
                out.push(*g);
            }
        }
        out
    }

    /// `true` iff every 2-qubit gate acts on a coupled pair according to
    /// `coupled(a, b)` — feasibility on a coupling graph (§II).
    pub fn is_feasible(&self, coupled: impl Fn(usize, usize) -> bool) -> bool {
        self.gates.iter().all(|g| match g.qubits() {
            (a, Some(b)) => coupled(a, b),
            _ => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_accounting() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0))
            .push(Gate::H(1))
            .push(Gate::Cx(0, 1))
            .push(Gate::H(2));
        assert_eq!(c.size(), 4);
        assert_eq!(c.depth(), 2); // H's parallel, CX after.
        assert_eq!(c.two_qubit_depth(), 1);
        assert_eq!(c.two_qubit_count(), 1);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(4);
        assert_eq!(c.depth(), 0);
        assert!(c.is_empty());
        assert!(c.is_feasible(|_, _| false));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_range() {
        Circuit::new(2).push(Gate::H(2));
    }

    #[test]
    #[should_panic(expected = "single qubit")]
    fn push_validates_distinct() {
        Circuit::new(2).push(Gate::Cx(1, 1));
    }

    #[test]
    fn inverse_reverses_and_daggers() {
        let mut c = Circuit::new(2);
        c.push(Gate::S(0)).push(Gate::Cx(0, 1));
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::Cx(0, 1), Gate::Sdg(0)]);
    }

    #[test]
    fn swap_decomposition() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        let d = c.decompose_swaps();
        assert_eq!(d.size(), 3);
        assert_eq!(d.gates()[0], Gate::Cx(0, 1));
        assert_eq!(d.gates()[1], Gate::Cx(1, 0));
        assert_eq!(d.gates()[2], Gate::Cx(0, 1));
    }

    #[test]
    fn feasibility_checks_two_qubit_gates_only() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(2)).push(Gate::Cx(0, 1));
        assert!(c.is_feasible(|a, b| (a, b) == (0, 1) || (a, b) == (1, 0)));
        assert!(!c.is_feasible(|_, _| false));
    }

    #[test]
    fn relabeling_preserves_structure() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1)).push(Gate::H(1));
        let r = c.relabeled(4, |q| q + 2);
        assert_eq!(r.num_qubits(), 4);
        assert_eq!(r.gates(), &[Gate::Cx(2, 3), Gate::H(3)]);
        assert_eq!(r.depth(), c.depth());
    }

    #[test]
    fn figure_one_example_depths() {
        // The paper's Figure 1: logical circuit with 5 gates, depth 3
        // (gates: (1,2), (3) single, (2,4), (1,3), (2) single... we mirror
        // the structure: depth must be 3).
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 1)); // (1,2)
        c.push(Gate::T(2)); // (3)
        c.push(Gate::Cx(1, 3)); // (2,4)
        c.push(Gate::Cx(0, 2)); // (1,3)
        c.push(Gate::H(1)); // (2)
        assert_eq!(c.size(), 5);
        assert_eq!(c.depth(), 3);
    }
}
