//! Workload circuit builders.
//!
//! These generate the logical circuits used by the examples and the
//! end-to-end transpilation experiments:
//!
//! * [`qft`] — the quantum Fourier transform, the canonical all-to-all
//!   workload (the paper's §II worst-case example on a path);
//! * [`ghz`] — a GHZ-state preparation ladder (nearest-neighbor friendly);
//! * [`trotter_grid_step`] — Trotterized time evolution of a
//!   nearest-neighbor Ising-type Hamiltonian on an `m × n` lattice: the
//!   "simulation of spatially local Hamiltonians" workload from §I. When
//!   the lattice matches the hardware grid this is perfectly local; when
//!   the logical lattice is laid out differently (or the Trotter step
//!   couples next-nearest neighbors) routing kicks in.
//! * [`random_two_qubit_circuit`] — random CX circuits for stress tests;
//! * [`brickwork`] — hardware-efficient alternating-layer ansatz on a
//!   logical chain (the mostly-local circuit-bench class);
//! * [`qaoa_random_graph`] — QAOA-style phase separators over a seeded
//!   random graph (the globally-entangling circuit-bench class).

use crate::circuit::Circuit;
use crate::gate::Gate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quantum Fourier transform on `n` qubits (standard H + controlled-phase
/// ladder; controlled phases are approximated with `CZ`-conjugated `Rz`
/// pairs to stay inside our gate set — we use the textbook decomposition
/// `CP(θ) = Rz(θ/2) ⊗ Rz(θ/2) · CX · Rz(-θ/2) · CX` on the target).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    // Little-endian convention (qubit 0 = least significant bit): process
    // the top qubit first, phases controlled by the lower qubits.
    for i in (0..n).rev() {
        c.push(Gate::H(i));
        for m in 0..i {
            let theta = std::f64::consts::PI / (1 << (i - m)) as f64;
            // Controlled phase between m (control) and i (target).
            c.push(Gate::Rz(i, theta / 2.0));
            c.push(Gate::Rz(m, theta / 2.0));
            c.push(Gate::Cx(m, i));
            c.push(Gate::Rz(i, -theta / 2.0));
            c.push(Gate::Cx(m, i));
        }
    }
    // Qubit-order reversal via SWAPs (the logical reversal the routing
    // layer must pay for on sparse hardware).
    for k in 0..n / 2 {
        c.push(Gate::Swap(k, n - 1 - k));
    }
    c
}

/// GHZ preparation: `H(0)` then a CX chain `0→1→2→…`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(n);
    c.push(Gate::H(0));
    for q in 1..n {
        c.push(Gate::Cx(q - 1, q));
    }
    c
}

/// One first-order Trotter step of `H = Σ_(u,v)∈lattice J·Z_u Z_v +
/// Σ_v h·X_v` on an `rows × cols` lattice laid out row-major:
/// `exp(-iθ Z⊗Z)` on every lattice edge (as `CX · Rz(2θ) · CX`), then
/// `Rx(2hθ)` on every site; repeated `reps` times.
pub fn trotter_grid_step(rows: usize, cols: usize, theta: f64, reps: usize) -> Circuit {
    let n = rows * cols;
    let idx = |i: usize, j: usize| i * cols + j;
    let mut c = Circuit::new(n);
    for _ in 0..reps {
        // Horizontal bonds, then vertical bonds (even/odd staggered so
        // each sub-layer is disjoint — the hardware-friendly order).
        for parity in 0..2 {
            for i in 0..rows {
                for j in (parity..cols.saturating_sub(1)).step_by(2) {
                    let (a, b) = (idx(i, j), idx(i, j + 1));
                    c.push(Gate::Cx(a, b));
                    c.push(Gate::Rz(b, 2.0 * theta));
                    c.push(Gate::Cx(a, b));
                }
            }
        }
        for parity in 0..2 {
            for i in (parity..rows.saturating_sub(1)).step_by(2) {
                for j in 0..cols {
                    let (a, b) = (idx(i, j), idx(i + 1, j));
                    c.push(Gate::Cx(a, b));
                    c.push(Gate::Rz(b, 2.0 * theta));
                    c.push(Gate::Cx(a, b));
                }
            }
        }
        for q in 0..n {
            c.push(Gate::Rx(q, 2.0 * theta));
        }
    }
    c
}

/// A Trotter step over *next-nearest* (diagonal) lattice neighbors — the
/// same spatially-local structure but infeasible on the grid coupling
/// graph, forcing short-distance routing (the sweet spot of the paper's
/// locality-aware router).
pub fn trotter_diagonal_step(rows: usize, cols: usize, theta: f64, reps: usize) -> Circuit {
    let n = rows * cols;
    let idx = |i: usize, j: usize| i * cols + j;
    let mut c = Circuit::new(n);
    for _ in 0..reps {
        for i in 0..rows.saturating_sub(1) {
            for j in 0..cols.saturating_sub(1) {
                let (a, b) = (idx(i, j), idx(i + 1, j + 1));
                c.push(Gate::Cx(a, b));
                c.push(Gate::Rz(b, 2.0 * theta));
                c.push(Gate::Cx(a, b));
            }
        }
        for q in 0..n {
            c.push(Gate::Rx(q, 2.0 * theta));
        }
    }
    c
}

/// Random circuit of `num_gates` CX gates on uniformly random distinct
/// pairs, with sporadic 1-qubit gates in between (seeded, deterministic).
pub fn random_two_qubit_circuit(n: usize, num_gates: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "need at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..num_gates {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        c.push(Gate::Cx(a, b));
        if rng.gen_bool(0.3) {
            c.push(Gate::T(rng.gen_range(0..n)));
        }
    }
    c
}

/// Hardware-efficient brickwork ansatz on a logical chain: `layers`
/// alternating even/odd layers of nearest-neighbor `CX` bricks, each brick
/// preceded by seeded `Ry`/`Rz` rotations on its qubits. Under a row-major
/// identity layout most bricks are grid-local (only the row-boundary pairs
/// need routing), which makes this the *mostly-local* circuit workload —
/// the regime the paper's locality-aware router targets.
pub fn brickwork(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let tau = 2.0 * std::f64::consts::PI;
    for layer in 0..layers {
        for a in ((layer % 2)..n.saturating_sub(1)).step_by(2) {
            let b = a + 1;
            c.push(Gate::Ry(a, rng.gen_range(0.0..tau)));
            c.push(Gate::Rz(b, rng.gen_range(0.0..tau)));
            c.push(Gate::Cx(a, b));
        }
    }
    c
}

/// QAOA-style circuit for a seeded random graph on `n` vertices with
/// roughly `2n` distinct edges: per round, a phase separator
/// `exp(-iγ Z⊗Z)` on every edge (as `CX · Rz · CX`) followed by an
/// `Rx` mixer on every qubit. Edges are uniformly random, so the phase
/// separators are globally entangling — the adversarial routing regime.
pub fn qaoa_random_graph(n: usize, rounds: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "need at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let target = 2 * n;
    // Distinct undirected edges; cap the attempts so dense tiny graphs
    // (n=2 has one possible edge) terminate.
    for _ in 0..8 * target {
        if edges.len() >= target {
            break;
        }
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        let e = (a.min(b), a.max(b));
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
    let mut c = Circuit::new(n);
    for round in 0..rounds {
        let gamma = 0.4 + 0.1 * round as f64;
        let beta = 0.7 - 0.1 * round as f64;
        for &(a, b) in &edges {
            c.push(Gate::Cx(a, b));
            c.push(Gate::Rz(b, 2.0 * gamma));
            c.push(Gate::Cx(a, b));
        }
        for q in 0..n {
            c.push(Gate::Rx(q, 2.0 * beta));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_gate_count() {
        // n H gates + 5 gates per controlled phase * C(n,2) + n/2 swaps.
        let n = 5;
        let c = qft(n);
        assert_eq!(c.num_qubits(), n);
        let expected = n + 5 * (n * (n - 1) / 2) + n / 2;
        assert_eq!(c.size(), expected);
        assert!(c.two_qubit_count() > 0);
    }

    #[test]
    fn qft_single_qubit() {
        let c = qft(1);
        assert_eq!(c.size(), 1); // just H
    }

    #[test]
    fn ghz_structure() {
        let c = ghz(4);
        assert_eq!(c.size(), 4);
        assert_eq!(c.depth(), 4);
        assert_eq!(c.two_qubit_count(), 3);
    }

    #[test]
    fn trotter_is_feasible_on_matching_grid() {
        let c = trotter_grid_step(3, 4, 0.1, 2);
        // All CX gates act on lattice neighbors: feasible on the 3x4 grid.
        let coupled = |a: usize, b: usize| {
            let (ai, aj) = (a / 4, a % 4);
            let (bi, bj) = (b / 4, b % 4);
            ai.abs_diff(bi) + aj.abs_diff(bj) == 1
        };
        assert!(c.is_feasible(coupled));
        assert!(c.two_qubit_count() > 0);
    }

    #[test]
    fn trotter_diagonal_is_infeasible_on_grid() {
        let c = trotter_diagonal_step(3, 3, 0.1, 1);
        let coupled = |a: usize, b: usize| {
            let (ai, aj) = (a / 3, a % 3);
            let (bi, bj) = (b / 3, b % 3);
            ai.abs_diff(bi) + aj.abs_diff(bj) == 1
        };
        assert!(!c.is_feasible(coupled));
    }

    #[test]
    fn trotter_staggering_bounds_depth() {
        // With even/odd staggering, one rep costs O(1) two-qubit depth
        // regardless of lattice size: 4 bond groups x 2 CX... plus Rz
        // serialization; just check it does not scale with the lattice.
        let small = trotter_grid_step(4, 4, 0.1, 1).two_qubit_depth();
        let large = trotter_grid_step(10, 10, 0.1, 1).two_qubit_depth();
        assert_eq!(small, large);
    }

    #[test]
    fn random_circuit_is_seeded() {
        let a = random_two_qubit_circuit(5, 30, 1);
        let b = random_two_qubit_circuit(5, 30, 1);
        let c = random_two_qubit_circuit(5, 30, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.two_qubit_count(), 30);
    }

    #[test]
    fn brickwork_structure() {
        let c = brickwork(6, 4, 3);
        // Even layers have 3 bricks, odd layers 2: 4 layers -> 10 bricks,
        // each brick = 2 rotations + 1 CX.
        assert_eq!(c.two_qubit_count(), 10);
        assert_eq!(c.size(), 30);
        // Seeded determinism.
        assert_eq!(brickwork(6, 4, 3), brickwork(6, 4, 3));
        assert_ne!(brickwork(6, 4, 3), brickwork(6, 4, 4));
        // All bricks are chain-local.
        for g in c.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert_eq!(a.abs_diff(b), 1);
            }
        }
    }

    #[test]
    fn brickwork_tiny_sizes() {
        assert!(brickwork(1, 3, 0).is_empty());
        assert_eq!(brickwork(2, 2, 0).two_qubit_count(), 1); // odd layer empty
    }

    #[test]
    fn qaoa_is_seeded_and_entangling() {
        let c = qaoa_random_graph(9, 2, 5);
        assert_eq!(c, qaoa_random_graph(9, 2, 5));
        assert_ne!(c, qaoa_random_graph(9, 2, 6));
        // 2n edges x 2 CX each x 2 rounds.
        assert_eq!(c.two_qubit_count(), 2 * 18 * 2);
        // Mixer present: Rx on every qubit per round.
        let rx = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rx(_, _)))
            .count();
        assert_eq!(rx, 9 * 2);
    }

    #[test]
    fn qaoa_minimal_graph_terminates() {
        // n=2 has a single possible edge; the builder must not spin.
        let c = qaoa_random_graph(2, 1, 0);
        assert_eq!(c.two_qubit_count(), 2);
    }

    #[test]
    fn builders_respect_qubit_bounds() {
        for c in [
            qft(6),
            ghz(6),
            trotter_grid_step(2, 3, 0.2, 1),
            brickwork(6, 3, 1),
            qaoa_random_graph(6, 2, 1),
        ] {
            for g in c.gates() {
                let (a, b) = g.qubits();
                assert!(a < c.num_qubits());
                if let Some(b) = b {
                    assert!(b < c.num_qubits());
                }
            }
        }
    }
}
