//! The gate set.

use std::fmt;

/// A quantum gate acting on one or two qubits (qubits are `usize`
/// indices).
///
/// Angles are radians. `Swap` is the routing primitive; on hardware it
/// decomposes into three `CX` gates ([`Gate::Swap`] →
/// [`crate::circuit::Circuit::decompose_swaps`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate.
    Sdg(usize),
    /// `T = diag(1, e^{iπ/4})`.
    T(usize),
    /// Inverse T.
    Tdg(usize),
    /// Rotation about X by the angle.
    Rx(usize, f64),
    /// Rotation about Y by the angle.
    Ry(usize, f64),
    /// Rotation about Z by the angle.
    Rz(usize, f64),
    /// Controlled-NOT (control, target).
    Cx(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// SWAP (symmetric).
    Swap(usize, usize),
}

impl Gate {
    /// The qubits the gate acts on: `(first, second)` with `second = None`
    /// for 1-qubit gates.
    pub fn qubits(&self) -> (usize, Option<usize>) {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _) => (q, None),
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => (a, Some(b)),
        }
    }

    /// `true` for 2-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().1.is_some()
    }

    /// The inverse gate.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rx(q, a) => Gate::Rx(q, -a),
            Gate::Ry(q, a) => Gate::Ry(q, -a),
            Gate::Rz(q, a) => Gate::Rz(q, -a),
            g => g, // H, X, Y, Z, CX, CZ, SWAP are involutions
        }
    }

    /// Rewrite qubit indices through `f`.
    pub fn relabel(&self, f: impl Fn(usize) -> usize) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Tdg(q) => Gate::Tdg(f(q)),
            Gate::Rx(q, a) => Gate::Rx(f(q), a),
            Gate::Ry(q, a) => Gate::Ry(f(q), a),
            Gate::Rz(q, a) => Gate::Rz(f(q), a),
            Gate::Cx(a, b) => Gate::Cx(f(a), f(b)),
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q[{q}]"),
            Gate::X(q) => write!(f, "x q[{q}]"),
            Gate::Y(q) => write!(f, "y q[{q}]"),
            Gate::Z(q) => write!(f, "z q[{q}]"),
            Gate::S(q) => write!(f, "s q[{q}]"),
            Gate::Sdg(q) => write!(f, "sdg q[{q}]"),
            Gate::T(q) => write!(f, "t q[{q}]"),
            Gate::Tdg(q) => write!(f, "tdg q[{q}]"),
            Gate::Rx(q, a) => write!(f, "rx({a}) q[{q}]"),
            Gate::Ry(q, a) => write!(f, "ry({a}) q[{q}]"),
            Gate::Rz(q, a) => write!(f, "rz({a}) q[{q}]"),
            Gate::Cx(a, b) => write!(f, "cx q[{a}],q[{b}]"),
            Gate::Cz(a, b) => write!(f, "cz q[{a}],q[{b}]"),
            Gate::Swap(a, b) => write!(f, "swap q[{a}],q[{b}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_extraction() {
        assert_eq!(Gate::H(3).qubits(), (3, None));
        assert_eq!(Gate::Cx(1, 2).qubits(), (1, Some(2)));
        assert!(Gate::Swap(0, 1).is_two_qubit());
        assert!(!Gate::Rz(0, 1.0).is_two_qubit());
    }

    #[test]
    fn dagger_pairs() {
        assert_eq!(Gate::S(0).dagger(), Gate::Sdg(0));
        assert_eq!(Gate::Tdg(1).dagger(), Gate::T(1));
        assert_eq!(Gate::Rx(0, 0.5).dagger(), Gate::Rx(0, -0.5));
        assert_eq!(Gate::H(2).dagger(), Gate::H(2));
        assert_eq!(Gate::Cx(0, 1).dagger(), Gate::Cx(0, 1));
    }

    #[test]
    fn relabeling() {
        let g = Gate::Cx(0, 1).relabel(|q| q + 10);
        assert_eq!(g, Gate::Cx(10, 11));
        assert_eq!(Gate::Rz(2, 0.3).relabel(|q| q * 2), Gate::Rz(4, 0.3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::H(0).to_string(), "h q[0]");
        assert_eq!(Gate::Cx(0, 1).to_string(), "cx q[0],q[1]");
        assert_eq!(Gate::Rz(1, 0.5).to_string(), "rz(0.5) q[1]");
    }
}
