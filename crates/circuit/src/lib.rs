//! # qroute-circuit
//!
//! A compact quantum-circuit intermediate representation, sufficient for
//! the routing/transpilation pipeline:
//!
//! * [`gate`] — the gate set (common 1-qubit gates, rotations, `CX`/`CZ`/
//!   `SWAP`);
//! * [`circuit`] — [`Circuit`]: a gate list with qubit count, depth/size
//!   accounting and structural editing (compose, invert, relabel);
//! * [`dag`] — the dependency DAG (§II, Figure 1-(b)): ASAP layering and
//!   an incremental ready-set used by the transpiler's scheduler;
//! * [`builders`] — workload circuits: QFT, GHZ, random 2-qubit-gate
//!   circuits, and Trotterized simulation of spatially-local Hamiltonians
//!   on a 2-D lattice (the application class the paper's introduction
//!   motivates: "simulation of spatially local Hamiltonians");
//! * [`qasm`] — OpenQASM 2.0 emission for interoperability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod circuit;
pub mod dag;
pub mod gate;
pub mod parser;
pub mod qasm;

pub use circuit::Circuit;
pub use dag::{ascending_layers, DependencyQueue};
pub use gate::Gate;
