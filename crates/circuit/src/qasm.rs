//! OpenQASM 2.0 emission.

use crate::circuit::Circuit;

/// Serialize a circuit as an OpenQASM 2.0 program (gates map 1:1 onto the
/// `qelib1.inc` standard library).
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::with_capacity(64 + circuit.size() * 16);
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for g in circuit.gates() {
        out.push_str(&g.to_string());
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn golden_output() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).push(Gate::Cx(0, 1));
        assert_eq!(
            to_qasm(&c),
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"
        );
    }

    #[test]
    fn empty_circuit_has_header_only() {
        let c = Circuit::new(3);
        let q = to_qasm(&c);
        assert!(q.ends_with("qreg q[3];\n"));
        assert_eq!(q.lines().count(), 3);
    }

    #[test]
    fn all_gate_kinds_serialize() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0))
            .push(Gate::X(0))
            .push(Gate::Y(0))
            .push(Gate::Z(0))
            .push(Gate::S(0))
            .push(Gate::Sdg(0))
            .push(Gate::T(0))
            .push(Gate::Tdg(0))
            .push(Gate::Rx(0, 0.25))
            .push(Gate::Ry(1, 0.5))
            .push(Gate::Rz(2, 0.75))
            .push(Gate::Cx(0, 1))
            .push(Gate::Cz(1, 2))
            .push(Gate::Swap(0, 2));
        let q = to_qasm(&c);
        for needle in [
            "sdg q[0]",
            "rx(0.25) q[0]",
            "cz q[1],q[2]",
            "swap q[0],q[2]",
        ] {
            assert!(q.contains(needle), "missing {needle} in:\n{q}");
        }
    }
}
