//! OpenQASM 2.0 parser (the subset emitted by [`crate::qasm`], i.e. the
//! `qelib1.inc` gates this crate models, one register, no classical
//! control). Enables round-tripping transpiled circuits through text.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Parse errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// Missing or malformed `OPENQASM 2.0;` header.
    BadHeader,
    /// No `qreg` declaration before the first gate.
    MissingQreg,
    /// A second `qreg` (we support a single register).
    MultipleQreg {
        /// Offending line.
        line: usize,
    },
    /// Unsupported or malformed statement.
    BadStatement {
        /// Offending line.
        line: usize,
        /// The statement text.
        stmt: String,
    },
    /// Qubit index out of declared range.
    QubitOutOfRange {
        /// Offending line.
        line: usize,
        /// The index used.
        index: usize,
    },
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::BadHeader => write!(f, "missing OPENQASM 2.0 header"),
            QasmError::MissingQreg => write!(f, "no qreg declared before gates"),
            QasmError::MultipleQreg { line } => {
                write!(f, "line {line}: multiple qreg declarations unsupported")
            }
            QasmError::BadStatement { line, stmt } => {
                write!(f, "line {line}: cannot parse statement `{stmt}`")
            }
            QasmError::QubitOutOfRange { line, index } => {
                write!(f, "line {line}: qubit q[{index}] out of range")
            }
        }
    }
}

impl std::error::Error for QasmError {}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(k) => &line[..k],
        None => line,
    }
}

/// Parse `q[3]` → `3`.
fn parse_qubit(tok: &str, line: usize) -> Result<usize, QasmError> {
    let tok = tok.trim();
    let inner = tok
        .strip_prefix("q[")
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| QasmError::BadStatement { line, stmt: tok.to_string() })?;
    inner
        .trim()
        .parse()
        .map_err(|_| QasmError::BadStatement { line, stmt: tok.to_string() })
}

/// Parse an angle expression: a float literal, optionally `pi`,
/// `-pi`, `pi/2`, `2*pi`, `pi*0.5` forms (the shapes QASM emitters
/// produce).
fn parse_angle(expr: &str, line: usize) -> Result<f64, QasmError> {
    let e = expr.trim().replace(' ', "");
    let bad = || QasmError::BadStatement { line, stmt: expr.to_string() };
    let atom = |s: &str| -> Result<f64, QasmError> {
        let (sign, s) = match s.strip_prefix('-') {
            Some(rest) => (-1.0, rest),
            None => (1.0, s),
        };
        if s == "pi" {
            Ok(sign * std::f64::consts::PI)
        } else {
            s.parse::<f64>().map(|v| sign * v).map_err(|_| bad())
        }
    };
    if let Some((a, b)) = e.split_once('/') {
        return Ok(atom(a)? / atom(b)?);
    }
    if let Some((a, b)) = e.split_once('*') {
        return Ok(atom(a)? * atom(b)?);
    }
    atom(&e)
}

/// Parse an OpenQASM 2.0 program into a [`Circuit`].
pub fn parse_qasm(src: &str) -> Result<Circuit, QasmError> {
    let mut saw_header = false;
    let mut circuit: Option<Circuit> = None;

    // Statements end with ';'; they may share lines. Track line numbers
    // by scanning per input line and splitting on ';'.
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        for stmt in strip_comment(raw).split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("OPENQASM") {
                if rest.trim() != "2.0" {
                    return Err(QasmError::BadHeader);
                }
                saw_header = true;
                continue;
            }
            if stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                if circuit.is_some() {
                    return Err(QasmError::MultipleQreg { line });
                }
                let n = parse_qubit(rest.trim(), line)?;
                circuit = Some(Circuit::new(n));
                continue;
            }
            if stmt.starts_with("creg") || stmt.starts_with("barrier") {
                continue; // tolerated, ignored
            }
            if !saw_header {
                return Err(QasmError::BadHeader);
            }
            let c = circuit.as_mut().ok_or(QasmError::MissingQreg)?;

            // Gate statement: `name[(angle)] operand[,operand]`.
            let (head, operands) = match stmt.find(char::is_whitespace) {
                Some(k) => (stmt[..k].trim(), stmt[k..].trim()),
                None => return Err(QasmError::BadStatement { line, stmt: stmt.to_string() }),
            };
            let (name, angle) = match head.find('(') {
                Some(k) => {
                    let inner = head[k + 1..]
                        .strip_suffix(')')
                        .ok_or_else(|| QasmError::BadStatement { line, stmt: stmt.to_string() })?;
                    (&head[..k], Some(parse_angle(inner, line)?))
                }
                None => (head, None),
            };
            let qubits: Vec<usize> = operands
                .split(',')
                .map(|t| parse_qubit(t, line))
                .collect::<Result<_, _>>()?;
            for &q in &qubits {
                if q >= c.num_qubits() {
                    return Err(QasmError::QubitOutOfRange { line, index: q });
                }
            }
            let one = |qs: &[usize]| -> Result<usize, QasmError> {
                if qs.len() == 1 {
                    Ok(qs[0])
                } else {
                    Err(QasmError::BadStatement { line, stmt: stmt.to_string() })
                }
            };
            let two = |qs: &[usize]| -> Result<(usize, usize), QasmError> {
                if qs.len() == 2 && qs[0] != qs[1] {
                    Ok((qs[0], qs[1]))
                } else {
                    Err(QasmError::BadStatement { line, stmt: stmt.to_string() })
                }
            };
            let gate = match (name, angle) {
                ("h", None) => Gate::H(one(&qubits)?),
                ("x", None) => Gate::X(one(&qubits)?),
                ("y", None) => Gate::Y(one(&qubits)?),
                ("z", None) => Gate::Z(one(&qubits)?),
                ("s", None) => Gate::S(one(&qubits)?),
                ("sdg", None) => Gate::Sdg(one(&qubits)?),
                ("t", None) => Gate::T(one(&qubits)?),
                ("tdg", None) => Gate::Tdg(one(&qubits)?),
                ("rx", Some(a)) => Gate::Rx(one(&qubits)?, a),
                ("ry", Some(a)) => Gate::Ry(one(&qubits)?, a),
                ("rz", Some(a)) => Gate::Rz(one(&qubits)?, a),
                ("cx", None) => {
                    let (a, b) = two(&qubits)?;
                    Gate::Cx(a, b)
                }
                ("cz", None) => {
                    let (a, b) = two(&qubits)?;
                    Gate::Cz(a, b)
                }
                ("swap", None) => {
                    let (a, b) = two(&qubits)?;
                    Gate::Swap(a, b)
                }
                _ => return Err(QasmError::BadStatement { line, stmt: stmt.to_string() }),
            };
            c.push(gate);
        }
    }
    if !saw_header {
        return Err(QasmError::BadHeader);
    }
    circuit.ok_or(QasmError::MissingQreg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::qasm::to_qasm;

    #[test]
    fn parses_minimal_program() {
        let c = parse_qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
        )
        .unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.gates(), &[Gate::H(0), Gate::Cx(0, 1)]);
    }

    #[test]
    fn round_trips_every_builder() {
        for c in [
            builders::qft(5),
            builders::ghz(4),
            builders::trotter_grid_step(2, 3, 0.37, 1),
            builders::random_two_qubit_circuit(5, 20, 3),
        ] {
            let text = to_qasm(&c);
            let parsed = parse_qasm(&text).unwrap();
            assert_eq!(parsed.num_qubits(), c.num_qubits());
            assert_eq!(parsed.size(), c.size());
            // Angles survive the decimal round trip exactly for our
            // emitter (Rust prints f64 round-trippably).
            assert_eq!(parsed.gates(), c.gates());
        }
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let src = "OPENQASM 2.0; // header\n\n// a comment\nqreg q[1];\nh q[0]; // flip\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn parses_pi_angles() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\nry(2*pi) q[0];\nrz(0.5) q[0];\n";
        let c = parse_qasm(src).unwrap();
        match c.gates()[0] {
            Gate::Rz(0, a) => assert!((a - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
        match c.gates()[1] {
            Gate::Rx(0, a) => assert!((a + std::f64::consts::PI).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_qasm("qreg q[2];"), Err(QasmError::BadHeader));
        assert_eq!(
            parse_qasm("OPENQASM 2.0;\nh q[0];"),
            Err(QasmError::MissingQreg)
        );
        assert!(matches!(
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg q[3];"),
            Err(QasmError::MultipleQreg { line: 3 })
        ));
        assert!(matches!(
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];"),
            Err(QasmError::QubitOutOfRange { line: 3, index: 5 })
        ));
        assert!(matches!(
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\nfoo q[0];"),
            Err(QasmError::BadStatement { line: 3, .. })
        ));
        assert!(matches!(
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];"),
            Err(QasmError::BadStatement { .. })
        ));
    }

    #[test]
    fn multiple_statements_per_line() {
        let c = parse_qasm("OPENQASM 2.0; qreg q[2]; h q[0]; cx q[0],q[1];").unwrap();
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn barrier_and_creg_tolerated() {
        let c = parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nbarrier q;\nh q[1];\n").unwrap();
        assert_eq!(c.size(), 1);
    }
}
