//! The main transpilation loop.

use crate::layout::{InitialLayout, Layout};
use crate::planner::plan_targets;
use qroute_circuit::{Circuit, DependencyQueue, Gate};
use qroute_core::{GridRouter, RouterKind};
use qroute_topology::Grid;

/// Transpiler configuration.
#[derive(Debug, Clone)]
pub struct TranspileOptions {
    /// The permutation router used whenever the front layer blocks — the
    /// paper's algorithm, ATS, or any other [`RouterKind`].
    pub router: RouterKind,
    /// Initial placement of logical qubits.
    pub initial_layout: InitialLayout,
}

impl Default for TranspileOptions {
    fn default() -> TranspileOptions {
        TranspileOptions {
            router: RouterKind::locality_aware(),
            initial_layout: InitialLayout::Identity,
        }
    }
}

/// Per-round routing statistics: one entry per router invocation, in
/// order. The sums reconcile with the aggregate counters on
/// [`TranspileResult`], which lets verification harnesses recount the
/// reported metrics from the emitted circuit and per-round record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// 2-qubit gates blocked when the round was planned.
    pub blocked_gates: usize,
    /// Blocked pairs the planner managed to pin this round.
    pub pinned_pairs: usize,
    /// SWAP gates the round's schedule inserted.
    pub swaps: usize,
    /// Depth (SWAP layers) of the round's schedule.
    pub depth: usize,
}

/// Result of transpilation.
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The physical circuit over `grid.len()` wires (contains `SWAP`s).
    pub physical: Circuit,
    /// `initial_layout[l]` = physical wire of logical `l` before the
    /// circuit (length `grid.len()`; indices `≥ logical.num_qubits()` are
    /// dummies).
    pub initial_layout: Vec<usize>,
    /// Final wire of each logical index after the circuit.
    pub final_layout: Vec<usize>,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
    /// Total routing depth added (sum of schedule depths across routing
    /// rounds).
    pub routing_depth_added: usize,
    /// Number of routing rounds (router invocations).
    pub routing_invocations: usize,
    /// Per-round statistics (`rounds.len() == routing_invocations`;
    /// per-round `swaps`/`depth` sum to `swap_count` /
    /// `routing_depth_added`).
    pub rounds: Vec<RoundStats>,
}

/// A mapping+routing transpiler for a fixed grid.
#[derive(Debug, Clone)]
pub struct Transpiler {
    grid: Grid,
    options: TranspileOptions,
}

impl Transpiler {
    /// Create a transpiler for `grid` with the given options.
    pub fn new(grid: Grid, options: TranspileOptions) -> Transpiler {
        Transpiler { grid, options }
    }

    /// The target grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Transpile `logical` onto the grid: the output circuit uses only
    /// grid-adjacent 2-qubit gates and is equivalent to `logical` up to
    /// the reported initial/final layouts.
    ///
    /// # Panics
    /// Panics when the circuit needs more qubits than the grid offers.
    pub fn run(&self, logical: &Circuit) -> TranspileResult {
        let n = self.grid.len();
        assert!(
            logical.num_qubits() <= n,
            "circuit needs {} qubits but the grid has {n}",
            logical.num_qubits()
        );

        let mut layout: Layout = self.options.initial_layout.build(n);
        let initial_layout = layout.as_phys_of().to_vec();
        let mut queue = DependencyQueue::new(logical);
        let mut physical = Circuit::new(n);
        let mut swap_count = 0usize;
        let mut routing_depth_added = 0usize;
        let mut routing_invocations = 0usize;
        let mut rounds: Vec<RoundStats> = Vec::new();

        let adjacent = |a: usize, b: usize| self.grid.dist(a, b) == 1;

        while !queue.is_done() {
            // One cooperative cancellation probe per routing round.
            qroute_core::budget::checkpoint();
            // Drain every executable ready gate.
            loop {
                let front = queue.ready_front();
                let mut progressed = false;
                for g in front {
                    let gate = logical.gates()[g];
                    let feasible = match gate.qubits() {
                        (_, None) => true,
                        (a, Some(b)) => adjacent(layout.phys_of(a), layout.phys_of(b)),
                    };
                    if feasible {
                        physical.push(gate.relabel(|q| layout.phys_of(q)));
                        queue.execute(g);
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            if queue.is_done() {
                break;
            }

            // Fully blocked front: plan a meeting permutation and route it.
            let blocked: Vec<(usize, usize)> = queue
                .ready_front()
                .into_iter()
                .filter_map(|g| match logical.gates()[g].qubits() {
                    (a, Some(b)) => Some((layout.phys_of(a), layout.phys_of(b))),
                    _ => None,
                })
                .collect();
            assert!(!blocked.is_empty(), "blocked round with no 2-qubit gates");

            let (pi, pinned) = plan_targets(self.grid, &blocked);
            let schedule = self.options.router.route(self.grid, &pi);
            debug_assert!(schedule.realizes(&pi), "router returned a wrong schedule");
            routing_invocations += 1;
            routing_depth_added += schedule.depth();
            let mut round_swaps = 0usize;
            for layer in &schedule.layers {
                for &(u, v) in &layer.swaps {
                    physical.push(Gate::Swap(u, v));
                    layout.apply_swap(u, v);
                    swap_count += 1;
                    round_swaps += 1;
                }
            }
            rounds.push(RoundStats {
                blocked_gates: blocked.len(),
                pinned_pairs: pinned,
                swaps: round_swaps,
                depth: schedule.depth(),
            });
        }

        TranspileResult {
            physical,
            initial_layout,
            final_layout: layout.as_phys_of().to_vec(),
            swap_count,
            routing_depth_added,
            routing_invocations,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_circuit::builders;

    fn feasible_on(grid: Grid, c: &Circuit) -> bool {
        c.is_feasible(|a, b| grid.dist(a, b) == 1)
    }

    fn transpile(grid: Grid, c: &Circuit, router: RouterKind) -> TranspileResult {
        let t = Transpiler::new(
            grid,
            TranspileOptions { router, initial_layout: InitialLayout::Identity },
        );
        let res = t.run(c);
        assert!(feasible_on(grid, &res.physical), "output infeasible");
        res
    }

    #[test]
    fn feasible_circuit_passes_through() {
        let grid = Grid::new(2, 3);
        let c = builders::trotter_grid_step(2, 3, 0.1, 1);
        let res = transpile(grid, &c, RouterKind::locality_aware());
        assert_eq!(res.swap_count, 0);
        assert_eq!(res.routing_invocations, 0);
        assert_eq!(res.physical.size(), c.size());
    }

    #[test]
    fn ghz_on_grid_identity_layout_needs_no_swaps_on_row() {
        // GHZ chain 0-1-2 on a 1x3 grid is already nearest-neighbor.
        let grid = Grid::new(1, 3);
        let res = transpile(grid, &builders::ghz(3), RouterKind::locality_aware());
        assert_eq!(res.swap_count, 0);
    }

    #[test]
    fn qft_gets_routed() {
        let grid = Grid::new(2, 3);
        let c = builders::qft(6);
        let res = transpile(grid, &c, RouterKind::locality_aware());
        assert!(res.swap_count > 0, "QFT on a grid must need swaps");
        assert!(res.routing_invocations > 0);
        // Every logical gate made it into the physical circuit.
        assert_eq!(res.physical.size(), c.size() + res.swap_count);
    }

    #[test]
    fn all_routers_produce_feasible_output() {
        let grid = Grid::new(3, 3);
        let c = builders::random_two_qubit_circuit(9, 25, 5);
        for router in [
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::hybrid(),
            RouterKind::Ats,
            RouterKind::Tree,
        ] {
            let res = transpile(grid, &c, router);
            assert_eq!(res.physical.size(), c.size() + res.swap_count);
        }
    }

    #[test]
    fn smaller_circuit_than_grid() {
        let grid = Grid::new(3, 3);
        let c = builders::qft(5); // 5 logical qubits on 9 wires
        let res = transpile(grid, &c, RouterKind::locality_aware());
        assert!(feasible_on(grid, &res.physical));
        assert_eq!(res.initial_layout.len(), 9);
        assert_eq!(res.final_layout.len(), 9);
    }

    #[test]
    fn random_initial_layout() {
        let grid = Grid::new(2, 4);
        let c = builders::ghz(8);
        let t = Transpiler::new(
            grid,
            TranspileOptions {
                router: RouterKind::locality_aware(),
                initial_layout: InitialLayout::Random(7),
            },
        );
        let res = t.run(&c);
        assert!(feasible_on(grid, &res.physical));
        // The initial layout the result reports matches the strategy.
        assert_eq!(res.initial_layout, Layout::random(8, 7).as_phys_of());
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversize_circuit_panics() {
        let grid = Grid::new(2, 2);
        let _ = Transpiler::new(grid, TranspileOptions::default()).run(&builders::ghz(5));
    }

    #[test]
    fn empty_circuit_transpiles_to_nothing() {
        for n_logical in [0usize, 4] {
            let grid = Grid::new(2, 2);
            let res = transpile(grid, &Circuit::new(n_logical), RouterKind::locality_aware());
            assert!(res.physical.is_empty());
            assert_eq!(res.swap_count, 0);
            assert_eq!(res.routing_invocations, 0);
            assert!(res.rounds.is_empty());
            assert_eq!(res.initial_layout, res.final_layout);
        }
    }

    #[test]
    fn single_qubit_only_circuit_never_routes() {
        let grid = Grid::new(2, 3);
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.push(Gate::H(q)).push(Gate::T(q));
        }
        for router in [RouterKind::locality_aware(), RouterKind::Ats] {
            let res = transpile(grid, &c, router);
            assert_eq!(res.swap_count, 0);
            assert_eq!(res.routing_invocations, 0);
            assert_eq!(res.physical.size(), c.size());
        }
    }

    #[test]
    fn full_occupancy_circuit_transpiles_on_every_shape() {
        // Logical qubit count exactly equal to grid.len(), including the
        // degenerate 1x1 and path-shaped grids.
        let one = Grid::new(1, 1);
        let mut c1 = Circuit::new(1);
        c1.push(Gate::H(0));
        let res = transpile(one, &c1, RouterKind::locality_aware());
        assert_eq!(res.swap_count, 0);

        let path = Grid::new(1, 4);
        let res = transpile(path, &builders::qft(4), RouterKind::hybrid());
        assert_eq!(
            res.physical.size(),
            builders::qft(4).size() + res.swap_count
        );

        let grid = Grid::new(3, 3);
        let feasible = builders::trotter_grid_step(3, 3, 0.2, 1);
        let res = transpile(grid, &feasible, RouterKind::naive());
        assert_eq!(res.swap_count, 0, "grid-local circuit needs no routing");
    }

    #[test]
    fn round_stats_reconcile_with_aggregates() {
        let grid = Grid::new(3, 3);
        let c = builders::qaoa_random_graph(9, 2, 3);
        for router in [
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::Ats,
        ] {
            let res = transpile(grid, &c, router);
            assert_eq!(res.rounds.len(), res.routing_invocations);
            assert_eq!(
                res.rounds.iter().map(|r| r.swaps).sum::<usize>(),
                res.swap_count
            );
            assert_eq!(
                res.rounds.iter().map(|r| r.depth).sum::<usize>(),
                res.routing_depth_added
            );
            for r in &res.rounds {
                assert!(r.pinned_pairs >= 1, "every round must make progress");
                assert!(r.pinned_pairs <= r.blocked_gates);
            }
        }
    }

    #[test]
    fn layout_consistency_invariant() {
        // After transpilation, replaying the physical SWAPs over the
        // initial layout must give the final layout. (Valid only for
        // logical circuits without SWAP gates of their own: a logical
        // SWAP is executed as a gate, not absorbed into the layout.)
        let grid = Grid::new(2, 3);
        let c = builders::random_two_qubit_circuit(6, 30, 2);
        let res = transpile(grid, &c, RouterKind::naive());
        let mut layout = Layout::from_phys_of(res.initial_layout.clone());
        for g in res.physical.gates() {
            if let Gate::Swap(a, b) = *g {
                layout.apply_swap(a, b);
            }
        }
        assert_eq!(layout.as_phys_of(), res.final_layout);
    }
}
