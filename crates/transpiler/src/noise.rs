//! A simple multiplicative NISQ error model.
//!
//! The paper's motivation (§I–II) is that SWAP overhead degrades output
//! fidelity on devices without error correction. This module quantifies
//! that: every gate multiplies an estimated success probability by
//! `(1 - ε_gate)`, with SWAPs costing three CX gates. It is a standard
//! first-order depolarizing proxy — good for *ranking* transpilation
//! results, not for absolute fidelity prediction.

use qroute_circuit::{Circuit, Gate};

/// Per-gate error rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Error probability of a one-qubit gate.
    pub p1: f64,
    /// Error probability of a two-qubit gate (CX/CZ).
    pub p2: f64,
    /// Idle (decoherence) error per qubit per circuit layer; applied
    /// `depth × num_qubits` times.
    pub p_idle: f64,
}

impl NoiseModel {
    /// Rates representative of 2022-era superconducting devices:
    /// `p1 = 0.03%`, `p2 = 0.8%`, idle `0.05%` per layer.
    pub fn superconducting_2022() -> NoiseModel {
        NoiseModel { p1: 3e-4, p2: 8e-3, p_idle: 5e-4 }
    }

    /// A noiseless model (success probability 1).
    pub fn ideal() -> NoiseModel {
        NoiseModel { p1: 0.0, p2: 0.0, p_idle: 0.0 }
    }

    /// Estimated success probability of running `circuit`: product of
    /// per-gate survivals and per-layer idle survivals. SWAPs count as
    /// three two-qubit gates.
    pub fn success_probability(&self, circuit: &Circuit) -> f64 {
        let mut log_survival = 0.0f64;
        for g in circuit.gates() {
            let (n2, n1) = match g {
                Gate::Swap(_, _) => (3usize, 0usize),
                g if g.is_two_qubit() => (1, 0),
                _ => (0, 1),
            };
            log_survival += n2 as f64 * (1.0 - self.p2).ln();
            log_survival += n1 as f64 * (1.0 - self.p1).ln();
        }
        let idle_events = circuit.depth() * circuit.num_qubits();
        log_survival += idle_events as f64 * (1.0 - self.p_idle).ln();
        log_survival.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_circuit::builders;

    #[test]
    fn ideal_model_gives_certainty() {
        let c = builders::qft(5);
        assert_eq!(NoiseModel::ideal().success_probability(&c), 1.0);
    }

    #[test]
    fn empty_circuit_survives() {
        let c = Circuit::new(4);
        let p = NoiseModel::superconducting_2022().success_probability(&c);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn more_gates_less_success() {
        let nm = NoiseModel::superconducting_2022();
        let small = builders::random_two_qubit_circuit(6, 10, 1);
        let large = builders::random_two_qubit_circuit(6, 100, 1);
        assert!(nm.success_probability(&small) > nm.success_probability(&large));
    }

    #[test]
    fn swap_costs_three_cx() {
        let nm = NoiseModel { p1: 0.0, p2: 0.01, p_idle: 0.0 };
        let mut with_swap = Circuit::new(2);
        with_swap.push(Gate::Swap(0, 1));
        let mut with_cx = Circuit::new(2);
        with_cx
            .push(Gate::Cx(0, 1))
            .push(Gate::Cx(1, 0))
            .push(Gate::Cx(0, 1));
        let a = nm.success_probability(&with_swap);
        let b = nm.success_probability(&with_cx);
        // The swap counts gates identically but has depth 1 vs 3;
        // with p_idle = 0 the products coincide.
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn routing_overhead_shows_up_in_success() {
        use crate::{InitialLayout, TranspileOptions, Transpiler};
        use qroute_core::RouterKind;
        use qroute_topology::Grid;
        let nm = NoiseModel::superconducting_2022();
        let grid = Grid::new(4, 4);
        let logical = builders::qft(16);
        let t = Transpiler::new(
            grid,
            TranspileOptions {
                router: RouterKind::locality_aware(),
                initial_layout: InitialLayout::Identity,
            },
        );
        let res = t.run(&logical);
        let p_logical = nm.success_probability(&logical);
        let p_physical = nm.success_probability(&res.physical);
        assert!(
            p_physical < p_logical,
            "SWAP overhead must cost fidelity: {p_physical} vs {p_logical}"
        );
        assert!(p_physical > 0.0);
    }
}
