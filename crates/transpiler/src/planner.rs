//! The mapping step: turn a blocked front layer into a target permutation.
//!
//! For each blocked 2-qubit gate `(la, lb)` we pick the *middle edge* of a
//! shortest grid path between their current physical positions and pin
//! both qubits onto its endpoints, so each travels roughly half the
//! distance. Conflicting claims are resolved greedily (first come, first
//! served; later pairs slide along their path to find a free edge, or wait
//! for the next round). Unpinned qubits are completed with the
//! nearest-free policy, so the router sees the most local total
//! permutation consistent with the meeting points — feeding the
//! locality-aware router workloads with exactly the structure it exploits.

use qroute_perm::partial::Completion;
use qroute_perm::{PartialPermutation, Permutation};
use qroute_topology::Grid;

/// An L1 shortest path on the grid from `a` to `b` (rows first, then
/// columns), inclusive of endpoints.
pub fn grid_path(grid: Grid, a: usize, b: usize) -> Vec<usize> {
    let (ar, ac) = grid.coords(a);
    let (br, bc) = grid.coords(b);
    let mut path = vec![a];
    let (mut r, mut c) = (ar, ac);
    while r != br {
        r = if br > r { r + 1 } else { r - 1 };
        path.push(grid.index(r, c));
    }
    while c != bc {
        c = if bc > c { c + 1 } else { c - 1 };
        path.push(grid.index(r, c));
    }
    path
}

/// Plan the target permutation for a blocked round.
///
/// `blocked` lists the physical positions `(pa, pb)` of blocked gate
/// pairs. Returns the completed permutation over all grid vertices and
/// the number of pairs actually pinned (always ≥ 1 when `blocked` is
/// nonempty).
pub fn plan_targets(grid: Grid, blocked: &[(usize, usize)]) -> (Permutation, usize) {
    assert!(!blocked.is_empty(), "planner called with nothing blocked");
    let n = grid.len();
    let mut pp = PartialPermutation::new(n);
    let mut claimed = vec![false; n];
    let mut moved = vec![false; n];
    let mut pinned_pairs = 0usize;

    for &(pa, pb) in blocked {
        debug_assert!(grid.dist(pa, pb) >= 2, "blocked pair is already adjacent");
        if moved[pa] || moved[pb] {
            continue; // one endpoint already scheduled this round
        }
        let path = grid_path(grid, pa, pb);
        // Middle edge is (path[mid], path[mid+1]); slide outward from it
        // until both endpoints are unclaimed.
        let mid = (path.len() - 2) / 2;
        let mut edge = None;
        for offset in 0..path.len() {
            for h in [
                mid.saturating_sub(offset),
                (mid + offset).min(path.len() - 2),
            ] {
                if !claimed[path[h]] && !claimed[path[h + 1]] {
                    edge = Some(h);
                    break;
                }
            }
            if edge.is_some() {
                break;
            }
        }
        let Some(h) = edge else { continue };
        // Pin: token at pa goes to path[h], token at pb to path[h+1].
        if pp.pin(pa, path[h]).is_err() || pp.pin(pb, path[h + 1]).is_err() {
            continue;
        }
        claimed[path[h]] = true;
        claimed[path[h + 1]] = true;
        moved[pa] = true;
        moved[pb] = true;
        pinned_pairs += 1;
    }

    // Greedy claims can starve every pair only through pin conflicts,
    // which the `claimed` pre-check prevents for the first pair.
    debug_assert!(pinned_pairs >= 1, "planner must make progress");
    (pp.complete(&Completion::NearestFree(grid)), pinned_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_endpoints_and_length() {
        let grid = Grid::new(4, 4);
        let a = grid.index(0, 0);
        let b = grid.index(3, 2);
        let p = grid_path(grid, a, b);
        assert_eq!(p.first(), Some(&a));
        assert_eq!(p.last(), Some(&b));
        assert_eq!(p.len(), grid.dist(a, b) + 1);
        for w in p.windows(2) {
            assert_eq!(grid.dist(w[0], w[1]), 1);
        }
    }

    #[test]
    fn path_same_vertex() {
        let grid = Grid::new(2, 2);
        assert_eq!(grid_path(grid, 3, 3), vec![3]);
    }

    #[test]
    fn single_pair_meets_in_middle() {
        let grid = Grid::new(1, 6);
        let (pi, pinned) = plan_targets(grid, &[(0, 5)]);
        assert_eq!(pinned, 1);
        // After routing, tokens from 0 and 5 must be adjacent.
        assert_eq!(grid.dist(pi.apply(0), pi.apply(5)), 1);
        // They should meet near the middle, not at either end.
        assert!(pi.apply(0) >= 1 && pi.apply(5) <= 4);
    }

    #[test]
    fn conflicting_pairs_still_make_progress() {
        // Two pairs whose paths overlap completely.
        let grid = Grid::new(1, 8);
        let (pi, pinned) = plan_targets(grid, &[(0, 7), (1, 6)]);
        assert!(pinned >= 1);
        assert_eq!(grid.dist(pi.apply(0), pi.apply(7)), 1);
    }

    #[test]
    fn disjoint_pairs_all_pinned() {
        let grid = Grid::new(4, 4);
        let pairs = [
            (grid.index(0, 0), grid.index(0, 3)),
            (grid.index(3, 0), grid.index(3, 3)),
        ];
        let (pi, pinned) = plan_targets(grid, &pairs);
        assert_eq!(pinned, 2);
        for (a, b) in pairs {
            assert_eq!(grid.dist(pi.apply(a), pi.apply(b)), 1, "pair ({a},{b})");
        }
    }

    #[test]
    fn completion_is_a_permutation_and_local() {
        let grid = Grid::new(5, 5);
        let (pi, _) = plan_targets(grid, &[(grid.index(0, 0), grid.index(4, 4))]);
        assert_eq!(pi.len(), 25);
        // Most qubits should not move at all under nearest-free
        // completion (the two pinned tokens plus a short displacement
        // cascade near the meeting edge).
        let moved = (0..25).filter(|&v| pi.apply(v) != v).count();
        assert!((2..=14).contains(&moved), "completion moved {moved} qubits");
    }

    #[test]
    fn shared_endpoint_pairs_defer() {
        // Pairs sharing a qubit: only one can be pinned per round.
        let grid = Grid::new(1, 7);
        let (_, pinned) = plan_targets(grid, &[(0, 4), (4, 6)]);
        assert_eq!(pinned, 1);
    }
}
