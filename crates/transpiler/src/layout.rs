//! The logical ↔ physical qubit mapping.
//!
//! Logical qubits `0..n_logical` live on physical grid vertices. When the
//! grid is larger than the circuit, the spare wires are *dummy* logical
//! indices `n_logical..grid_len` so a full bijection is always maintained
//! (the routers want total permutations; the don't-care extension of §II).

use qroute_perm::Permutation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A bijection between logical indices (including dummies) and physical
/// vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `phys_of[l]` = physical vertex of logical `l`.
    phys_of: Vec<usize>,
    /// `log_at[p]` = logical index on physical vertex `p`.
    log_at: Vec<usize>,
}

impl Layout {
    /// Identity layout on `n` wires.
    pub fn identity(n: usize) -> Layout {
        Layout { phys_of: (0..n).collect(), log_at: (0..n).collect() }
    }

    /// Seeded uniformly random layout on `n` wires.
    pub fn random(n: usize, seed: u64) -> Layout {
        let mut phys_of: Vec<usize> = (0..n).collect();
        phys_of.shuffle(&mut StdRng::seed_from_u64(seed));
        Layout::from_phys_of(phys_of)
    }

    /// Build from an explicit `logical -> physical` table.
    ///
    /// # Panics
    /// Panics when the table is not a permutation.
    pub fn from_phys_of(phys_of: Vec<usize>) -> Layout {
        let n = phys_of.len();
        let mut log_at = vec![usize::MAX; n];
        for (l, &p) in phys_of.iter().enumerate() {
            assert!(p < n, "physical vertex {p} out of range");
            assert_eq!(log_at[p], usize::MAX, "physical vertex {p} claimed twice");
            log_at[p] = l;
        }
        Layout { phys_of, log_at }
    }

    /// Number of wires.
    #[inline]
    pub fn len(&self) -> usize {
        self.phys_of.len()
    }

    /// `true` when the layout covers zero wires.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.phys_of.is_empty()
    }

    /// Physical vertex of logical `l`.
    #[inline]
    pub fn phys_of(&self, l: usize) -> usize {
        self.phys_of[l]
    }

    /// Logical index on physical vertex `p`.
    #[inline]
    pub fn log_at(&self, p: usize) -> usize {
        self.log_at[p]
    }

    /// Apply a physical SWAP between vertices `a` and `b`.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        let (la, lb) = (self.log_at[a], self.log_at[b]);
        self.log_at.swap(a, b);
        self.phys_of[la] = b;
        self.phys_of[lb] = a;
    }

    /// The `logical -> physical` table.
    pub fn as_phys_of(&self) -> &[usize] {
        &self.phys_of
    }

    /// View as a [`Permutation`] `l ↦ phys_of(l)`.
    pub fn to_permutation(&self) -> Permutation {
        Permutation::from_vec_unchecked(self.phys_of.clone())
    }
}

/// Initial-layout strategies for the transpiler.
#[derive(Debug, Clone)]
pub enum InitialLayout {
    /// Logical `l` starts on physical `l` (row-major on the grid).
    Identity,
    /// Seeded random placement.
    Random(u64),
    /// Explicit `logical -> physical` table (length = grid size).
    Custom(Vec<usize>),
}

impl InitialLayout {
    /// Materialize into a [`Layout`] on `n` wires.
    pub fn build(&self, n: usize) -> Layout {
        match self {
            InitialLayout::Identity => Layout::identity(n),
            InitialLayout::Random(seed) => Layout::random(n, *seed),
            InitialLayout::Custom(table) => {
                assert_eq!(table.len(), n, "custom layout must cover the whole grid");
                Layout::from_phys_of(table.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let l = Layout::identity(5);
        for i in 0..5 {
            assert_eq!(l.phys_of(i), i);
            assert_eq!(l.log_at(i), i);
        }
    }

    #[test]
    fn swap_updates_both_views() {
        let mut l = Layout::identity(4);
        l.apply_swap(0, 3);
        assert_eq!(l.phys_of(0), 3);
        assert_eq!(l.phys_of(3), 0);
        assert_eq!(l.log_at(0), 3);
        assert_eq!(l.log_at(3), 0);
        l.apply_swap(0, 3);
        assert_eq!(l, Layout::identity(4));
    }

    #[test]
    fn random_is_seeded_bijection() {
        let a = Layout::random(8, 3);
        let b = Layout::random(8, 3);
        assert_eq!(a, b);
        for p in 0..8 {
            assert_eq!(a.phys_of(a.log_at(p)), p);
        }
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn from_phys_of_validates() {
        let _ = Layout::from_phys_of(vec![0, 0, 1]);
    }

    #[test]
    fn strategies_build() {
        assert_eq!(InitialLayout::Identity.build(3), Layout::identity(3));
        let c = InitialLayout::Custom(vec![2, 0, 1]).build(3);
        assert_eq!(c.phys_of(0), 2);
        assert_eq!(c.log_at(2), 0);
    }

    #[test]
    fn permutation_view() {
        let l = Layout::from_phys_of(vec![1, 2, 0]);
        let p = l.to_permutation();
        assert_eq!(p.apply(0), 1);
        assert_eq!(p.apply(2), 0);
    }
}
