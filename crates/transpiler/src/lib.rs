//! # qroute-transpiler
//!
//! A mapping + routing transpiler for grid architectures, built on the
//! routers of `qroute-core` — the deployment context §II describes: the
//! hard joint optimization is "decomposed into an alternating sequence of
//! mapping and routing problems", and *any* permutation router can serve
//! as the routing primitive.
//!
//! Pipeline: start from an initial layout; repeatedly execute every ready
//! gate that is feasible on the coupling grid; when the ready front is
//! fully blocked, plan a *target permutation* that brings blocked gate
//! pairs together (mapping step), route it with the configured router
//! (routing step), emit the SWAP layers, and continue. The output records
//! the initial and final layouts so the physical circuit can be verified
//! equivalent to the logical circuit (`qroute-sim`).
//!
//! Modules:
//! * [`layout`] — the logical↔physical bijection and initial-layout
//!   strategies;
//! * [`planner`] — the mapping step: blocked pairs → pinned meeting
//!   points → completed permutation;
//! * [`transpile`] — the main loop and its metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod noise;
pub mod planner;
pub mod transpile;

pub use layout::{InitialLayout, Layout};
pub use noise::NoiseModel;
pub use transpile::{RoundStats, TranspileOptions, TranspileResult, Transpiler};
