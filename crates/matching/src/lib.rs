//! # qroute-matching
//!
//! Bipartite matching machinery for the locality-aware grid router:
//!
//! * [`hopcroft_karp`](mod@hopcroft_karp) — maximum-cardinality bipartite matching in
//!   `O(E √V)`; the workhorse underneath everything else.
//! * [`multigraph`] — the bipartite **multigraph** `G[a,b]` of §IV-A: one
//!   labeled parallel edge per qubit, restrictable to row bands.
//! * [`decompose`] — decomposition of a `k`-regular bipartite multigraph
//!   into `k` perfect matchings (Hall/König), used by the *naive*
//!   `GridRoute` baseline and as the fallback tail of the doubling search.
//! * [`bottleneck`] — the **MCBBM** solver (maximum-cardinality bottleneck
//!   bipartite matching) assigning matchings to staging rows (Algorithm 2,
//!   line 20), plus a min-*sum* Hungarian assignment used as an ablation.
//! * [`hall`] — Hall-condition checking and deficient-set extraction
//!   (König certificates), used by tests and diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod decompose;
pub mod euler;
pub mod hall;
pub mod hopcroft_karp;
pub mod multigraph;

pub use bottleneck::{bottleneck_assignment, min_sum_assignment, BottleneckResult};
pub use decompose::{decompose_regular, DecomposeError};
pub use euler::{decompose_regular_euler, euler_split};
pub use hopcroft_karp::{hopcroft_karp, Matching};
pub use multigraph::{BipartiteMultigraph, EdgeId, LabeledEdge};
