//! The bipartite multigraph `G[a,b]` of §IV-A.
//!
//! Left and right vertex sets are both the columns `[n]` of the grid. For
//! every qubit at `(i, j)` with destination `π(i, j) = (i', j')` and
//! `i ∈ {a,…,b}` there is one parallel edge `j → j'` carrying the label
//! `(i, i')` — the source and destination *rows* of that qubit. A perfect
//! matching of the full `G[1,m]` selects, for each column, one qubit that
//! will be staged in a common row.

use crate::hopcroft_karp::{hopcroft_karp, Matching};

/// Identifier of a parallel edge (index into the edge array).
pub type EdgeId = usize;

/// One parallel edge of the multigraph: a single qubit's column movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledEdge {
    /// Source column `j`.
    pub left: usize,
    /// Destination column `j'`.
    pub right: usize,
    /// Source row `i` (the paper's band restriction filters on this).
    pub src_row: usize,
    /// Destination row `i'`.
    pub dst_row: usize,
}

/// A bipartite multigraph on `cols + cols` vertices with labeled parallel
/// edges and tombstone deletion.
#[derive(Debug, Clone)]
pub struct BipartiteMultigraph {
    cols: usize,
    edges: Vec<LabeledEdge>,
    alive: Vec<bool>,
    num_alive: usize,
}

/// A snapshot of a multigraph's alive-edge set.
///
/// Decomposition consumes edges by tombstoning; callers that want to
/// rewind (re-decompose with a different strategy, validate against the
/// pre-decomposition state) used to `clone()` the whole multigraph —
/// edge labels included — even though only the tombstones change. A
/// snapshot copies just the alive bitset, and
/// [`BipartiteMultigraph::restore_alive`] writes it back in place.
#[derive(Debug, Clone)]
pub struct AliveSnapshot {
    alive: Vec<bool>,
    num_alive: usize,
}

impl BipartiteMultigraph {
    /// Create an empty multigraph on `cols` columns per side.
    pub fn new(cols: usize) -> BipartiteMultigraph {
        BipartiteMultigraph { cols, edges: Vec::new(), alive: Vec::new(), num_alive: 0 }
    }

    /// Number of columns per side.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Add a labeled parallel edge; returns its id.
    ///
    /// # Panics
    /// Panics when a column endpoint is out of range.
    pub fn add_edge(&mut self, e: LabeledEdge) -> EdgeId {
        assert!(
            e.left < self.cols && e.right < self.cols,
            "column out of range"
        );
        let id = self.edges.len();
        self.edges.push(e);
        self.alive.push(true);
        self.num_alive += 1;
        id
    }

    /// Total number of edges ever added.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges not yet removed.
    #[inline]
    pub fn num_alive(&self) -> usize {
        self.num_alive
    }

    /// Edge data by id (dead edges remain accessible).
    #[inline]
    pub fn edge(&self, id: EdgeId) -> LabeledEdge {
        self.edges[id]
    }

    /// `true` when the edge has not been removed.
    #[inline]
    pub fn is_alive(&self, id: EdgeId) -> bool {
        self.alive[id]
    }

    /// Remove an edge (idempotent).
    pub fn remove_edge(&mut self, id: EdgeId) {
        if self.alive[id] {
            self.alive[id] = false;
            self.num_alive -= 1;
        }
    }

    /// Capture the current alive-edge set (see [`AliveSnapshot`]).
    pub fn save_alive(&self) -> AliveSnapshot {
        AliveSnapshot { alive: self.alive.clone(), num_alive: self.num_alive }
    }

    /// Restore a previously captured alive-edge set, undoing every
    /// removal (and resurrecting nothing that was already dead at capture
    /// time). The edge array itself is append-only, so a snapshot stays
    /// valid as long as no edges were added after it was taken.
    ///
    /// # Panics
    /// Panics when edges were added since the snapshot was captured.
    pub fn restore_alive(&mut self, snapshot: &AliveSnapshot) {
        assert_eq!(
            snapshot.alive.len(),
            self.alive.len(),
            "snapshot predates {} added edges",
            self.alive.len().saturating_sub(snapshot.alive.len())
        );
        self.alive.copy_from_slice(&snapshot.alive);
        self.num_alive = snapshot.num_alive;
    }

    /// Ids of alive edges whose *source row* lies in `band` (inclusive),
    /// the restriction `G[a,b]` of the paper.
    pub fn band_edges(&self, band: (usize, usize)) -> Vec<EdgeId> {
        let (a, b) = band;
        (0..self.edges.len())
            .filter(|&id| {
                self.alive[id] && self.edges[id].src_row >= a && self.edges[id].src_row <= b
            })
            .collect()
    }

    /// Ids of all alive edges.
    pub fn alive_edges(&self) -> Vec<EdgeId> {
        (0..self.edges.len()).filter(|&id| self.alive[id]).collect()
    }

    /// Left-degree and right-degree arrays over alive edges.
    pub fn degrees(&self) -> (Vec<usize>, Vec<usize>) {
        let mut dl = vec![0usize; self.cols];
        let mut dr = vec![0usize; self.cols];
        for (id, e) in self.edges.iter().enumerate() {
            if self.alive[id] {
                dl[e.left] += 1;
                dr[e.right] += 1;
            }
        }
        (dl, dr)
    }

    /// Greedily extract *edge-disjoint perfect matchings* from the listed
    /// edge subset: repeatedly run Hopcroft–Karp on the surviving subset
    /// until no perfect matching exists. Extracted edges are removed from
    /// the multigraph. Returns the extracted matchings as vectors of edge
    /// ids (each of length `cols`).
    ///
    /// This implements line 8 of Algorithm 2 ("Find all perfect matchings
    /// (if any) in `G[r, min(r+w, m)]`") together with the edge removal of
    /// line 9.
    pub fn extract_perfect_matchings(&mut self, candidate: &[EdgeId]) -> Vec<Vec<EdgeId>> {
        let mut available: Vec<EdgeId> = candidate
            .iter()
            .copied()
            .filter(|&id| self.alive[id])
            .collect();
        let mut out = Vec::new();
        // Representative and adjacency buffers are recycled across the
        // peel iterations — only the first iteration allocates.
        let mut rep: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new(); self.cols];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.cols];
        loop {
            // Collapse parallel edges; remember one representative edge id
            // per (left, right) pair. The first listed edge wins, so the
            // row-major insertion order stratifies successive extractions
            // from low rows upward — matching the paper's arbitrary choice
            // within a band while keeping extractions spread across rows.
            for r in rep.iter_mut() {
                r.clear();
            }
            for &id in &available {
                let e = self.edges[id];
                if !rep[e.left].iter().any(|&(r, _)| r == e.right as u32) {
                    rep[e.left].push((e.right as u32, id));
                }
            }
            for (a, r) in adj.iter_mut().zip(rep.iter()) {
                a.clear();
                a.extend(r.iter().map(|&(rr, _)| rr));
            }
            let m: Matching = hopcroft_karp(self.cols, self.cols, &adj);
            if !m.is_perfect() {
                break;
            }
            let mut matching_ids = Vec::with_capacity(self.cols);
            for (l, r) in m.pairs() {
                let &(_, id) = rep[l]
                    .iter()
                    .find(|&&(rr, _)| rr as usize == r)
                    .expect("matched pair must have a representative");
                matching_ids.push(id);
            }
            for &id in &matching_ids {
                self.remove_edge(id);
            }
            available.retain(|&id| self.alive[id]);
            matching_ids.sort_unstable_by_key(|&id| self.edges[id].left);
            out.push(matching_ids);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(left: usize, right: usize, src_row: usize, dst_row: usize) -> LabeledEdge {
        LabeledEdge { left, right, src_row, dst_row }
    }

    #[test]
    fn add_remove_band() {
        let mut g = BipartiteMultigraph::new(3);
        let a = g.add_edge(e(0, 1, 0, 2));
        let b = g.add_edge(e(1, 2, 1, 0));
        let c = g.add_edge(e(2, 0, 2, 1));
        assert_eq!(g.num_alive(), 3);
        assert_eq!(g.band_edges((0, 1)), vec![a, b]);
        g.remove_edge(a);
        g.remove_edge(a); // idempotent
        assert_eq!(g.num_alive(), 2);
        assert_eq!(g.band_edges((0, 2)), vec![b, c]);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = BipartiteMultigraph::new(2);
        g.add_edge(e(0, 1, 0, 0));
        g.add_edge(e(0, 1, 1, 1));
        assert_eq!(g.num_edges(), 2);
        let (dl, dr) = g.degrees();
        assert_eq!(dl, vec![2, 0]);
        assert_eq!(dr, vec![0, 2]);
    }

    #[test]
    fn extract_from_identity_multigraph() {
        // Two columns, two rows, identity permutation: edges (0,0) twice
        // and (1,1) twice -> two perfect matchings.
        let mut g = BipartiteMultigraph::new(2);
        for row in 0..2 {
            g.add_edge(e(0, 0, row, row));
            g.add_edge(e(1, 1, row, row));
        }
        let all = g.alive_edges();
        let ms = g.extract_perfect_matchings(&all);
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m.len(), 2);
        }
        assert_eq!(g.num_alive(), 0);
    }

    #[test]
    fn extract_respects_band() {
        let mut g = BipartiteMultigraph::new(2);
        g.add_edge(e(0, 0, 0, 0));
        g.add_edge(e(1, 1, 0, 0));
        g.add_edge(e(0, 1, 1, 1));
        g.add_edge(e(1, 0, 1, 1));
        // Band row 0 only: one perfect matching {(0,0),(1,1)}.
        let band = g.band_edges((0, 0));
        let ms = g.extract_perfect_matchings(&band);
        assert_eq!(ms.len(), 1);
        assert_eq!(g.num_alive(), 2);
        // Remaining band row 1: the crossing matching.
        let band = g.band_edges((1, 1));
        let ms = g.extract_perfect_matchings(&band);
        assert_eq!(ms.len(), 1);
        assert_eq!(g.num_alive(), 0);
    }

    #[test]
    fn no_perfect_matching_in_deficient_band() {
        let mut g = BipartiteMultigraph::new(2);
        g.add_edge(e(0, 0, 0, 0));
        g.add_edge(e(1, 0, 0, 0)); // both columns target column 0
        let band = g.alive_edges();
        let ms = g.extract_perfect_matchings(&band);
        assert!(ms.is_empty());
        assert_eq!(g.num_alive(), 2, "failed extraction must not consume edges");
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = BipartiteMultigraph::new(2);
        g.add_edge(e(0, 5, 0, 0));
    }

    #[test]
    fn alive_snapshot_round_trips() {
        let mut g = BipartiteMultigraph::new(2);
        let a = g.add_edge(e(0, 0, 0, 0));
        let b = g.add_edge(e(1, 1, 0, 0));
        g.remove_edge(a);
        let snap = g.save_alive();
        g.remove_edge(b);
        assert_eq!(g.num_alive(), 0);
        g.restore_alive(&snap);
        // `b` resurrects, `a` stays dead (it was dead at capture time).
        assert_eq!(g.num_alive(), 1);
        assert!(!g.is_alive(a));
        assert!(g.is_alive(b));
    }

    #[test]
    #[should_panic(expected = "snapshot predates")]
    fn stale_snapshot_panics() {
        let mut g = BipartiteMultigraph::new(2);
        g.add_edge(e(0, 0, 0, 0));
        let snap = g.save_alive();
        g.add_edge(e(1, 1, 0, 0));
        g.restore_alive(&snap);
    }
}
