//! Decomposition of a regular bipartite multigraph into perfect matchings.
//!
//! A `k`-regular bipartite multigraph decomposes into exactly `k` perfect
//! matchings (repeated application of Hall's theorem / König's
//! edge-coloring theorem). The naive `GridRoute` baseline of Alon, Chung
//! and Graham decomposes `G[1,m]` this way with *arbitrary* matchings —
//! precisely the step the paper replaces with locality-aware selection.

use crate::multigraph::{BipartiteMultigraph, EdgeId};

/// Failure modes of [`decompose_regular`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// The multigraph's alive edges are not regular: some vertex degree
    /// differs from another.
    NotRegular {
        /// A vertex (side, index) with deviating degree.
        side_left: bool,
        /// The offending column index.
        col: usize,
    },
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::NotRegular { side_left, col } => write!(
                f,
                "multigraph is not regular at {} vertex {col}",
                if *side_left { "left" } else { "right" }
            ),
        }
    }
}

impl std::error::Error for DecomposeError {}

/// Decompose the alive edges of a `k`-regular bipartite multigraph into
/// exactly `k` perfect matchings, consuming the edges.
///
/// Returns the matchings as vectors of edge ids (each of length
/// `g.cols()`), in extraction order.
pub fn decompose_regular(g: &mut BipartiteMultigraph) -> Result<Vec<Vec<EdgeId>>, DecomposeError> {
    let (dl, dr) = g.degrees();
    let k = dl.first().copied().unwrap_or(0);
    for (col, &d) in dl.iter().enumerate() {
        if d != k {
            return Err(DecomposeError::NotRegular { side_left: true, col });
        }
    }
    for (col, &d) in dr.iter().enumerate() {
        if d != k {
            return Err(DecomposeError::NotRegular { side_left: false, col });
        }
    }
    let all = g.alive_edges();
    let matchings = g.extract_perfect_matchings(&all);
    debug_assert_eq!(
        matchings.len(),
        k,
        "regular multigraph must decompose into exactly k matchings"
    );
    Ok(matchings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::LabeledEdge;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Build a k-regular multigraph as a union of k random perfect
    /// matchings (then `decompose_regular` must recover *some* k perfect
    /// matchings, not necessarily the same ones).
    fn random_regular(cols: usize, k: usize, seed: u64) -> BipartiteMultigraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = BipartiteMultigraph::new(cols);
        for layer in 0..k {
            let mut rights: Vec<usize> = (0..cols).collect();
            rights.shuffle(&mut rng);
            for (l, &r) in rights.iter().enumerate() {
                g.add_edge(LabeledEdge { left: l, right: r, src_row: layer, dst_row: layer });
            }
        }
        g
    }

    fn assert_valid_decomposition(g: &BipartiteMultigraph, ms: &[Vec<EdgeId>], cols: usize) {
        let mut seen = std::collections::HashSet::new();
        for m in ms {
            assert_eq!(m.len(), cols);
            let mut left_used = vec![false; cols];
            let mut right_used = vec![false; cols];
            for &id in m {
                assert!(seen.insert(id), "edge {id} reused across matchings");
                let e = g.edge(id);
                assert!(!left_used[e.left] && !right_used[e.right], "not a matching");
                left_used[e.left] = true;
                right_used[e.right] = true;
            }
        }
    }

    #[test]
    fn decomposes_random_regular_multigraphs() {
        for (cols, k, seed) in [(1, 1, 0), (2, 3, 1), (5, 4, 2), (8, 8, 3), (12, 3, 4)] {
            let mut g = random_regular(cols, k, seed);
            // Tombstoned edges keep their labels, so validity checks read
            // `g` directly; the alive snapshot (not a full clone) rewinds
            // the consumption for a second pass.
            let before = g.save_alive();
            let ms = decompose_regular(&mut g).unwrap();
            assert_eq!(ms.len(), k, "cols={cols} k={k}");
            assert_valid_decomposition(&g, &ms, cols);
            assert_eq!(g.num_alive(), 0);
            g.restore_alive(&before);
            assert_eq!(g.num_alive(), cols * k);
            let again = decompose_regular(&mut g).unwrap();
            assert_eq!(ms, again, "decomposition must be deterministic");
        }
    }

    #[test]
    fn rejects_irregular() {
        let mut g = BipartiteMultigraph::new(2);
        g.add_edge(LabeledEdge { left: 0, right: 0, src_row: 0, dst_row: 0 });
        let err = decompose_regular(&mut g).unwrap_err();
        assert!(matches!(err, DecomposeError::NotRegular { .. }));
    }

    #[test]
    fn zero_regular_is_empty_decomposition() {
        let mut g = BipartiteMultigraph::new(3);
        let ms = decompose_regular(&mut g).unwrap();
        assert!(ms.is_empty());
    }

    #[test]
    fn parallel_heavy_multigraph() {
        // All k edges of each left vertex point to the same right vertex
        // (a permutation multigraph with multiplicity k).
        let cols = 4;
        let k = 5;
        let mut g = BipartiteMultigraph::new(cols);
        for l in 0..cols {
            for c in 0..k {
                g.add_edge(LabeledEdge { left: l, right: (l + 1) % cols, src_row: c, dst_row: c });
            }
        }
        let ms = decompose_regular(&mut g).unwrap();
        assert_eq!(ms.len(), k);
        assert_valid_decomposition(&g, &ms, cols);
    }
}
