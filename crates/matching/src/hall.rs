//! Hall-condition checking with König certificates.
//!
//! The correctness of `GridRoute` rests on "successive applications of
//! Hall's marriage theorem" (§IV): the column multigraph `G[1,m]` always
//! satisfies Hall's condition because it is regular. These helpers verify
//! the condition on arbitrary bipartite graphs and, when it fails, produce
//! a *deficient set* `S` with `|N(S)| < |S|` as a certificate — used in
//! tests and to produce good error messages from the router.

use crate::hopcroft_karp::hopcroft_karp;

/// `true` iff every subset of left vertices has enough neighbors, i.e. a
/// left-saturating matching exists (checked via max matching, not subsets).
pub fn hall_satisfied(nl: usize, nr: usize, adj: &[Vec<u32>]) -> bool {
    hopcroft_karp(nl, nr, adj).size() == nl
}

/// If Hall's condition fails, return a deficient left set `S` (with
/// `|N(S)| < |S|`); otherwise `None`.
///
/// Certificate construction: take a maximum matching, start from all
/// unmatched left vertices, and alternate (left→right via any edge,
/// right→left via matched edge). The left vertices reached form `S`; all
/// their neighbors are reached and matched into `S`, giving
/// `|N(S)| = |S| - (#unmatched seeds) < |S|`.
pub fn deficient_set(nl: usize, nr: usize, adj: &[Vec<u32>]) -> Option<Vec<usize>> {
    let m = hopcroft_karp(nl, nr, adj);
    if m.size() == nl {
        return None;
    }
    let mut left_seen = vec![false; nl];
    let mut right_seen = vec![false; nr];
    let mut stack: Vec<usize> = (0..nl).filter(|&l| m.pair_left[l].is_none()).collect();
    for &l in &stack {
        left_seen[l] = true;
    }
    while let Some(l) = stack.pop() {
        for &r in &adj[l] {
            let r = r as usize;
            if !right_seen[r] {
                right_seen[r] = true;
                if let Some(l2) = m.pair_right[r] {
                    if !left_seen[l2] {
                        left_seen[l2] = true;
                        stack.push(l2);
                    }
                }
            }
        }
    }
    let s: Vec<usize> = (0..nl).filter(|&l| left_seen[l]).collect();
    debug_assert!(!s.is_empty());
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neighborhood(adj: &[Vec<u32>], s: &[usize]) -> std::collections::BTreeSet<u32> {
        s.iter().flat_map(|&l| adj[l].iter().copied()).collect()
    }

    #[test]
    fn satisfied_on_perfect_matchable() {
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        assert!(hall_satisfied(3, 3, &adj));
        assert!(deficient_set(3, 3, &adj).is_none());
    }

    #[test]
    fn violated_with_certificate() {
        // Three left vertices share two right neighbors.
        let adj = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        assert!(!hall_satisfied(3, 2, &adj));
        let s = deficient_set(3, 2, &adj).unwrap();
        let nbrs = neighborhood(&adj, &s);
        assert!(
            nbrs.len() < s.len(),
            "certificate not deficient: {s:?} -> {nbrs:?}"
        );
    }

    #[test]
    fn isolated_left_vertex() {
        let adj = vec![vec![0], vec![]];
        let s = deficient_set(2, 1, &adj).unwrap();
        let nbrs = neighborhood(&adj, &s);
        assert!(nbrs.len() < s.len());
        assert!(s.contains(&1));
    }

    #[test]
    fn certificate_on_random_deficient_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(0..8);
            let adj: Vec<Vec<u32>> = (0..nl)
                .map(|_| (0..nr as u32).filter(|_| rng.gen_bool(0.3)).collect())
                .collect();
            match deficient_set(nl, nr, &adj) {
                None => assert!(hall_satisfied(nl, nr, &adj)),
                Some(s) => {
                    let nbrs = neighborhood(&adj, &s);
                    assert!(nbrs.len() < s.len(), "bad certificate {s:?} in {adj:?}");
                }
            }
        }
    }
}
