//! Euler-split decomposition of regular bipartite multigraphs.
//!
//! [`crate::decompose_regular`] peels perfect matchings with Hopcroft–Karp,
//! costing `k` full matching runs on a `k`-regular multigraph. The classic
//! improvement: when the degree is even, orient an Euler circuit and split
//! the edges alternately into two half-degree multigraphs — each split is
//! linear in the number of edges, so a `k`-regular graph decomposes with
//! only `O(log k)` levels of Hopcroft–Karp work (one matching peel per odd
//! degree encountered). This is the standard trick behind the
//! near-linear-time claims for the first phase of grid routing.

use crate::hopcroft_karp::hopcroft_karp;
use crate::multigraph::{BipartiteMultigraph, EdgeId};

/// Split a multiset of edges whose induced degrees are all even into two
/// halves such that every vertex keeps exactly half its degree in each
/// half (Euler-circuit alternation). Edges are given by id; the
/// multigraph supplies endpoints.
///
/// # Panics
/// Panics (debug) if some induced degree is odd.
pub fn euler_split(mg: &BipartiteMultigraph, edges: &[EdgeId]) -> (Vec<EdgeId>, Vec<EdgeId>) {
    let cols = mg.cols();
    // Vertex ids: left j -> j, right j -> cols + j.
    let nv = 2 * cols;
    // Incidence lists of (edge id, other endpoint).
    let mut inc: Vec<Vec<(EdgeId, usize)>> = vec![Vec::new(); nv];
    for &id in edges {
        let e = mg.edge(id);
        let (l, r) = (e.left, cols + e.right);
        inc[l].push((id, r));
        inc[r].push((id, l));
    }
    debug_assert!(inc.iter().all(|v| v.len() % 2 == 0), "degrees must be even");

    let mut used = vec![false; mg.num_edges()];
    let mut cursor = vec![0usize; nv];
    let mut half_a = Vec::with_capacity(edges.len() / 2);
    let mut half_b = Vec::with_capacity(edges.len() / 2);

    // Hierholzer over each component; alternate circuit edges into the
    // two halves. Circuits in a bipartite graph have even length, and at
    // every vertex the circuit pairs consecutive incident edges, so each
    // vertex's degree splits evenly.
    for start in 0..nv {
        loop {
            // Find an unused edge at `start`.
            while cursor[start] < inc[start].len() && used[inc[start][cursor[start]].0] {
                cursor[start] += 1;
            }
            if cursor[start] >= inc[start].len() {
                break;
            }
            // Trace a circuit from `start`.
            let mut circuit: Vec<EdgeId> = Vec::new();
            let mut v = start;
            loop {
                while cursor[v] < inc[v].len() && used[inc[v][cursor[v]].0] {
                    cursor[v] += 1;
                }
                if cursor[v] >= inc[v].len() {
                    break; // circuit closed back at a saturated vertex
                }
                let (id, w) = inc[v][cursor[v]];
                used[id] = true;
                circuit.push(id);
                v = w;
                if v == start {
                    // Circuit closed; keep extending only via the outer
                    // loop (Hierholzer splice is unnecessary for
                    // splitting: any partition of the edge set into
                    // closed circuits alternates consistently because
                    // every circuit has even length).
                    break;
                }
            }
            debug_assert!(
                circuit.len().is_multiple_of(2),
                "bipartite circuits have even length"
            );
            for (k, id) in circuit.into_iter().enumerate() {
                if k % 2 == 0 {
                    half_a.push(id);
                } else {
                    half_b.push(id);
                }
            }
        }
    }
    (half_a, half_b)
}

/// Decompose the alive edges of a `k`-regular bipartite multigraph into
/// `k` perfect matchings using Euler splits, peeling a Hopcroft–Karp
/// matching only at odd degrees. Edges are consumed from `mg`.
///
/// Produces the same *kind* of output as [`crate::decompose_regular`] —
/// `k` edge-disjoint perfect matchings partitioning the edges — typically
/// different matchings, asymptotically faster.
pub fn decompose_regular_euler(
    mg: &mut BipartiteMultigraph,
) -> Result<Vec<Vec<EdgeId>>, crate::decompose::DecomposeError> {
    let (dl, dr) = mg.degrees();
    let k = dl.first().copied().unwrap_or(0);
    for (col, &d) in dl.iter().enumerate() {
        if d != k {
            return Err(crate::decompose::DecomposeError::NotRegular { side_left: true, col });
        }
    }
    for (col, &d) in dr.iter().enumerate() {
        if d != k {
            return Err(crate::decompose::DecomposeError::NotRegular { side_left: false, col });
        }
    }

    fn rec(mg: &BipartiteMultigraph, edges: Vec<EdgeId>, k: usize, out: &mut Vec<Vec<EdgeId>>) {
        if k == 0 {
            debug_assert!(edges.is_empty());
            return;
        }
        if k == 1 {
            out.push(edges);
            return;
        }
        if k % 2 == 1 {
            // Peel one perfect matching with Hopcroft-Karp, then the rest
            // is even-regular.
            let cols = mg.cols();
            let mut rep: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new(); cols];
            for &id in &edges {
                let e = mg.edge(id);
                if !rep[e.left].iter().any(|&(r, _)| r == e.right as u32) {
                    rep[e.left].push((e.right as u32, id));
                }
            }
            let adj: Vec<Vec<u32>> = rep
                .iter()
                .map(|v| v.iter().map(|&(r, _)| r).collect())
                .collect();
            let m = hopcroft_karp(cols, cols, &adj);
            debug_assert!(m.is_perfect(), "regular multigraph always has a PM");
            let mut matching = Vec::with_capacity(cols);
            let mut taken = vec![false; mg.num_edges()];
            for (l, r) in m.pairs() {
                let &(_, id) = rep[l].iter().find(|&&(rr, _)| rr as usize == r).unwrap();
                matching.push(id);
                taken[id] = true;
            }
            matching.sort_unstable_by_key(|&id| mg.edge(id).left);
            out.push(matching);
            let rest: Vec<EdgeId> = edges.into_iter().filter(|&id| !taken[id]).collect();
            rec(mg, rest, k - 1, out);
        } else {
            let (a, b) = euler_split(mg, &edges);
            rec(mg, a, k / 2, out);
            rec(mg, b, k / 2, out);
        }
    }

    let edges = mg.alive_edges();
    let mut out = Vec::with_capacity(k);
    rec(mg, edges, k, &mut out);
    for matching in &out {
        for &id in matching {
            mg.remove_edge(id);
        }
    }
    debug_assert_eq!(out.len(), k);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::LabeledEdge;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn random_regular(cols: usize, k: usize, seed: u64) -> BipartiteMultigraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = BipartiteMultigraph::new(cols);
        for layer in 0..k {
            let mut rights: Vec<usize> = (0..cols).collect();
            rights.shuffle(&mut rng);
            for (l, &r) in rights.iter().enumerate() {
                g.add_edge(LabeledEdge { left: l, right: r, src_row: layer, dst_row: layer });
            }
        }
        g
    }

    fn assert_valid(g: &BipartiteMultigraph, ms: &[Vec<EdgeId>], cols: usize, k: usize) {
        assert_eq!(ms.len(), k);
        let mut seen = std::collections::HashSet::new();
        for m in ms {
            assert_eq!(m.len(), cols);
            let mut lu = vec![false; cols];
            let mut ru = vec![false; cols];
            for &id in m {
                assert!(seen.insert(id));
                let e = g.edge(id);
                assert!(!lu[e.left] && !ru[e.right]);
                lu[e.left] = true;
                ru[e.right] = true;
            }
        }
    }

    #[test]
    fn euler_split_halves_degrees() {
        let g = random_regular(6, 4, 1);
        let edges = g.alive_edges();
        let (a, b) = euler_split(&g, &edges);
        assert_eq!(a.len(), 12);
        assert_eq!(b.len(), 12);
        for half in [&a, &b] {
            let mut dl = vec![0usize; 6];
            let mut dr = vec![0usize; 6];
            for &id in half.iter() {
                let e = g.edge(id);
                dl[e.left] += 1;
                dr[e.right] += 1;
            }
            assert!(dl.iter().all(|&d| d == 2), "left degrees {dl:?}");
            assert!(dr.iter().all(|&d| d == 2), "right degrees {dr:?}");
        }
    }

    #[test]
    fn decomposes_power_of_two_regular() {
        for (cols, k, seed) in [(4, 2, 0), (5, 4, 1), (8, 8, 2), (3, 16, 3)] {
            let mut g = random_regular(cols, k, seed);
            let before = g.save_alive();
            let ms = decompose_regular_euler(&mut g).unwrap();
            assert_valid(&g, &ms, cols, k);
            assert_eq!(g.num_alive(), 0);
            // The alive snapshot rewinds edge consumption for a re-run.
            g.restore_alive(&before);
            let again = decompose_regular_euler(&mut g).unwrap();
            assert_eq!(ms, again, "Euler decomposition must be deterministic");
        }
    }

    #[test]
    fn decomposes_odd_regular() {
        for (cols, k, seed) in [(4, 1, 0), (5, 3, 1), (6, 5, 2), (4, 7, 3)] {
            let mut g = random_regular(cols, k, seed);
            let ms = decompose_regular_euler(&mut g).unwrap();
            assert_valid(&g, &ms, cols, k);
        }
    }

    #[test]
    fn rejects_irregular() {
        let mut g = BipartiteMultigraph::new(2);
        g.add_edge(LabeledEdge { left: 0, right: 0, src_row: 0, dst_row: 0 });
        assert!(decompose_regular_euler(&mut g).is_err());
    }

    #[test]
    fn agrees_with_slow_decomposition_on_validity() {
        use crate::decompose::decompose_regular;
        for seed in 0..5 {
            // One multigraph, decomposed both ways via snapshot rewind.
            let mut g = random_regular(6, 6, seed);
            let before = g.save_alive();
            let slow = decompose_regular(&mut g).unwrap();
            g.restore_alive(&before);
            let fast = decompose_regular_euler(&mut g).unwrap();
            assert_valid(&g, &slow, 6, 6);
            assert_valid(&g, &fast, 6, 6);
        }
    }
}
