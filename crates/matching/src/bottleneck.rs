//! Bottleneck and min-sum assignment on weighted bipartite graphs.
//!
//! [`bottleneck_assignment`] solves the **maximum cardinality bottleneck
//! bipartite matching** problem of Algorithm 2 (line 20): among all
//! maximum-cardinality matchings of `H(P, [m])`, find one minimizing the
//! largest edge weight `Δ(M, r)`. We binary search over the sorted distinct
//! weights and test feasibility with Hopcroft–Karp — `O(E √V log E)`,
//! within a log factor of the Punnen–Nair bound quoted by the paper, and
//! never the bottleneck of the router in practice.
//!
//! [`min_sum_assignment`] is the classic Hungarian/Jonker-Volgenant
//! potential algorithm (`O(n³)`), used as an *ablation*: assigning
//! matchings to rows by total (rather than worst-case) locality.

use crate::hopcroft_karp::hopcroft_karp;

/// Result of a bottleneck assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BottleneckResult {
    /// `assignment[l] = Some(r)` when left vertex `l` is matched to `r`.
    pub assignment: Vec<Option<usize>>,
    /// Number of matched pairs (always the maximum cardinality).
    pub cardinality: usize,
    /// The minimized maximum weight over matched edges (`0` when nothing is
    /// matched).
    pub bottleneck: u64,
}

/// Solve MCBBM on a dense rectangular weight matrix
/// (`weights[l][r]`, `nl × nr`): find a maximum-cardinality matching
/// minimizing the maximum used weight.
///
/// All pairs are considered edges (the graph `H` of the paper is complete
/// bipartite). For a sparse instance, set missing weights to `u64::MAX` and
/// note that the bottleneck then reports `u64::MAX` if such an edge is
/// forced.
pub fn bottleneck_assignment(weights: &[Vec<u64>]) -> BottleneckResult {
    let nl = weights.len();
    let nr = weights.first().map_or(0, |row| row.len());
    debug_assert!(
        weights.iter().all(|row| row.len() == nr),
        "ragged weight matrix"
    );

    if nl == 0 || nr == 0 {
        return BottleneckResult { assignment: vec![None; nl], cardinality: 0, bottleneck: 0 };
    }

    // Distinct sorted weights for binary search.
    let mut levels: Vec<u64> = weights.iter().flatten().copied().collect();
    levels.sort_unstable();
    levels.dedup();

    let matching_at = |cap: u64| {
        let adj: Vec<Vec<u32>> = weights
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|&(_, &w)| w <= cap)
                    .map(|(r, _)| r as u32)
                    .collect()
            })
            .collect();
        hopcroft_karp(nl, nr, &adj)
    };

    let full = matching_at(u64::MAX);
    let target = full.size();
    if target == 0 {
        return BottleneckResult { assignment: vec![None; nl], cardinality: 0, bottleneck: 0 };
    }

    // Smallest weight level admitting a matching of maximum cardinality.
    // `hi` is feasible by construction: the max level admits every edge,
    // hence a matching of size `target`.
    let mut lo = 0usize; // candidate indices into `levels`
    let mut hi = levels.len() - 1;
    let mut best = matching_at(levels[hi]);
    debug_assert_eq!(best.size(), target);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let m = matching_at(levels[mid]);
        if m.size() == target {
            best = m;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    let bottleneck = best
        .pairs()
        .map(|(l, r)| weights[l][r])
        .max()
        .expect("nonzero cardinality has at least one pair");
    BottleneckResult { assignment: best.pair_left.clone(), cardinality: best.size(), bottleneck }
}

/// Hungarian algorithm (potentials / Jonker–Volgenant form) for the
/// min-*sum* assignment on an `n × m` cost matrix with `n <= m`.
///
/// Returns `(assignment, total)` where `assignment[l] = r`.
///
/// # Panics
/// Panics when `n > m`.
pub fn min_sum_assignment(cost: &[Vec<i64>]) -> (Vec<usize>, i64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let m = cost[0].len();
    assert!(n <= m, "min_sum_assignment requires rows <= cols");
    debug_assert!(cost.iter().all(|row| row.len() == m), "ragged cost matrix");

    const INF: i64 = i64::MAX / 4;
    // 1-based arrays per the classic formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force bottleneck over all permutations (square matrices).
    fn brute_bottleneck(w: &[Vec<u64>]) -> u64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        perms(w.len())
            .into_iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .map(|(l, &r)| w[l][r])
                    .max()
                    .unwrap_or(0)
            })
            .min()
            .expect("some permutation exists")
    }

    /// Brute-force min-sum over all permutations (square matrices).
    fn brute_min_sum(w: &[Vec<i64>]) -> i64 {
        fn rec(l: usize, used: &mut Vec<bool>, w: &[Vec<i64>]) -> i64 {
            if l == w.len() {
                return 0;
            }
            let mut best = i64::MAX;
            for r in 0..w.len() {
                if !used[r] {
                    used[r] = true;
                    best = best.min(w[l][r] + rec(l + 1, used, w));
                    used[r] = false;
                }
            }
            best
        }
        rec(0, &mut vec![false; w.len()], w)
    }

    #[test]
    fn bottleneck_simple() {
        let w = vec![vec![5, 1], vec![1, 5]];
        let r = bottleneck_assignment(&w);
        assert_eq!(r.cardinality, 2);
        assert_eq!(r.bottleneck, 1);
        assert_eq!(r.assignment, vec![Some(1), Some(0)]);
    }

    #[test]
    fn bottleneck_forced_heavy_edge() {
        // Any perfect assignment must use weight >= 7.
        let w = vec![vec![7, 7], vec![1, 2]];
        let r = bottleneck_assignment(&w);
        assert_eq!(r.cardinality, 2);
        assert_eq!(r.bottleneck, 7);
    }

    #[test]
    fn bottleneck_empty() {
        let r = bottleneck_assignment(&[]);
        assert_eq!(r.cardinality, 0);
        assert_eq!(r.bottleneck, 0);
    }

    #[test]
    fn bottleneck_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..100 {
            let n = rng.gen_range(1..6);
            let w: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0..20)).collect())
                .collect();
            let r = bottleneck_assignment(&w);
            assert_eq!(r.cardinality, n);
            assert_eq!(r.bottleneck, brute_bottleneck(&w), "trial {trial}: {w:?}");
            // And the reported assignment actually achieves it.
            let achieved = r
                .assignment
                .iter()
                .enumerate()
                .map(|(l, r)| w[l][r.unwrap()])
                .max()
                .unwrap();
            assert_eq!(achieved, r.bottleneck);
        }
    }

    #[test]
    fn bottleneck_rectangular() {
        let w = vec![vec![9, 2, 9], vec![9, 9, 3]];
        let r = bottleneck_assignment(&w);
        assert_eq!(r.cardinality, 2);
        assert_eq!(r.bottleneck, 3);
    }

    #[test]
    fn hungarian_simple() {
        let c = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let (a, total) = min_sum_assignment(&c);
        assert_eq!(total, 5); // 1 + 2 + 2
        assert_eq!(a, vec![1, 0, 2]);
    }

    #[test]
    fn hungarian_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..100 {
            let n = rng.gen_range(1..6);
            let c: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0..30)).collect())
                .collect();
            let (a, total) = min_sum_assignment(&c);
            // Assignment is a permutation.
            let mut seen = vec![false; n];
            for &r in &a {
                assert!(!seen[r]);
                seen[r] = true;
            }
            assert_eq!(total, brute_min_sum(&c), "trial {trial}: {c:?}");
        }
    }

    #[test]
    fn hungarian_rectangular() {
        let c = vec![vec![10, 1, 10, 10]];
        let (a, total) = min_sum_assignment(&c);
        assert_eq!(a, vec![1]);
        assert_eq!(total, 1);
    }

    #[test]
    fn hungarian_empty() {
        let (a, total) = min_sum_assignment(&[]);
        assert!(a.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn bottleneck_is_leq_minsum_max() {
        // The bottleneck optimum never exceeds the max edge of the min-sum
        // assignment.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(2..7);
            let w: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0..50)).collect())
                .collect();
            let b = bottleneck_assignment(&w);
            let c: Vec<Vec<i64>> = w
                .iter()
                .map(|row| row.iter().map(|&x| x as i64).collect())
                .collect();
            let (a, _) = min_sum_assignment(&c);
            let minsum_max = a.iter().enumerate().map(|(l, &r)| w[l][r]).max().unwrap();
            assert!(b.bottleneck <= minsum_max);
        }
    }
}
