//! Hopcroft–Karp maximum-cardinality bipartite matching, `O(E √V)`.
//!
//! The bipartition is implicit: left vertices `0..nl`, right vertices
//! `0..nr`, adjacency given from the left side only.

/// A bipartite matching: `pair_left[l] = Some(r)` iff `l` is matched to `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Partner of each left vertex.
    pub pair_left: Vec<Option<usize>>,
    /// Partner of each right vertex.
    pub pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// `true` iff every left *and* every right vertex is matched
    /// (requires `nl == nr`).
    pub fn is_perfect(&self) -> bool {
        self.pair_left.len() == self.pair_right.len() && self.pair_left.iter().all(|p| p.is_some())
    }

    /// The matched pairs `(l, r)` in order of `l`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair_left
            .iter()
            .enumerate()
            .filter_map(|(l, p)| p.map(|r| (l, r)))
    }
}

const INF: u32 = u32::MAX;

/// Compute a maximum matching of the bipartite graph with `nl` left
/// vertices, `nr` right vertices and left-side adjacency lists `adj`
/// (entries are right-vertex indices `< nr`).
///
/// # Panics
/// Panics if `adj.len() != nl` or an adjacency entry is out of range
/// (debug builds).
pub fn hopcroft_karp(nl: usize, nr: usize, adj: &[Vec<u32>]) -> Matching {
    assert_eq!(adj.len(), nl, "adjacency must cover all left vertices");
    debug_assert!(adj.iter().flatten().all(|&r| (r as usize) < nr));

    let mut pair_l: Vec<u32> = vec![INF; nl];
    let mut pair_r: Vec<u32> = vec![INF; nr];
    let mut dist: Vec<u32> = vec![INF; nl];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    // BFS phase: layer free left vertices; returns true when an augmenting
    // path exists.
    fn bfs(
        adj: &[Vec<u32>],
        pair_l: &[u32],
        pair_r: &[u32],
        dist: &mut [u32],
        queue: &mut std::collections::VecDeque<usize>,
    ) -> bool {
        queue.clear();
        for (l, &p) in pair_l.iter().enumerate() {
            if p == INF {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                let next = pair_r[r as usize];
                if next == INF {
                    found = true;
                } else if dist[next as usize] == INF {
                    dist[next as usize] = dist[l] + 1;
                    queue.push_back(next as usize);
                }
            }
        }
        found
    }

    // DFS phase: extend augmenting paths along layered edges.
    fn dfs(
        l: usize,
        adj: &[Vec<u32>],
        pair_l: &mut [u32],
        pair_r: &mut [u32],
        dist: &mut [u32],
    ) -> bool {
        for i in 0..adj[l].len() {
            let r = adj[l][i] as usize;
            let next = pair_r[r];
            if next == INF
                || (dist[next as usize] == dist[l] + 1
                    && dfs(next as usize, adj, pair_l, pair_r, dist))
            {
                pair_l[l] = r as u32;
                pair_r[r] = l as u32;
                return true;
            }
        }
        dist[l] = INF;
        false
    }

    while bfs(adj, &pair_l, &pair_r, &mut dist, &mut queue) {
        for l in 0..nl {
            if pair_l[l] == INF {
                dfs(l, adj, &mut pair_l, &mut pair_r, &mut dist);
            }
        }
    }

    Matching {
        pair_left: pair_l
            .into_iter()
            .map(|p| (p != INF).then_some(p as usize))
            .collect(),
        pair_right: pair_r
            .into_iter()
            .map(|p| (p != INF).then_some(p as usize))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exponential-time exact maximum matching for cross-checking.
    fn brute_force_max_matching(nl: usize, nr: usize, adj: &[Vec<u32>]) -> usize {
        fn rec(l: usize, used: &mut [bool], adj: &[Vec<u32>]) -> usize {
            if l == adj.len() {
                return 0;
            }
            let mut best = rec(l + 1, used, adj); // skip l
            for &r in &adj[l] {
                if !used[r as usize] {
                    used[r as usize] = true;
                    best = best.max(1 + rec(l + 1, used, adj));
                    used[r as usize] = false;
                }
            }
            best
        }
        let _ = nl;
        rec(0, &mut vec![false; nr], adj)
    }

    fn check_valid(nl: usize, nr: usize, adj: &[Vec<u32>], m: &Matching) {
        assert_eq!(m.pair_left.len(), nl);
        assert_eq!(m.pair_right.len(), nr);
        for (l, r) in m.pairs() {
            assert!(adj[l].contains(&(r as u32)), "matched pair not an edge");
            assert_eq!(m.pair_right[r], Some(l), "pair arrays inconsistent");
        }
    }

    #[test]
    fn simple_perfect_matching() {
        let adj = vec![vec![0, 1], vec![0], vec![2]];
        let m = hopcroft_karp(3, 3, &adj);
        assert_eq!(m.size(), 3);
        assert!(m.is_perfect());
        check_valid(3, 3, &adj, &m);
    }

    #[test]
    fn no_edges() {
        let m = hopcroft_karp(3, 3, &[vec![], vec![], vec![]]);
        assert_eq!(m.size(), 0);
        assert!(!m.is_perfect());
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(0, 0, &[]);
        assert_eq!(m.size(), 0);
        assert!(m.is_perfect()); // vacuously
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy l0->r0 blocks l1 unless augmented.
        let adj = vec![vec![0], vec![0, 1]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn deficient_graph() {
        // Three left vertices all pointing at one right vertex.
        let adj = vec![vec![0], vec![0], vec![0]];
        let m = hopcroft_karp(3, 1, &adj);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn rectangular_sides() {
        let adj = vec![vec![0, 1, 2, 3, 4]];
        let m = hopcroft_karp(1, 5, &adj);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(12345);
        for trial in 0..200 {
            let nl = rng.gen_range(0..7);
            let nr = rng.gen_range(0..7);
            let p = rng.gen_range(0.1..0.9);
            let adj: Vec<Vec<u32>> = (0..nl)
                .map(|_| (0..nr as u32).filter(|_| rng.gen_bool(p)).collect())
                .collect();
            let m = hopcroft_karp(nl, nr, &adj);
            check_valid(nl, nr, &adj, &m);
            assert_eq!(
                m.size(),
                brute_force_max_matching(nl, nr, &adj),
                "trial {trial}: nl={nl} nr={nr} adj={adj:?}"
            );
        }
    }

    #[test]
    fn large_regular_graph_is_perfect() {
        // A d-regular bipartite graph always has a perfect matching.
        let n = 200;
        let d = 3;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|l| (0..d).map(|k| ((l + k * 37) % n) as u32).collect())
            .collect();
        let m = hopcroft_karp(n, n, &adj);
        assert!(m.is_perfect());
    }
}
