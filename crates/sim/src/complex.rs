//! A minimal complex number type (we implement our own rather than pull a
//! numerics crate; the simulator needs only arithmetic, conjugation and
//! `e^{iθ}`).

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex64 {
        Complex64 { re, im }
    }

    /// Zero.
    pub const ZERO: Complex64 = Complex64::new(0.0, 0.0);
    /// One.
    pub const ONE: Complex64 = Complex64::new(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Complex64 = Complex64::new(0.0, 1.0);

    /// `e^{iθ}`.
    #[inline]
    pub fn expi(theta: f64) -> Complex64 {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex64 {
        Complex64::new(self.re, -self.im)
    }

    /// `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Complex64 {
        Complex64::new(self.re * s, self.im * s)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert!(close(a + b, Complex64::new(4.0, 1.0)));
        assert!(close(a - b, Complex64::new(-2.0, 3.0)));
        assert!(close(a * b, Complex64::new(5.0, 5.0)));
        assert!(close(-a, Complex64::new(-1.0, -2.0)));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn euler_identity() {
        assert!(close(
            Complex64::expi(std::f64::consts::PI),
            -Complex64::ONE
        ));
        assert!(close(Complex64::expi(0.0), Complex64::ONE));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!(close(z * z.conj(), Complex64::new(25.0, 0.0)));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::ONE;
        z += Complex64::I;
        z *= Complex64::I;
        assert!(close(z, Complex64::new(-1.0, 1.0)));
    }
}
