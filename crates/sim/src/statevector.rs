//! Full statevector simulation of the gate set.

use crate::complex::Complex64;
use crate::state::State;
use qroute_circuit::{Circuit, Gate};

/// Apply a single 2×2 unitary `[[u00, u01], [u10, u11]]` to qubit `q`.
fn apply_1q(state: &mut State, q: usize, u: [[Complex64; 2]; 2]) {
    let mask = 1usize << q;
    let amps = state.amplitudes_mut();
    let dim = amps.len();
    let mut b0 = 0usize;
    while b0 < dim {
        if b0 & mask == 0 {
            let b1 = b0 | mask;
            let a0 = amps[b0];
            let a1 = amps[b1];
            amps[b0] = u[0][0] * a0 + u[0][1] * a1;
            amps[b1] = u[1][0] * a0 + u[1][1] * a1;
        }
        b0 += 1;
    }
}

/// Apply one gate in place.
pub fn apply_gate(state: &mut State, gate: &Gate) {
    use std::f64::consts::FRAC_1_SQRT_2;
    let o = Complex64::ZERO;
    let l = Complex64::ONE;
    match *gate {
        Gate::H(q) => {
            let h = Complex64::new(FRAC_1_SQRT_2, 0.0);
            apply_1q(state, q, [[h, h], [h, -h]]);
        }
        Gate::X(q) => apply_1q(state, q, [[o, l], [l, o]]),
        Gate::Y(q) => apply_1q(state, q, [[o, -Complex64::I], [Complex64::I, o]]),
        Gate::Z(q) => apply_1q(state, q, [[l, o], [o, -l]]),
        Gate::S(q) => apply_1q(state, q, [[l, o], [o, Complex64::I]]),
        Gate::Sdg(q) => apply_1q(state, q, [[l, o], [o, -Complex64::I]]),
        Gate::T(q) => apply_1q(
            state,
            q,
            [[l, o], [o, Complex64::expi(std::f64::consts::FRAC_PI_4)]],
        ),
        Gate::Tdg(q) => apply_1q(
            state,
            q,
            [[l, o], [o, Complex64::expi(-std::f64::consts::FRAC_PI_4)]],
        ),
        Gate::Rx(q, a) => {
            let c = Complex64::new((a / 2.0).cos(), 0.0);
            let s = Complex64::new(0.0, -(a / 2.0).sin());
            apply_1q(state, q, [[c, s], [s, c]]);
        }
        Gate::Ry(q, a) => {
            let c = Complex64::new((a / 2.0).cos(), 0.0);
            let s = Complex64::new((a / 2.0).sin(), 0.0);
            apply_1q(state, q, [[c, -s], [s, c]]);
        }
        Gate::Rz(q, a) => {
            apply_1q(
                state,
                q,
                [
                    [Complex64::expi(-a / 2.0), o],
                    [o, Complex64::expi(a / 2.0)],
                ],
            );
        }
        Gate::Cx(c, t) => {
            let (cm, tm) = (1usize << c, 1usize << t);
            let amps = state.amplitudes_mut();
            for b in 0..amps.len() {
                if b & cm != 0 && b & tm == 0 {
                    amps.swap(b, b | tm);
                }
            }
        }
        Gate::Cz(a, b) => {
            let m = (1usize << a) | (1usize << b);
            let amps = state.amplitudes_mut();
            for (idx, amp) in amps.iter_mut().enumerate() {
                if idx & m == m {
                    *amp = -*amp;
                }
            }
        }
        Gate::Swap(a, b) => {
            let (am, bm) = (1usize << a, 1usize << b);
            let amps = state.amplitudes_mut();
            for idx in 0..amps.len() {
                if idx & am != 0 && idx & bm == 0 {
                    amps.swap(idx, (idx ^ am) | bm);
                }
            }
        }
    }
}

/// Run a whole circuit on an input state (the input is consumed and the
/// output returned).
pub fn run(circuit: &Circuit, mut state: State) -> State {
    assert_eq!(
        circuit.num_qubits(),
        state.num_qubits(),
        "circuit and state qubit counts differ"
    );
    for g in circuit.gates() {
        apply_gate(&mut state, g);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_circuit::builders;

    fn run_on_zero(c: &Circuit) -> State {
        run(c, State::zero(c.num_qubits()))
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(2);
        c.push(Gate::X(1));
        assert_eq!(run_on_zero(&c).fidelity(&State::basis(2, 0b10)), 1.0);
    }

    #[test]
    fn h_squared_is_identity() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0)).push(Gate::H(0));
        let out = run(&c, State::random(1, 5));
        assert!(out.fidelity(&State::random(1, 5)) > 1.0 - 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).push(Gate::Cx(0, 1));
        let out = run_on_zero(&c);
        let amps = out.amplitudes();
        assert!((amps[0b00].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((amps[0b11].norm_sqr() - 0.5).abs() < 1e-12);
        assert!(amps[0b01].norm() < 1e-12);
        assert!(amps[0b10].norm() < 1e-12);
    }

    #[test]
    fn swap_gate_exchanges_qubits() {
        let mut prep = Circuit::new(2);
        prep.push(Gate::X(0));
        let mut c = prep.clone();
        c.push(Gate::Swap(0, 1));
        let out = run_on_zero(&c);
        assert!(out.fidelity(&State::basis(2, 0b10)) > 1.0 - 1e-12);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut a = Circuit::new(3);
        a.push(Gate::Swap(0, 2));
        let b = a.decompose_swaps();
        for seed in 0..4 {
            let input = State::random(3, seed);
            let oa = run(&a, input.clone());
            let ob = run(&b, input);
            assert!(oa.fidelity(&ob) > 1.0 - 1e-10, "seed {seed}");
        }
    }

    #[test]
    fn cz_is_symmetric_and_h_conjugate_of_cx() {
        // CZ = (I ⊗ H) CX (I ⊗ H).
        let mut a = Circuit::new(2);
        a.push(Gate::Cz(0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::H(1)).push(Gate::Cx(0, 1)).push(Gate::H(1));
        for seed in 0..4 {
            let input = State::random(2, seed);
            let oa = run(&a, input.clone());
            let ob = run(&b, input);
            assert!(oa.fidelity(&ob) > 1.0 - 1e-10);
        }
        // Symmetry.
        let mut c = Circuit::new(2);
        c.push(Gate::Cz(1, 0));
        for seed in 0..4 {
            let input = State::random(2, seed);
            assert!(run(&a, input.clone()).fidelity(&run(&c, input)) > 1.0 - 1e-10);
        }
    }

    #[test]
    fn s_is_t_squared() {
        let mut a = Circuit::new(1);
        a.push(Gate::S(0));
        let mut b = Circuit::new(1);
        b.push(Gate::T(0)).push(Gate::T(0));
        for seed in 0..3 {
            let input = State::random(1, seed);
            assert!(run(&a, input.clone()).fidelity(&run(&b, input)) > 1.0 - 1e-12);
        }
    }

    #[test]
    fn inverses_cancel() {
        let c = builders::random_two_qubit_circuit(4, 20, 9);
        let mut full = c.clone();
        full.append(&c.inverse());
        let input = State::random(4, 11);
        let out = run(&full, input.clone());
        assert!(out.fidelity(&input) > 1.0 - 1e-9);
    }

    #[test]
    fn rotations_compose_additively() {
        let mut a = Circuit::new(1);
        a.push(Gate::Rz(0, 0.3)).push(Gate::Rz(0, 0.4));
        let mut b = Circuit::new(1);
        b.push(Gate::Rz(0, 0.7));
        let input = State::random(1, 2);
        assert!(run(&a, input.clone()).fidelity(&run(&b, input)) > 1.0 - 1e-12);
    }

    #[test]
    fn ghz_state_amplitudes() {
        let out = run_on_zero(&builders::ghz(3));
        let amps = out.amplitudes();
        assert!((amps[0].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((amps[7].norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qft_matches_dft_on_basis_states() {
        // QFT|k⟩ = (1/√N) Σ_j e^{2πi jk / N} |j⟩ up to global phase; our
        // builder uses the little-endian convention with a final reversal,
        // so the match is exact in magnitude and relative phase.
        let n = 3;
        let dim = 1usize << n;
        let c = builders::qft(n);
        for k in 0..dim {
            let out = run(&c, State::basis(n, k));
            let mut expected = State::zero(n);
            {
                let amps = expected.amplitudes_mut();
                let scale = 1.0 / (dim as f64).sqrt();
                for (j, a) in amps.iter_mut().enumerate() {
                    let angle = 2.0 * std::f64::consts::PI * (j as f64) * (k as f64) / dim as f64;
                    *a = Complex64::expi(angle).scale(scale);
                }
            }
            let f = out.fidelity(&expected);
            assert!(f > 1.0 - 1e-9, "k={k}: fidelity {f}");
        }
    }

    #[test]
    fn trotter_preserves_norm() {
        let c = builders::trotter_grid_step(2, 3, 0.37, 2);
        let out = run(&c, State::random(6, 4));
        assert!((out.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
