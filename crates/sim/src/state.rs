//! Statevectors.
//!
//! Convention: little-endian — qubit `q` is bit `q` of the basis index.

use crate::complex::Complex64;

/// A pure state on `n` qubits: `2^n` amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    n: usize,
    amps: Vec<Complex64>,
}

impl State {
    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    /// Panics when `index >= 2^n` or `n` exceeds the simulable range.
    pub fn basis(n: usize, index: usize) -> State {
        assert!(n <= 26, "statevector simulator limited to 26 qubits");
        let dim = 1usize << n;
        assert!(index < dim, "basis index out of range");
        let mut amps = vec![Complex64::ZERO; dim];
        amps[index] = Complex64::ONE;
        State { n, amps }
    }

    /// The all-zeros state `|0…0⟩`.
    pub fn zero(n: usize) -> State {
        State::basis(n, 0)
    }

    /// A deterministic pseudo-random normalized state (for equivalence
    /// testing). Uses a simple splitmix64 stream — no external RNG needed.
    pub fn random(n: usize, seed: u64) -> State {
        assert!(n <= 26, "statevector simulator limited to 26 qubits");
        let dim = 1usize << n;
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut amps = Vec::with_capacity(dim);
        for _ in 0..dim {
            // Map two u64 draws to (-1, 1) each.
            let re = (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
            let im = (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
            amps.push(Complex64::new(re, im));
        }
        let mut st = State { n, amps };
        st.normalize();
        st
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Amplitude slice (length `2^n`).
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable amplitude slice.
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// `Σ|a|²`.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescale to unit norm.
    pub fn normalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 0.0, "cannot normalize the zero vector");
        let inv = 1.0 / norm;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &State) -> Complex64 {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        let mut acc = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Fidelity `|⟨self|other⟩|²` — global-phase-insensitive overlap.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Probability of measuring qubit `q` as 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n);
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| b & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Relabel qubits: qubit `q` of `self` becomes qubit `map[q]` of the
    /// result (`map` must be a permutation of `0..n`).
    pub fn relabel_qubits(&self, map: &[usize]) -> State {
        assert_eq!(map.len(), self.n, "map must cover all qubits");
        let dim = self.amps.len();
        let mut out = vec![Complex64::ZERO; dim];
        for (b, &amp) in self.amps.iter().enumerate() {
            let mut bp = 0usize;
            for (q, &target) in map.iter().enumerate() {
                if b & (1 << q) != 0 {
                    bp |= 1 << target;
                }
            }
            out[bp] = amp;
        }
        State { n: self.n, amps: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_states_are_orthonormal() {
        let a = State::basis(2, 1);
        let b = State::basis(2, 2);
        assert_eq!(a.norm_sqr(), 1.0);
        assert_eq!(a.fidelity(&b), 0.0);
        assert_eq!(a.fidelity(&a), 1.0);
    }

    #[test]
    fn random_state_is_normalized_and_seeded() {
        let a = State::random(5, 7);
        let b = State::random(5, 7);
        let c = State::random(5, 8);
        assert!((a.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(a, b);
        assert!(a.fidelity(&c) < 0.99);
    }

    #[test]
    fn prob_one_on_basis() {
        let s = State::basis(3, 0b101);
        assert_eq!(s.prob_one(0), 1.0);
        assert_eq!(s.prob_one(1), 0.0);
        assert_eq!(s.prob_one(2), 1.0);
    }

    #[test]
    fn relabel_moves_bits() {
        // |01⟩ (qubit 0 = 1) relabeled by swap becomes |10⟩ (qubit 1 = 1).
        let s = State::basis(2, 0b01);
        let r = s.relabel_qubits(&[1, 0]);
        assert_eq!(r, State::basis(2, 0b10));
    }

    #[test]
    fn relabel_identity_is_noop() {
        let s = State::random(4, 3);
        assert_eq!(s.relabel_qubits(&[0, 1, 2, 3]), s);
    }

    #[test]
    fn relabel_composition() {
        let s = State::random(3, 1);
        let p = [2usize, 0, 1];
        let q = [1usize, 2, 0]; // inverse of p
        let r = s.relabel_qubits(&p).relabel_qubits(&q);
        assert!(s.fidelity(&r) > 1.0 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_index_checked() {
        let _ = State::basis(2, 4);
    }
}
