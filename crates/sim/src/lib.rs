//! # qroute-sim
//!
//! Simulators used to *verify* the routing/transpilation pipeline:
//!
//! * [`complex`] — a minimal `Complex64` (no external numerics crates);
//! * [`state`] — statevectors with inner products, fidelity and qubit
//!   relabeling;
//! * [`statevector`] — a full statevector simulator for the
//!   [`qroute_circuit::Gate`] set (practical to ~20 qubits);
//! * [`permsim`] — an `O(size)` classical tracker for SWAP-only circuits;
//! * [`equiv`] — global-phase-insensitive circuit equivalence checks,
//!   including the layout-aware check for transpiled circuits (physical
//!   circuit ≡ logical circuit up to initial and final qubit maps).
//!
//! Verification is the point of this crate: all equivalence helpers are
//! fidelity-based, so the identities hold regardless of the global phases
//! introduced by gate decompositions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod equiv;
pub mod permsim;
pub mod state;
pub mod statevector;

pub use complex::Complex64;
pub use state::State;
pub use statevector::run;
