//! Global-phase-insensitive circuit equivalence checks.
//!
//! Two families:
//!
//! * **Full** checks ([`circuits_equivalent`], [`transpiled_equivalent`])
//!   simulate every wire of both circuits — exact but `O(2^wires)`, so
//!   they stop being practical once the *grid* is large, even when the
//!   logical circuit is small.
//! * **Embedded** checks ([`unembed_physical`],
//!   [`transpiled_equivalent_embedded`], [`transpiled_pair_equivalent`])
//!   exploit that a transpiled circuit touches dummy wires only through
//!   `SWAP`s, and that a `SWAP` is exactly a wire relabeling: the physical
//!   circuit is *unembedded* into an equivalent circuit over only the
//!   logical qubits, and simulation costs `O(2^n_logical)` regardless of
//!   grid size. A 10-qubit circuit transpiled onto a 64-qubit grid is
//!   statevector-verified in the 10-qubit dimension.

use crate::state::State;
use crate::statevector::run;
use qroute_circuit::{Circuit, Gate};

/// Number of random probe states used by the equivalence checks. Two
/// distinct `n`-qubit unitaries agree on `k` Haar-ish random states with
/// probability vanishing in `k`; 4 probes at `1e-9` tolerance is far more
/// discriminating than needed for gate-level bugs.
pub const DEFAULT_PROBES: usize = 4;

/// Largest logical qubit count the statevector-based equivalence entry
/// points are sized for. `2^12` amplitudes × [`DEFAULT_PROBES`] probes
/// keeps every check well under a second even in debug builds; callers
/// (the bench verification harness, the transpile proptests) skip the
/// statevector tier above this and fall back to structural checks.
pub const EQUIV_QUBIT_CUTOFF: usize = 12;

/// `true` iff the two circuits implement the same unitary up to global
/// phase, tested on [`DEFAULT_PROBES`] random probe states.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits(), "qubit count mismatch");
    (0..DEFAULT_PROBES as u64).all(|seed| {
        let probe = State::random(a.num_qubits(), 0xC0FFEE ^ seed);
        run(a, probe.clone()).fidelity(&run(b, probe)) > 1.0 - 1e-9
    })
}

/// Layout-aware equivalence for transpiled circuits.
///
/// `initial[l]` / `final_[l]` give the physical wire holding logical qubit
/// `l` before / after the physical circuit. The check asserts, on random
/// probe states `|ψ⟩` over logical qubits:
///
/// ```text
/// physical( embed_initial(|ψ⟩) )  ==  embed_final( logical(|ψ⟩) )
/// ```
///
/// where `embed_map` relabels logical qubit `l` to physical wire `map[l]`.
pub fn transpiled_equivalent(
    logical: &Circuit,
    physical: &Circuit,
    initial: &[usize],
    final_: &[usize],
) -> bool {
    assert_eq!(
        logical.num_qubits(),
        physical.num_qubits(),
        "1:1 mapping required"
    );
    assert_eq!(initial.len(), logical.num_qubits());
    assert_eq!(final_.len(), logical.num_qubits());
    (0..DEFAULT_PROBES as u64).all(|seed| {
        let probe = State::random(logical.num_qubits(), 0xBEEF ^ seed);
        let lhs = run(physical, probe.relabel_qubits(initial));
        let rhs = run(logical, probe).relabel_qubits(final_);
        lhs.fidelity(&rhs) > 1.0 - 1e-9
    })
}

/// Why a physical circuit failed to unembed onto its logical qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnembedError {
    /// A non-`SWAP` gate acted on a wire holding no logical qubit.
    GateOnDummyWire {
        /// Index into the physical gate list.
        index: usize,
        /// The offending wire.
        wire: usize,
    },
}

impl std::fmt::Display for UnembedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnembedError::GateOnDummyWire { index, wire } => write!(
                f,
                "physical gate {index} acts on dummy wire {wire} and is not a SWAP"
            ),
        }
    }
}

impl std::error::Error for UnembedError {}

/// Unembed a transpiled physical circuit back onto its logical qubits.
///
/// `initial[l]` gives the physical wire holding logical qubit `l` at the
/// start (entries `l ≥ n_logical` are dummies and ignored). Every `SWAP`
/// in the physical circuit — routing swaps *and* relabeled logical swaps
/// alike — is applied as a wire relabeling (the exact unitary a `SWAP`
/// is), and every other gate is rewritten onto the logical qubit its wire
/// currently holds. Returns:
///
/// * the unembedded circuit over `n_logical` qubits (contains no `SWAP`s
///   and no dummy wires), and
/// * `pos` with `pos[l]` = the physical wire actually holding logical
///   qubit `l` after the circuit.
///
/// The unembedded circuit satisfies, for every logical state `|ψ⟩` (with
/// dummies in any state):
///
/// ```text
/// physical( embed_initial(|ψ⟩) )  ==  embed_pos( unembedded(|ψ⟩) )
/// ```
///
/// so checks against the logical circuit can run in the `n_logical`
/// dimension no matter how large the grid is.
///
/// Errors when a non-`SWAP` gate touches a wire that holds no logical
/// qubit — a transpiler may move dummies around but must never compute on
/// them.
pub fn unembed_physical(
    physical: &Circuit,
    n_logical: usize,
    initial: &[usize],
) -> Result<(Circuit, Vec<usize>), UnembedError> {
    let n_phys = physical.num_qubits();
    assert!(n_logical <= n_phys, "more logical qubits than wires");
    assert!(
        initial.len() >= n_logical,
        "initial layout shorter than the logical register"
    );
    // slot_of[w] = Some(l) when wire w currently holds logical qubit l.
    let mut slot_of: Vec<Option<usize>> = vec![None; n_phys];
    for (l, &w) in initial.iter().take(n_logical).enumerate() {
        assert!(w < n_phys, "initial layout wire {w} out of range");
        assert!(
            slot_of[w].is_none(),
            "initial layout wire {w} claimed twice"
        );
        slot_of[w] = Some(l);
    }
    let mut small = Circuit::new(n_logical);
    for (index, g) in physical.gates().iter().enumerate() {
        if let Gate::Swap(a, b) = *g {
            slot_of.swap(a, b);
            continue;
        }
        let (a, b) = g.qubits();
        for wire in std::iter::once(a).chain(b) {
            if slot_of[wire].is_none() {
                return Err(UnembedError::GateOnDummyWire { index, wire });
            }
        }
        small.push(g.relabel(|w| slot_of[w].expect("dummy wires rejected above")));
    }
    let mut pos = vec![usize::MAX; n_logical];
    for (w, &s) in slot_of.iter().enumerate() {
        if let Some(l) = s {
            pos[l] = w;
        }
    }
    Ok((small, pos))
}

/// Layout-aware equivalence for transpiled circuits, computed in the
/// *logical* dimension (see [`unembed_physical`]) — works for any grid
/// size as long as `logical.num_qubits() ≤` [`EQUIV_QUBIT_CUTOFF`]-ish.
///
/// `initial` / `final_` are the full-length layouts the transpiler
/// reports (`layout[l]` = physical wire of logical `l`; dummy entries
/// beyond `logical.num_qubits()` are ignored). The check asserts, on
/// random probe states over the logical qubits:
///
/// ```text
/// physical( embed_initial(|ψ⟩) )  ==  embed_final( logical(|ψ⟩) )
/// ```
///
/// Returns `false` when the physical circuit computes on dummy wires,
/// when the reported final layout is inconsistent with where the swaps
/// actually put the logical qubits, or when the state-level check fails.
pub fn transpiled_equivalent_embedded(
    logical: &Circuit,
    physical: &Circuit,
    initial: &[usize],
    final_: &[usize],
) -> bool {
    let n = logical.num_qubits();
    assert!(
        final_.len() >= n,
        "final layout shorter than logical register"
    );
    let Ok((small, pos)) = unembed_physical(physical, n, initial) else {
        return false;
    };
    // σ[l] = the logical slot whose *reported* final wire is where slot l
    // actually ended up. Equivalence needs σ to be a bijection: every
    // tracked position must be claimed by exactly one reported position.
    let Some(sigma) = slot_alignment(&pos, &final_[..n], physical.num_qubits()) else {
        return false;
    };
    (0..DEFAULT_PROBES as u64).all(|seed| {
        let probe = State::random(n, 0xD1FF ^ seed);
        let lhs = run(&small, probe.clone()).relabel_qubits(&sigma);
        let rhs = run(logical, probe);
        lhs.fidelity(&rhs) > 1.0 - 1e-9
    })
}

/// Pairwise layout-aware equivalence of two transpiled circuits over the
/// same logical register: both realize the *same* logical map modulo
/// their own initial/final layouts. Computed in the logical dimension, so
/// two routers' outputs on a large grid compare cheaply. `n_logical` is
/// the shared logical register width.
pub fn transpiled_pair_equivalent(
    n_logical: usize,
    a: (&Circuit, &[usize], &[usize]),
    b: (&Circuit, &[usize], &[usize]),
) -> bool {
    let unembed_aligned = |(phys, init, fin): (&Circuit, &[usize], &[usize])| {
        let (small, pos) = unembed_physical(phys, n_logical, init).ok()?;
        let sigma = slot_alignment(&pos, &fin[..n_logical], phys.num_qubits())?;
        Some((small, sigma))
    };
    let Some((sa, ga)) = unembed_aligned(a) else {
        return false;
    };
    let Some((sb, gb)) = unembed_aligned(b) else {
        return false;
    };
    (0..DEFAULT_PROBES as u64).all(|seed| {
        let probe = State::random(n_logical, 0xFACE ^ seed);
        let lhs = run(&sa, probe.clone()).relabel_qubits(&ga);
        let rhs = run(&sb, probe).relabel_qubits(&gb);
        lhs.fidelity(&rhs) > 1.0 - 1e-9
    })
}

/// `σ[l]` = slot whose reported wire (`reported[σ[l]]`) equals the
/// tracked wire `pos[l]`; `None` unless that relation is a bijection on
/// slots. For a correct transpile of a swap-free logical circuit this is
/// the identity; relabeled *logical* `SWAP`s show up here as the net
/// permutation they implement.
fn slot_alignment(pos: &[usize], reported: &[usize], n_phys: usize) -> Option<Vec<usize>> {
    let mut slot_at_wire = vec![usize::MAX; n_phys];
    for (l, &w) in reported.iter().enumerate() {
        if w >= n_phys || slot_at_wire[w] != usize::MAX {
            return None;
        }
        slot_at_wire[w] = l;
    }
    pos.iter()
        .map(|&w| match slot_at_wire[w] {
            usize::MAX => None,
            l => Some(l),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_circuit::{builders, Gate};

    #[test]
    fn circuit_equals_itself() {
        let c = builders::random_two_qubit_circuit(4, 15, 3);
        assert!(circuits_equivalent(&c, &c));
    }

    #[test]
    fn swap_decomposition_is_equivalent() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0))
            .push(Gate::Swap(0, 2))
            .push(Gate::Cx(0, 1));
        assert!(circuits_equivalent(&c, &c.decompose_swaps()));
    }

    #[test]
    fn different_circuits_are_detected() {
        let mut a = Circuit::new(2);
        a.push(Gate::Cx(0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::Cx(1, 0));
        assert!(!circuits_equivalent(&a, &b));
    }

    #[test]
    fn global_phase_is_ignored() {
        // Rz(2π) = -I: differs from identity by a global phase only.
        let mut a = Circuit::new(1);
        a.push(Gate::Rz(0, 2.0 * std::f64::consts::PI));
        let b = Circuit::new(1);
        assert!(circuits_equivalent(&a, &b));
    }

    #[test]
    fn transpiled_identity_layouts() {
        let c = builders::ghz(3);
        let id = [0usize, 1, 2];
        assert!(transpiled_equivalent(&c, &c, &id, &id));
    }

    #[test]
    fn transpiled_with_final_swap() {
        // Physical circuit = logical circuit followed by SWAP(0,1): the
        // final layout absorbs the swap.
        let logical = builders::ghz(3);
        let mut physical = logical.clone();
        physical.push(Gate::Swap(0, 1));
        let initial = [0usize, 1, 2];
        let final_ = [1usize, 0, 2];
        assert!(transpiled_equivalent(
            &logical, &physical, &initial, &final_
        ));
        // Wrong final layout fails.
        assert!(!transpiled_equivalent(
            &logical, &physical, &initial, &initial
        ));
    }

    #[test]
    fn transpiled_with_initial_relabel() {
        // Physical runs the same gates on relabeled wires.
        let logical = builders::random_two_qubit_circuit(3, 8, 5);
        let layout = [2usize, 0, 1]; // logical l -> physical layout[l]
        let physical = logical.relabeled(3, |q| layout[q]);
        assert!(transpiled_equivalent(&logical, &physical, &layout, &layout));
    }

    #[test]
    fn unembed_strips_swaps_and_tracks_positions() {
        // 3 logical qubits on 5 wires: a routing swap moves logical 0
        // from wire 1 to wire 2 (a dummy), then a CX uses it there.
        let mut physical = Circuit::new(5);
        physical
            .push(Gate::H(1))
            .push(Gate::Swap(1, 2))
            .push(Gate::Cx(2, 3));
        let initial = [1usize, 3, 4, 0, 2];
        let (small, pos) = unembed_physical(&physical, 3, &initial).unwrap();
        assert_eq!(small.num_qubits(), 3);
        assert_eq!(small.gates(), &[Gate::H(0), Gate::Cx(0, 1)]);
        assert_eq!(pos, vec![2, 3, 4]);
    }

    #[test]
    fn unembed_rejects_computation_on_dummies() {
        let mut physical = Circuit::new(4);
        physical.push(Gate::H(3)); // wire 3 holds no logical qubit
        let err = unembed_physical(&physical, 2, &[0, 1, 2, 3]).unwrap_err();
        assert_eq!(err, UnembedError::GateOnDummyWire { index: 0, wire: 3 });
        // ...but SWAPs involving dummies are fine.
        let mut ok = Circuit::new(4);
        ok.push(Gate::Swap(0, 3)).push(Gate::X(3));
        let (small, pos) = unembed_physical(&ok, 2, &[0, 1, 2, 3]).unwrap();
        assert_eq!(small.gates(), &[Gate::X(0)]);
        assert_eq!(pos, vec![3, 1]);
    }

    #[test]
    fn embedded_check_agrees_with_full_check_when_one_to_one() {
        let logical = builders::random_two_qubit_circuit(4, 12, 8);
        let mut physical = logical.clone();
        physical.push(Gate::Swap(1, 3));
        let initial = [0usize, 1, 2, 3];
        let final_ = [0usize, 3, 2, 1];
        assert!(transpiled_equivalent(
            &logical, &physical, &initial, &final_
        ));
        assert!(transpiled_equivalent_embedded(
            &logical, &physical, &initial, &final_
        ));
        // Both reject the wrong final layout.
        assert!(!transpiled_equivalent(
            &logical, &physical, &initial, &initial
        ));
        assert!(!transpiled_equivalent_embedded(
            &logical, &physical, &initial, &initial
        ));
    }

    #[test]
    fn embedded_check_handles_logical_swap_gates() {
        // The logical circuit itself ends in a SWAP (as QFT does). The
        // transpiler executes it as a gate without touching the layout,
        // so tracked positions differ from the reported final layout by
        // exactly that swap — the alignment permutation absorbs it.
        let logical = builders::qft(3);
        let id = [0usize, 1, 2];
        assert!(transpiled_equivalent_embedded(&logical, &logical, &id, &id));
    }

    #[test]
    fn embedded_check_on_wide_grid_small_register() {
        // 3 logical qubits scattered over 9 wires; the physical circuit
        // is the logical one relabeled through the embedding.
        let logical = builders::ghz(3);
        let initial = [4usize, 1, 7, 0, 2, 3, 5, 6, 8];
        let physical = logical.relabeled(9, |q| initial[q]);
        let final_ = initial;
        assert!(transpiled_equivalent_embedded(
            &logical, &physical, &initial, &final_
        ));
        // A physical circuit missing its last gate is caught.
        let mut truncated = Circuit::new(9);
        for g in physical.gates().iter().take(physical.size() - 1) {
            truncated.push(*g);
        }
        assert!(!transpiled_equivalent_embedded(
            &logical, &truncated, &initial, &final_
        ));
    }

    #[test]
    fn pair_equivalence_modulo_layouts() {
        let logical = builders::random_two_qubit_circuit(3, 10, 2);
        let ia = [0usize, 1, 2, 3];
        // Version A: identity embedding on 4 wires.
        let pa = logical.relabeled(4, |q| q);
        // Version B: same computation, then a drift swap into the dummy.
        let mut pb = logical.relabeled(4, |q| q);
        pb.push(Gate::Swap(2, 3));
        let fa = [0usize, 1, 2, 3];
        let fb = [0usize, 1, 3, 2];
        assert!(transpiled_pair_equivalent(
            3,
            (&pa, &ia, &fa),
            (&pb, &ia, &fb)
        ));
        // Lying about B's final layout breaks the pair.
        assert!(!transpiled_pair_equivalent(
            3,
            (&pa, &ia, &fa),
            (&pb, &ia, &fa)
        ));
    }
}
