//! Global-phase-insensitive circuit equivalence checks.

use crate::state::State;
use crate::statevector::run;
use qroute_circuit::Circuit;

/// Number of random probe states used by the equivalence checks. Two
/// distinct `n`-qubit unitaries agree on `k` Haar-ish random states with
/// probability vanishing in `k`; 4 probes at `1e-9` tolerance is far more
/// discriminating than needed for gate-level bugs.
pub const DEFAULT_PROBES: usize = 4;

/// `true` iff the two circuits implement the same unitary up to global
/// phase, tested on [`DEFAULT_PROBES`] random probe states.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits(), "qubit count mismatch");
    (0..DEFAULT_PROBES as u64).all(|seed| {
        let probe = State::random(a.num_qubits(), 0xC0FFEE ^ seed);
        run(a, probe.clone()).fidelity(&run(b, probe)) > 1.0 - 1e-9
    })
}

/// Layout-aware equivalence for transpiled circuits.
///
/// `initial[l]` / `final_[l]` give the physical wire holding logical qubit
/// `l` before / after the physical circuit. The check asserts, on random
/// probe states `|ψ⟩` over logical qubits:
///
/// ```text
/// physical( embed_initial(|ψ⟩) )  ==  embed_final( logical(|ψ⟩) )
/// ```
///
/// where `embed_map` relabels logical qubit `l` to physical wire `map[l]`.
pub fn transpiled_equivalent(
    logical: &Circuit,
    physical: &Circuit,
    initial: &[usize],
    final_: &[usize],
) -> bool {
    assert_eq!(
        logical.num_qubits(),
        physical.num_qubits(),
        "1:1 mapping required"
    );
    assert_eq!(initial.len(), logical.num_qubits());
    assert_eq!(final_.len(), logical.num_qubits());
    (0..DEFAULT_PROBES as u64).all(|seed| {
        let probe = State::random(logical.num_qubits(), 0xBEEF ^ seed);
        let lhs = run(physical, probe.relabel_qubits(initial));
        let rhs = run(logical, probe).relabel_qubits(final_);
        lhs.fidelity(&rhs) > 1.0 - 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_circuit::{builders, Gate};

    #[test]
    fn circuit_equals_itself() {
        let c = builders::random_two_qubit_circuit(4, 15, 3);
        assert!(circuits_equivalent(&c, &c));
    }

    #[test]
    fn swap_decomposition_is_equivalent() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0))
            .push(Gate::Swap(0, 2))
            .push(Gate::Cx(0, 1));
        assert!(circuits_equivalent(&c, &c.decompose_swaps()));
    }

    #[test]
    fn different_circuits_are_detected() {
        let mut a = Circuit::new(2);
        a.push(Gate::Cx(0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::Cx(1, 0));
        assert!(!circuits_equivalent(&a, &b));
    }

    #[test]
    fn global_phase_is_ignored() {
        // Rz(2π) = -I: differs from identity by a global phase only.
        let mut a = Circuit::new(1);
        a.push(Gate::Rz(0, 2.0 * std::f64::consts::PI));
        let b = Circuit::new(1);
        assert!(circuits_equivalent(&a, &b));
    }

    #[test]
    fn transpiled_identity_layouts() {
        let c = builders::ghz(3);
        let id = [0usize, 1, 2];
        assert!(transpiled_equivalent(&c, &c, &id, &id));
    }

    #[test]
    fn transpiled_with_final_swap() {
        // Physical circuit = logical circuit followed by SWAP(0,1): the
        // final layout absorbs the swap.
        let logical = builders::ghz(3);
        let mut physical = logical.clone();
        physical.push(Gate::Swap(0, 1));
        let initial = [0usize, 1, 2];
        let final_ = [1usize, 0, 2];
        assert!(transpiled_equivalent(
            &logical, &physical, &initial, &final_
        ));
        // Wrong final layout fails.
        assert!(!transpiled_equivalent(
            &logical, &physical, &initial, &initial
        ));
    }

    #[test]
    fn transpiled_with_initial_relabel() {
        // Physical runs the same gates on relabeled wires.
        let logical = builders::random_two_qubit_circuit(3, 8, 5);
        let layout = [2usize, 0, 1]; // logical l -> physical layout[l]
        let physical = logical.relabeled(3, |q| layout[q]);
        assert!(transpiled_equivalent(&logical, &physical, &layout, &layout));
    }
}
