//! Classical permutation tracking for SWAP-only circuits.
//!
//! A routing schedule compiled to SWAP gates permutes the computational
//! basis; tracking that permutation costs `O(gates)` instead of `O(2^n)`,
//! which lets tests verify routing on grids far beyond statevector reach.

use qroute_circuit::{Circuit, Gate};

/// Errors from [`track_permutation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermSimError {
    /// The circuit contains a non-SWAP gate at the given index.
    NonSwapGate {
        /// Index into the gate list.
        index: usize,
    },
}

impl std::fmt::Display for PermSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermSimError::NonSwapGate { index } => {
                write!(
                    f,
                    "gate {index} is not a SWAP; permutation tracking undefined"
                )
            }
        }
    }
}

impl std::error::Error for PermSimError {}

/// Track where each qubit's state ends up: returns `map` with
/// `map[q] = q'` meaning the state initially on qubit `q` finishes on
/// qubit `q'`.
pub fn track_permutation(circuit: &Circuit) -> Result<Vec<usize>, PermSimError> {
    // pos[q] = current wire holding the state that started on q.
    let mut pos: Vec<usize> = (0..circuit.num_qubits()).collect();
    // wire_to_origin inverse view for O(1) updates.
    let mut origin: Vec<usize> = (0..circuit.num_qubits()).collect();
    for (index, g) in circuit.gates().iter().enumerate() {
        match *g {
            Gate::Swap(a, b) => {
                let (oa, ob) = (origin[a], origin[b]);
                origin.swap(a, b);
                pos[oa] = b;
                pos[ob] = a;
            }
            _ => return Err(PermSimError::NonSwapGate { index }),
        }
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use crate::statevector;

    #[test]
    fn identity_for_empty() {
        let c = Circuit::new(4);
        assert_eq!(track_permutation(&c).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_swap() {
        let mut c = Circuit::new(3);
        c.push(Gate::Swap(0, 2));
        assert_eq!(track_permutation(&c).unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn swap_chain_is_cycle() {
        let mut c = Circuit::new(3);
        c.push(Gate::Swap(0, 1)).push(Gate::Swap(1, 2));
        // State from 0: ->1 ->2; from 1: ->0 stays; from 2: ->1.
        assert_eq!(track_permutation(&c).unwrap(), vec![2, 0, 1]);
    }

    #[test]
    fn rejects_non_swap() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        assert_eq!(
            track_permutation(&c),
            Err(PermSimError::NonSwapGate { index: 0 })
        );
    }

    #[test]
    fn agrees_with_statevector() {
        let mut c = Circuit::new(4);
        c.push(Gate::Swap(0, 1))
            .push(Gate::Swap(2, 3))
            .push(Gate::Swap(1, 2))
            .push(Gate::Swap(0, 3));
        let map = track_permutation(&c).unwrap();
        for seed in 0..3 {
            let input = State::random(4, seed);
            let via_sim = statevector::run(&c, input.clone());
            let via_perm = input.relabel_qubits(&map);
            assert!(via_sim.fidelity(&via_perm) > 1.0 - 1e-12, "seed {seed}");
        }
    }
}
