//! The metrics registry: named counters, gauges, and log2 histograms
//! with snapshot/merge and a Prometheus text-exposition encoder.
//!
//! Registration (naming a metric, attaching a label set) takes a mutex
//! once; the returned [`Counter`]/[`Gauge`]/[`Log2Histogram`] handles are
//! `Arc`-shared atomics, so the *update* path is lock-free and safe to
//! hit from any thread — the same discipline the daemon's original
//! hand-rolled `AtomicU64` counters followed, now behind names the
//! Prometheus encoder can export.
//!
//! [`Log2Histogram`] generalizes the daemon's private 64-bucket
//! `latency_us` array: bucket `i ≥ 1` holds samples in `[2^(i−1), 2^i)`
//! (bucket 0 is the sub-unit bucket), and quantiles are reported at the
//! *geometric midpoint* of the bucket holding the ceil-rank sample —
//! exactly the semantics the daemon's p50/p99 fix pinned (midpoint
//! instead of upper bound halves the worst-case overstatement; the rank
//! `⌊q·total⌋ + 1` clamped to `total` selects the upper median on exact
//! boundaries).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Bucket count of a [`Log2Histogram`] — enough for the full `u64`
/// range of sample values.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotone counter handle. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. Exists for *mirroring* an external monotone
    /// source (e.g. cache counters owned by `ShardedLru`) into the
    /// registry at snapshot time; do not mix with [`Counter::inc`] on
    /// the same handle.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A gauge handle (a value that goes up and down). Cloning shares the
/// underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract 1 (saturating in practice: callers pair inc/dec).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free base-2 logarithmic histogram over `u64` samples.
///
/// Bucket 0 holds samples of value 0 (sub-unit); bucket `i ≥ 1` holds
/// `[2^(i−1), 2^i)`. Recording is one atomic add; snapshots are relaxed
/// loads. The unit is whatever the caller records (the daemon records
/// microseconds); [`Log2Histogram::quantile`] answers in that same unit.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Exact sum of recorded samples (for the Prometheus `_sum` series).
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a sample value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Quantile `q ∈ [0, 1]` at the geometric midpoint of the bucket
    /// holding the `⌊q·total⌋ + 1`-ranked sample (clamped to `total`),
    /// in the recorded unit; `0.0` with no samples. See the module docs
    /// for why midpoint + ceil-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// An owned copy of a [`Log2Histogram`]'s state, supporting quantiles
/// and merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Log2Histogram`] for boundaries).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Exact sum of recorded samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Samples in the snapshot.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Geometric midpoint of bucket `b` in the recorded unit: `2^b/√2`
    /// for `b ≥ 1`, `0.5` for the sub-unit bucket 0.
    pub fn bucket_midpoint(bucket: usize) -> f64 {
        if bucket == 0 {
            0.5
        } else {
            (1u128 << bucket) as f64 / std::f64::consts::SQRT_2
        }
    }

    /// Quantile with the same contract as [`Log2Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let rank = (((q * total as f64).floor() as u64) + 1).min(total);
        let mut seen = 0;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_midpoint(bucket);
            }
        }
        unreachable!("rank ≤ total")
    }

    /// Fold another snapshot in (bucket-wise counter sums). Merging the
    /// snapshots of two histograms is equivalent to recording both
    /// sample streams into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }
}

/// What a registry metric is, for the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// [`Log2Histogram`].
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A label set, sorted by label name (registration sorts it).
type Labels = Vec<(String, String)>;

enum Series {
    Scalar(Arc<AtomicU64>),
    Histogram(Arc<Log2Histogram>),
}

struct MetricFamily {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Labels, Series>,
}

/// A named collection of metrics. Registration locks a mutex; every
/// returned handle updates lock-free. Metric and label ordering is
/// stable (BTree order), so the Prometheus exposition of a given state
/// is byte-deterministic.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, MetricFamily>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn with_family<T>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        read: impl FnOnce(&Series) -> T,
    ) -> T {
        let mut sorted: Labels = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families
            .entry(name.to_string())
            .or_insert_with(|| MetricFamily {
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} registered twice with different kinds"
        );
        read(family.series.entry(sorted).or_insert_with(make))
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.labeled_counter(name, help, &[])
    }

    /// Register (or look up) a counter with a label set. The same
    /// `(name, labels)` pair always returns a handle to the same atomic.
    pub fn labeled_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.with_family(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Series::Scalar(Arc::new(AtomicU64::new(0))),
            |s| match s {
                Series::Scalar(a) => Counter(Arc::clone(a)),
                Series::Histogram(_) => unreachable!("kind checked"),
            },
        )
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.with_family(
            name,
            help,
            MetricKind::Gauge,
            &[],
            || Series::Scalar(Arc::new(AtomicU64::new(0))),
            |s| match s {
                Series::Scalar(a) => Gauge(Arc::clone(a)),
                Series::Histogram(_) => unreachable!("kind checked"),
            },
        )
    }

    /// Register (or look up) an unlabeled [`Log2Histogram`].
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Log2Histogram> {
        self.with_family(
            name,
            help,
            MetricKind::Histogram,
            &[],
            || Series::Histogram(Arc::new(Log2Histogram::new())),
            |s| match s {
                Series::Scalar(_) => unreachable!("kind checked"),
                Series::Histogram(h) => Arc::clone(h),
            },
        )
    }

    /// Every `(labels, value)` series of a counter/gauge family, in
    /// stable label order; empty for unknown names.
    pub fn series_values(&self, name: &str) -> Vec<(Labels, u64)> {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        match families.get(name) {
            None => Vec::new(),
            Some(family) => family
                .series
                .iter()
                .filter_map(|(labels, series)| match series {
                    Series::Scalar(a) => Some((labels.clone(), a.load(Ordering::Relaxed))),
                    Series::Histogram(_) => None,
                })
                .collect(),
        }
    }

    /// A point-in-time copy of every metric, for merge and encoding.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        RegistrySnapshot {
            families: families
                .iter()
                .map(|(name, family)| {
                    let series = family
                        .series
                        .iter()
                        .map(|(labels, series)| {
                            let value = match series {
                                Series::Scalar(a) => {
                                    SeriesSnapshot::Value(a.load(Ordering::Relaxed))
                                }
                                Series::Histogram(h) => {
                                    SeriesSnapshot::Histogram(Box::new(h.snapshot()))
                                }
                            };
                            (labels.clone(), value)
                        })
                        .collect();
                    (
                        name.clone(),
                        FamilySnapshot { help: family.help.clone(), kind: family.kind, series },
                    )
                })
                .collect(),
        }
    }

    /// Prometheus text exposition of the current state (see
    /// [`RegistrySnapshot::to_prometheus`]).
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

/// One series' value in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesSnapshot {
    /// A counter or gauge reading.
    Value(u64),
    /// A histogram's buckets and sum (boxed: 64 buckets dwarf the
    /// scalar variant).
    Histogram(Box<HistogramSnapshot>),
}

/// One metric family in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// The `# HELP` text.
    pub help: String,
    /// The `# TYPE`.
    pub kind: MetricKind,
    /// Series by sorted label set.
    pub series: BTreeMap<Labels, SeriesSnapshot>,
}

/// An owned, mergeable copy of a [`Registry`]'s state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Families by metric name (stable order).
    pub families: BTreeMap<String, FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Fold another snapshot in: counters and histograms add; gauges add
    /// too (merging makes sense for gauges that partition a total, like
    /// per-process queue depths). Families/series missing on one side
    /// are copied through.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, theirs) in &other.families {
            match self.families.get_mut(name) {
                None => {
                    self.families.insert(name.clone(), theirs.clone());
                }
                Some(mine) => {
                    assert_eq!(
                        mine.kind, theirs.kind,
                        "metric {name:?} has mismatched kinds across snapshots"
                    );
                    for (labels, value) in &theirs.series {
                        match (mine.series.get_mut(labels), value) {
                            (None, v) => {
                                mine.series.insert(labels.clone(), v.clone());
                            }
                            (Some(SeriesSnapshot::Value(a)), SeriesSnapshot::Value(b)) => *a += b,
                            (Some(SeriesSnapshot::Histogram(a)), SeriesSnapshot::Histogram(b)) => {
                                a.merge(b)
                            }
                            _ => panic!("metric {name:?} has mismatched series shapes"),
                        }
                    }
                }
            }
        }
    }

    /// Encode the snapshot in the Prometheus text exposition format:
    /// `# HELP`/`# TYPE` headers, one sample line per series, stable
    /// metric and label ordering, label values escaped per the spec
    /// (backslash, double quote, newline). Histograms emit cumulative
    /// `_bucket{le="..."}` series at the power-of-two bucket boundaries
    /// (suppressing empty leading/trailing runs), an exact `_sum`, and
    /// `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            escape_help(&family.help, &mut out);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, value) in &family.series {
                match value {
                    SeriesSnapshot::Value(v) => {
                        out.push_str(name);
                        write_labels(labels, &[], &mut out);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SeriesSnapshot::Histogram(h) => {
                        // Cumulative buckets. The upper bound of bucket i
                        // is 2^i; runs of empty buckets past the last
                        // occupied one collapse into the +Inf line.
                        let last = h
                            .buckets
                            .iter()
                            .rposition(|&c| c != 0)
                            .map_or(0, |i| i + 1)
                            .min(HISTOGRAM_BUCKETS - 1);
                        let mut cumulative = 0u64;
                        for (i, &count) in h.buckets.iter().enumerate().take(last + 1) {
                            cumulative += count;
                            out.push_str(name);
                            out.push_str("_bucket");
                            let le = (1u128 << i).to_string();
                            write_labels(labels, &[("le", &le)], &mut out);
                            out.push(' ');
                            out.push_str(&cumulative.to_string());
                            out.push('\n');
                        }
                        let total = h.total();
                        out.push_str(name);
                        out.push_str("_bucket");
                        write_labels(labels, &[("le", "+Inf")], &mut out);
                        out.push(' ');
                        out.push_str(&total.to_string());
                        out.push('\n');
                        out.push_str(name);
                        out.push_str("_sum");
                        write_labels(labels, &[], &mut out);
                        out.push(' ');
                        out.push_str(&h.sum.to_string());
                        out.push('\n');
                        out.push_str(name);
                        out.push_str("_count");
                        write_labels(labels, &[], &mut out);
                        out.push(' ');
                        out.push_str(&total.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

/// Write a `{k="v",...}` label block (nothing when empty). `extra` pairs
/// (the histogram `le`) append after the series labels.
fn write_labels(labels: &[(String, String)], extra: &[(&str, &str)], out: &mut String) {
    if labels.is_empty() && extra.is_empty() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Escape a `# HELP` text (backslash and newline, per the spec).
fn escape_help(help: &str, out: &mut String) {
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_match_the_daemon_formula() {
        // Bucket i ≥ 1 holds [2^(i−1), 2^i); bucket 0 holds zero.
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_reports_the_geometric_midpoint() {
        let h = Log2Histogram::new();
        h.record(5); // bucket 3: [4, 8)
        for q in [0.01, 0.5, 0.99] {
            let got = h.quantile(q);
            let mid = 8.0 / std::f64::consts::SQRT_2;
            assert!((got - mid).abs() < 1e-12, "q={q}: {got}");
        }
        let z = Log2Histogram::new();
        z.record(0);
        assert!((z.quantile(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_rank_selects_the_upper_median() {
        let h = Log2Histogram::new();
        for v in [2, 2, 16, 16] {
            h.record(v);
        }
        // ⌊0.5·4⌋+1 = 3 lands in the upper bucket.
        assert!((h.quantile(0.5) - HistogramSnapshot::bucket_midpoint(5)).abs() < 1e-12);
        assert!((h.quantile(0.25) - HistogramSnapshot::bucket_midpoint(2)).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenated_records() {
        let a = Log2Histogram::new();
        let b = Log2Histogram::new();
        let both = Log2Histogram::new();
        for v in [0u64, 1, 7, 300] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 7, 100_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn registry_handles_share_state_and_order_is_stable() {
        let registry = Registry::new();
        let c1 = registry.counter("zzz_total", "last");
        let c2 = registry.counter("zzz_total", "last");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        registry.gauge("aaa_depth", "first").set(7);
        let text = registry.to_prometheus();
        let aaa = text.find("aaa_depth").unwrap();
        let zzz = text.find("zzz_total").unwrap();
        assert!(aaa < zzz, "BTree order: {text}");
    }

    #[test]
    fn labeled_series_sort_by_label_set() {
        let registry = Registry::new();
        registry
            .labeled_counter("jobs_total", "per router", &[("router", "b")])
            .add(2);
        registry
            .labeled_counter("jobs_total", "per router", &[("router", "a")])
            .add(1);
        let series = registry.series_values("jobs_total");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0[0].1, "a");
        assert_eq!(series[0].1, 1);
        assert_eq!(series[1].0[0].1, "b");
        assert_eq!(series[1].1, 2);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("jobs_total", "j").add(2);
        r2.counter("jobs_total", "j").add(5);
        r1.histogram("lat_us", "l").record(3);
        r2.histogram("lat_us", "l").record(300);
        r2.counter("only_total", "o").add(1);
        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        let jobs = &merged.families["jobs_total"].series[&vec![]];
        assert_eq!(*jobs, SeriesSnapshot::Value(7));
        let SeriesSnapshot::Histogram(h) = &merged.families["lat_us"].series[&vec![]] else {
            panic!("histogram series expected");
        };
        assert_eq!(h.total(), 2);
        assert_eq!(h.sum, 303);
        assert!(merged.families.contains_key("only_total"));
    }
}
