//! # qroute-obs
//!
//! The observability substrate of the routing stack: a lock-free
//! **metrics registry** with a Prometheus text-exposition encoder, and
//! **zero-cost tracing hooks** with thread-local / process-global
//! subscribers.
//!
//! * [`metrics`] — [`Registry`] of named [`Counter`]s, [`Gauge`]s, and
//!   [`Log2Histogram`]s (the daemon's 64-bucket geometric-midpoint
//!   latency histogram, generalized and reusable), with
//!   [`RegistrySnapshot`] merge and
//!   [`RegistrySnapshot::to_prometheus`].
//! * [`trace`] — [`trace::span`]/[`trace::event`] hooks modeled on
//!   `qroute_core::budget`'s thread-local pattern: the disarmed path is
//!   one TLS read plus one relaxed atomic load, zero allocations, no
//!   clock reads. Subscribers emit JSONL trace records
//!   ([`trace::JsonlSubscriber`]) or the Chrome `trace_event` array
//!   format ([`trace::ChromeSubscriber`]).
//!
//! This crate sits *below* `qroute_core`: routers call the trace hooks
//! directly, and the service layer hangs its `StatsSnapshot` counters on
//! a [`Registry`]. With no subscriber installed and no metrics
//! requested, instrumented code paths produce byte-identical output to
//! uninstrumented ones — the hooks measure, they never steer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, HistogramSnapshot, Log2Histogram, MetricKind, Registry, RegistrySnapshot,
    HISTOGRAM_BUCKETS,
};
pub use trace::{FieldValue, Subscriber, TraceRecord};
