//! Structured tracing hooks with a thread-local (plus optional
//! process-global) subscriber.
//!
//! The design mirrors `qroute_core::budget`: a `thread_local!`
//! `RefCell<Option<...>>` armed via an RAII restore guard, so the
//! **disarmed** fast path — the one every router round crosses in
//! production — is one TLS read plus one relaxed atomic load, with zero
//! allocations and no clock reads. Only when a subscriber is installed
//! do [`span`]/[`event`] take timestamps and build records.
//!
//! Two installation scopes:
//!
//! * [`with_subscriber`] arms the *current thread* for the duration of a
//!   closure (tests, single-threaded tools). Nested calls shadow and
//!   restore, like `budget::with_budget`.
//! * [`install_global`] arms *every* thread (an `ArcSwap`-style slot
//!   guarded by an atomic flag). The engine's worker pool routes jobs on
//!   its own threads, so `repro batch --trace` installs globally — a
//!   thread-local subscriber on the CLI thread would never see router
//!   internals. A thread-local subscriber, when present, shadows the
//!   global one.
//!
//! Records carry a name, a monotonic microsecond timestamp (since the
//! first armed use in the process), a small per-thread id, an optional
//! duration (spans), and a borrowed field slice — no heap allocation on
//! the emitting side. Subscribers that persist records (JSONL, Chrome
//! `trace_event`) serialize under their own lock.

use serde::write_json_string;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One field value of a trace record. Borrowed where possible so that
/// emitting a record allocates nothing.
#[derive(Debug, Clone, Copy)]
pub enum FieldValue<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Borrowed string.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl FieldValue<'_> {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Str(s) => write_json_string(s, out),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// A borrowed trace record, passed to [`Subscriber::on_record`].
#[derive(Debug)]
pub struct TraceRecord<'a> {
    /// Static record name, dot-namespaced (`"pathfinder.round"`).
    pub name: &'static str,
    /// Microseconds since the process trace epoch, at the record's
    /// start (spans) or emission (events).
    pub ts_us: u64,
    /// Span duration in microseconds; `None` for point events.
    pub dur_us: Option<u64>,
    /// Small sequential id of the emitting thread.
    pub thread: u64,
    /// Borrowed field slice.
    pub fields: &'a [(&'static str, FieldValue<'a>)],
}

/// A sink for trace records. Implementations must be cheap to call or
/// buffer internally; routers emit records from their hot loops.
pub trait Subscriber: Send + Sync {
    /// Observe one record. The record (and its field slice) is only
    /// valid for the duration of the call.
    fn on_record(&self, record: &TraceRecord<'_>);
}

thread_local! {
    /// The thread-local subscriber, `None` when this thread is unarmed.
    static ACTIVE: RefCell<Option<Arc<dyn Subscriber>>> = const { RefCell::new(None) };
}

/// Whether any global subscriber is installed (fast gate in front of the
/// global slot's mutex).
static GLOBAL_ARMED: AtomicBool = AtomicBool::new(false);

/// The global subscriber slot.
static GLOBAL: Mutex<Option<Arc<dyn Subscriber>>> = Mutex::new(None);

/// The process trace epoch: timestamps count from the first armed use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Per-thread sequential ids (stable, small — unlike
/// `std::thread::ThreadId`, which has no stable integer accessor).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Whether a subscriber (thread-local or global) would observe records
/// emitted by this thread right now. One TLS read plus one relaxed load
/// — call sites use it to skip building expensive fields when disarmed.
#[inline]
pub fn armed() -> bool {
    ACTIVE.with(|s| s.borrow().is_some()) || GLOBAL_ARMED.load(Ordering::Relaxed)
}

/// Run `f` against the armed subscriber, if any (thread-local shadows
/// global). The global Arc is cloned per dispatch — records are emitted
/// at phase/round granularity, not per instruction, so one refcount bump
/// is noise; the disarmed path never gets here.
fn with_active<T>(f: impl FnOnce(&dyn Subscriber) -> T) -> Option<T> {
    let local = ACTIVE.with(|s| s.borrow().clone());
    let sub = match local {
        Some(sub) => sub,
        None => {
            if !GLOBAL_ARMED.load(Ordering::Relaxed) {
                return None;
            }
            GLOBAL
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()?
        }
    };
    Some(f(&*sub))
}

fn now_us() -> u64 {
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u64::MAX as u128) as u64
}

/// Arm the current thread with `subscriber` for the duration of `f`,
/// restoring the previous state on exit (including unwinds) — the
/// `budget::with_budget` shape.
pub fn with_subscriber<T>(subscriber: Arc<dyn Subscriber>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Arc<dyn Subscriber>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|s| *s.borrow_mut() = prev);
        }
    }
    let _restore = Restore(ACTIVE.with(|s| s.borrow_mut().replace(subscriber)));
    f()
}

/// Install (or replace) the process-global subscriber, arming every
/// thread that has no thread-local one. Returns the previous global
/// subscriber. `install_global(None)` disarms.
pub fn install_global(subscriber: Option<Arc<dyn Subscriber>>) -> Option<Arc<dyn Subscriber>> {
    let mut slot = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    GLOBAL_ARMED.store(subscriber.is_some(), Ordering::Relaxed);
    std::mem::replace(&mut *slot, subscriber)
}

/// Emit a point event. Disarmed: one TLS read + one relaxed load, then
/// returns — the field slice lives on the caller's stack either way.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue<'_>)]) {
    if !armed() {
        return;
    }
    let ts_us = now_us();
    let thread = THREAD_ID.with(|&t| t);
    with_active(|sub| {
        sub.on_record(&TraceRecord { name, ts_us, dur_us: None, thread, fields });
    });
}

/// Time `f` as a span named `name` with no fields. Disarmed: one TLS
/// read + one relaxed load, then straight into `f` — no clock read.
#[inline]
pub fn span<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    span_with(name, &[], f)
}

/// Time `f` as a span carrying `fields` (recorded at span close, with
/// the start timestamp). Build expensive fields under an [`armed`]
/// check; cheap ones (static strings, integers already at hand) cost a
/// few stack writes when disarmed.
#[inline]
pub fn span_with<T>(
    name: &'static str,
    fields: &[(&'static str, FieldValue<'_>)],
    f: impl FnOnce() -> T,
) -> T {
    if !armed() {
        return f();
    }
    let ts_us = now_us();
    let result = f();
    let dur_us = now_us().saturating_sub(ts_us);
    let thread = THREAD_ID.with(|&t| t);
    with_active(|sub| {
        sub.on_record(&TraceRecord { name, ts_us, dur_us: Some(dur_us), thread, fields });
    });
    result
}

/// Serialize a record as one JSON object (the JSONL trace schema):
/// `{"name":...,"ts_us":...,"dur_us":...|null,"tid":...,"fields":{...}}`.
fn record_to_json(record: &TraceRecord<'_>, out: &mut String) {
    out.push_str("{\"name\":");
    write_json_string(record.name, out);
    out.push_str(",\"ts_us\":");
    out.push_str(&record.ts_us.to_string());
    out.push_str(",\"dur_us\":");
    match record.dur_us {
        Some(d) => out.push_str(&d.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"tid\":");
    out.push_str(&record.thread.to_string());
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in record.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(key, out);
        out.push(':');
        value.write_json(out);
    }
    out.push_str("}}");
}

/// A subscriber writing one JSON object per record (JSONL) to a shared
/// writer. Lines are whole (the writer lock covers a full record), so
/// concurrent worker threads interleave records, never bytes.
pub struct JsonlSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSubscriber {
    /// Wrap a writer (a `BufWriter<File>` in the CLI).
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSubscriber {
        JsonlSubscriber { out: Mutex::new(out) }
    }

    /// Flush buffered records.
    pub fn finish(&self) {
        let _ = self
            .out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
    }
}

impl Subscriber for JsonlSubscriber {
    fn on_record(&self, record: &TraceRecord<'_>) {
        let mut line = String::with_capacity(128);
        record_to_json(record, &mut line);
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = out.write_all(line.as_bytes());
    }
}

/// A subscriber writing the Chrome `trace_event` JSON array format
/// (load the file in `chrome://tracing` or Perfetto): spans become
/// complete `"ph":"X"` events with `ts`/`dur` in microseconds, point
/// events become thread-scoped instants (`"ph":"i"`). Call
/// [`ChromeSubscriber::finish`] to close the array.
pub struct ChromeSubscriber {
    out: Mutex<ChromeState>,
}

struct ChromeState {
    writer: Box<dyn Write + Send>,
    wrote_any: bool,
    finished: bool,
}

impl ChromeSubscriber {
    /// Wrap a writer.
    pub fn new(out: Box<dyn Write + Send>) -> ChromeSubscriber {
        ChromeSubscriber {
            out: Mutex::new(ChromeState { writer: out, wrote_any: false, finished: false }),
        }
    }

    /// Close the JSON array and flush. Idempotent.
    pub fn finish(&self) {
        let mut state = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        if state.finished {
            return;
        }
        state.finished = true;
        let tail: &[u8] = if state.wrote_any { b"\n]\n" } else { b"[]\n" };
        let _ = state.writer.write_all(tail);
        let _ = state.writer.flush();
    }
}

impl Drop for ChromeSubscriber {
    fn drop(&mut self) {
        self.finish();
    }
}

impl Subscriber for ChromeSubscriber {
    fn on_record(&self, record: &TraceRecord<'_>) {
        let mut obj = String::with_capacity(160);
        obj.push_str("{\"name\":");
        write_json_string(record.name, &mut obj);
        match record.dur_us {
            Some(dur) => {
                obj.push_str(",\"ph\":\"X\",\"dur\":");
                obj.push_str(&dur.to_string());
            }
            None => obj.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        obj.push_str(",\"ts\":");
        obj.push_str(&record.ts_us.to_string());
        obj.push_str(",\"pid\":1,\"tid\":");
        obj.push_str(&record.thread.to_string());
        obj.push_str(",\"args\":{");
        for (i, (key, value)) in record.fields.iter().enumerate() {
            if i > 0 {
                obj.push(',');
            }
            write_json_string(key, &mut obj);
            obj.push(':');
            value.write_json(&mut obj);
        }
        obj.push_str("}}");
        let mut state = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        if state.finished {
            return;
        }
        let head: &[u8] = if state.wrote_any { b",\n" } else { b"[\n" };
        state.wrote_any = true;
        let _ = state.writer.write_all(head);
        let _ = state.writer.write_all(obj.as_bytes());
    }
}

/// A subscriber that only counts calls — the instrument behind the
/// "tracing disarmed performs zero subscriber calls" guard test and any
/// other hot-path cost assertion.
#[derive(Default)]
pub struct CountingSubscriber {
    calls: AtomicU64,
}

impl CountingSubscriber {
    /// A fresh counter at zero.
    pub fn new() -> CountingSubscriber {
        CountingSubscriber::default()
    }

    /// Records observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Subscriber for CountingSubscriber {
    fn on_record(&self, _record: &TraceRecord<'_>) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
}

/// A subscriber buffering JSONL-rendered records in memory (tests).
#[derive(Default)]
pub struct MemorySubscriber {
    lines: Mutex<Vec<String>>,
}

impl MemorySubscriber {
    /// An empty buffer.
    pub fn new() -> MemorySubscriber {
        MemorySubscriber::default()
    }

    /// The JSONL lines recorded so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Subscriber for MemorySubscriber {
    fn on_record(&self, record: &TraceRecord<'_>) {
        let mut line = String::with_capacity(128);
        record_to_json(record, &mut line);
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_emits_nothing_and_returns_the_value() {
        let got = span("outer", || {
            event("inner", &[("k", FieldValue::U64(1))]);
            41 + 1
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn thread_local_subscriber_sees_spans_and_events_then_restores() {
        let sub = Arc::new(MemorySubscriber::new());
        let got = with_subscriber(Arc::clone(&sub) as Arc<dyn Subscriber>, || {
            span_with("phase", &[("router", FieldValue::Str("ats"))], || {
                event(
                    "round",
                    &[
                        ("round", FieldValue::U64(3)),
                        ("score", FieldValue::F64(0.5)),
                    ],
                );
                7
            })
        });
        assert_eq!(got, 7);
        assert!(!armed(), "restored after the closure");
        let lines = sub.lines();
        assert_eq!(lines.len(), 2);
        // Events inside a span are emitted first (span closes after).
        assert!(lines[0].contains("\"name\":\"round\""), "{}", lines[0]);
        assert!(lines[0].contains("\"dur_us\":null"), "{}", lines[0]);
        assert!(lines[0].contains("\"round\":3"), "{}", lines[0]);
        assert!(lines[0].contains("\"score\":0.5"), "{}", lines[0]);
        assert!(lines[1].contains("\"name\":\"phase\""), "{}", lines[1]);
        assert!(lines[1].contains("\"router\":\"ats\""), "{}", lines[1]);
        assert!(!lines[1].contains("\"dur_us\":null"), "{}", lines[1]);
    }

    #[test]
    fn nested_subscribers_shadow_and_restore() {
        let outer = Arc::new(CountingSubscriber::new());
        let inner = Arc::new(CountingSubscriber::new());
        with_subscriber(Arc::clone(&outer) as Arc<dyn Subscriber>, || {
            event("a", &[]);
            with_subscriber(Arc::clone(&inner) as Arc<dyn Subscriber>, || {
                event("b", &[]);
            });
            event("c", &[]);
        });
        assert_eq!(outer.calls(), 2);
        assert_eq!(inner.calls(), 1);
    }

    #[test]
    fn global_subscriber_arms_spawned_threads() {
        let sub = Arc::new(CountingSubscriber::new());
        let prev = install_global(Some(Arc::clone(&sub) as Arc<dyn Subscriber>));
        std::thread::spawn(|| span("worker", || event("tick", &[])))
            .join()
            .unwrap();
        install_global(prev);
        assert_eq!(sub.calls(), 2);
        assert!(!armed(), "global uninstalled");
    }

    #[test]
    fn chrome_subscriber_writes_a_closed_event_array() {
        use std::sync::mpsc::channel;
        struct Tee(std::sync::mpsc::Sender<Vec<u8>>);
        impl Write for Tee {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.send(buf.to_vec()).unwrap();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (tx, rx) = channel();
        let sub = Arc::new(ChromeSubscriber::new(Box::new(Tee(tx))));
        with_subscriber(Arc::clone(&sub) as Arc<dyn Subscriber>, || {
            span("phase", || event("mark", &[("n", FieldValue::U64(2))]));
        });
        sub.finish();
        let text: String = rx
            .try_iter()
            .map(|chunk| String::from_utf8(chunk).unwrap())
            .collect();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"ph\":\"i\""), "{text}");
        assert!(text.contains("\"ph\":\"X\""), "{text}");
        assert!(text.contains("\"n\":2"), "{text}");
    }
}
