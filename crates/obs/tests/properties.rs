//! Integration tests for the metrics registry: a pinned Prometheus
//! exposition golden, and deterministic property tests for
//! [`Log2Histogram`] (quantile monotonicity, merge/record equivalence,
//! bucket boundaries).

use proptest::collection;
use proptest::prelude::*;
use qroute_obs::{HistogramSnapshot, Log2Histogram, Registry, HISTOGRAM_BUCKETS};

/// Golden: the exact exposition of a small registry is pinned — family
/// order (BTree over metric names), HELP/TYPE headers, label escaping,
/// cumulative histogram buckets with trailing-empty suppression, exact
/// `_sum`, and `_count`.
#[test]
fn prometheus_exposition_is_pinned() {
    let registry = Registry::new();
    registry.counter("demo_jobs_total", "Jobs routed").add(5);
    registry
        .labeled_counter(
            "demo_router_jobs_total",
            "Per-router jobs",
            &[("router", "ats")],
        )
        .add(2);
    registry
        .labeled_counter(
            "demo_router_jobs_total",
            "Per-router jobs",
            &[("router", "sna\"ke\\path")],
        )
        .inc();
    registry.gauge("demo_queue_depth", "Jobs in flight").set(3);
    let latency = registry.histogram("demo_latency_us", "Latency\nmicroseconds");
    for value in [0, 1, 3, 100] {
        latency.record(value);
    }
    let expected = concat!(
        "# HELP demo_jobs_total Jobs routed\n",
        "# TYPE demo_jobs_total counter\n",
        "demo_jobs_total 5\n",
        "# HELP demo_latency_us Latency\\nmicroseconds\n",
        "# TYPE demo_latency_us histogram\n",
        "demo_latency_us_bucket{le=\"1\"} 1\n",
        "demo_latency_us_bucket{le=\"2\"} 2\n",
        "demo_latency_us_bucket{le=\"4\"} 3\n",
        "demo_latency_us_bucket{le=\"8\"} 3\n",
        "demo_latency_us_bucket{le=\"16\"} 3\n",
        "demo_latency_us_bucket{le=\"32\"} 3\n",
        "demo_latency_us_bucket{le=\"64\"} 3\n",
        "demo_latency_us_bucket{le=\"128\"} 4\n",
        "demo_latency_us_bucket{le=\"256\"} 4\n",
        "demo_latency_us_bucket{le=\"+Inf\"} 4\n",
        "demo_latency_us_sum 104\n",
        "demo_latency_us_count 4\n",
        "# HELP demo_queue_depth Jobs in flight\n",
        "# TYPE demo_queue_depth gauge\n",
        "demo_queue_depth 3\n",
        "# HELP demo_router_jobs_total Per-router jobs\n",
        "# TYPE demo_router_jobs_total counter\n",
        "demo_router_jobs_total{router=\"ats\"} 2\n",
        "demo_router_jobs_total{router=\"sna\\\"ke\\\\path\"} 1\n",
    );
    assert_eq!(registry.to_prometheus(), expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `quantile(q)` never decreases as `q` grows, over a sampled grid.
    #[test]
    fn quantiles_are_monotone_in_q(values in collection::vec(0u64..1_000_000, 1..200)) {
        let histogram = Log2Histogram::new();
        for &value in &values {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=20 {
            let q = f64::from(step) / 20.0;
            let current = snapshot.quantile(q);
            prop_assert!(
                current >= prev,
                "quantile({q}) = {current} below quantile at previous grid point {prev}"
            );
            prev = current;
        }
    }

    /// Merging two snapshots equals recording both sample streams into
    /// one histogram — bucket-exact and sum-exact.
    #[test]
    fn merge_equals_recording_both_streams(
        first in collection::vec(0u64..1_000_000, 0..100),
        second in collection::vec(0u64..1_000_000, 0..100),
    ) {
        let ha = Log2Histogram::new();
        for &value in &first {
            ha.record(value);
        }
        let hb = Log2Histogram::new();
        for &value in &second {
            hb.record(value);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let combined = Log2Histogram::new();
        for &value in first.iter().chain(second.iter()) {
            combined.record(value);
        }
        prop_assert_eq!(merged, combined.snapshot());
    }

    /// Bucket `s ≥ 1` covers exactly `[2^(s−1), 2^s)`: both endpoints of
    /// the closed-open range land in `s`, and the value just below the
    /// lower boundary lands in `s − 1`.
    #[test]
    fn bucket_boundaries_are_powers_of_two(shift in 1usize..63) {
        let lo = 1u64 << (shift - 1);
        let hi = (1u64 << shift) - 1;
        prop_assert_eq!(Log2Histogram::bucket_of(lo), shift);
        prop_assert_eq!(Log2Histogram::bucket_of(hi), shift);
        let below = Log2Histogram::bucket_of(lo - 1);
        prop_assert_eq!(below, if shift == 1 { 0 } else { shift - 1 });
    }
}

/// The top bucket absorbs everything at and above `2^62`, including
/// `u64::MAX`; value 0 gets the dedicated sub-unit bucket.
#[test]
fn bucket_extremes_clamp() {
    assert_eq!(Log2Histogram::bucket_of(0), 0);
    assert_eq!(Log2Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    assert_eq!(Log2Histogram::bucket_of(1u64 << 63), HISTOGRAM_BUCKETS - 1);
}

/// An empty snapshot answers finite zero for every quantile.
#[test]
fn empty_histogram_quantiles_are_zero() {
    let snapshot = HistogramSnapshot::default();
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(snapshot.quantile(q), 0.0);
    }
}
