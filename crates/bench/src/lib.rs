//! # qroute-bench
//!
//! The experiment harness reproducing the paper's evaluation (§V):
//!
//! * [`workloads`] — the permutation classes of Figures 4–5 (random,
//!   disjoint blocks, overlapping blocks) plus the skinny-cycle
//!   adversarial class discussed in the text;
//! * [`circuits`] — the circuit-level workload classes (QFT, brickwork,
//!   QAOA, sparse random, QASM replay) measured through the transpile
//!   loop;
//! * [`verify`] — the differential verification harness every
//!   benchmarked transpile passes through (feasibility, metric recounts,
//!   structural unembedding, statevector equivalence within the
//!   simulator cutoff);
//! * [`experiments`] — sweep drivers measuring schedule depth (Fig. 4)
//!   and routing computation time (Fig. 5), the hybrid clamp check, the
//!   ablations, and the end-to-end transpile experiment;
//! * [`report`] — CSV and markdown rendering of experiment tables;
//! * [`bench`](mod@bench) — the machine-readable benchmark subsystem: the versioned
//!   `BENCH.json` schema ([`bench::BenchReport`]), the permutation and
//!   circuit matrix runners, and baseline regression checking for the CI
//!   gate.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run -p qroute-bench --release --bin repro -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod circuits;
pub mod experiments;
pub mod plot;
pub mod report;
pub mod verify;
pub mod workloads;
