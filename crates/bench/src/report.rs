//! CSV and markdown table rendering for experiment outputs.

use crate::experiments::{AblationRow, Cell, HybridRow, TranspileRow};
use std::fmt::Write as _;

/// Render sweep cells as CSV (one row per cell).
pub fn cells_to_csv(cells: &[Cell]) -> String {
    let mut out = String::from(
        "n,qubits,class,router,mean_depth,mean_size,mean_time_ms,mean_lower_bound,seeds\n",
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{:.3},{:.6},{:.3},{}",
            c.n,
            c.qubits,
            c.class,
            c.router,
            c.mean_depth,
            c.mean_size,
            c.mean_time_ms,
            c.mean_lower_bound,
            c.seeds
        );
    }
    out
}

/// Render a depth table (Fig. 4 style): rows = grid side, columns =
/// (class, router) pairs, entries = mean depth.
pub fn depth_table_markdown(cells: &[Cell]) -> String {
    table_markdown(
        cells,
        |c| format!("{:.1}", c.mean_depth),
        "mean swap-network depth",
    )
}

/// Render a time table (Fig. 5 style): entries = mean routing time (ms).
pub fn time_table_markdown(cells: &[Cell]) -> String {
    table_markdown(
        cells,
        |c| format!("{:.3}", c.mean_time_ms),
        "mean routing time (ms)",
    )
}

fn table_markdown(cells: &[Cell], value: impl Fn(&Cell) -> String, caption: &str) -> String {
    let mut sides: Vec<usize> = cells.iter().map(|c| c.n).collect();
    sides.sort_unstable();
    sides.dedup();
    let mut columns: Vec<(String, String)> = cells
        .iter()
        .map(|c| (c.class.clone(), c.router.clone()))
        .collect();
    columns.sort();
    columns.dedup();

    let mut out = format!("**{caption}**\n\n| n×n |");
    for (class, router) in &columns {
        let _ = write!(out, " {class}/{router} |");
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &columns {
        out.push_str("---|");
    }
    out.push('\n');
    for side in sides {
        let _ = write!(out, "| {side}×{side} |");
        for (class, router) in &columns {
            let cell = cells
                .iter()
                .find(|c| c.n == side && &c.class == class && &c.router == router);
            match cell {
                Some(c) => {
                    let _ = write!(out, " {} |", value(c));
                }
                None => out.push_str(" – |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Render the hybrid clamp rows.
pub fn hybrid_markdown(rows: &[HybridRow]) -> String {
    let mut out = String::from(
        "| n×n | class | local | naive | hybrid | clamp held |\n|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {0}×{0} | {1} | {2:.1} | {3:.1} | {4:.1} | {5} |",
            r.n, r.class, r.local, r.naive, r.hybrid, r.clamp_held
        );
    }
    out
}

/// Render the ablation rows.
pub fn ablation_markdown(rows: &[AblationRow]) -> String {
    let mut out = String::from(
        "| n×n | class | variant | mean depth | mean time (ms) |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {0}×{0} | {1} | {2} | {3:.1} | {4:.3} |",
            r.n, r.class, r.variant, r.mean_depth, r.mean_time_ms
        );
    }
    out
}

/// Render the optimality-gap rows.
pub fn optgap_markdown(rows: &[crate::experiments::OptGapRow]) -> String {
    let mut out = String::from(
        "| grid | router | mean optimal | mean router | worst ratio | instances |\n|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.2} | {:.2} | {} |",
            r.grid, r.router, r.mean_opt, r.mean_router, r.max_ratio, r.instances
        );
    }
    out
}

/// Render the transpile comparison rows.
pub fn transpile_markdown(rows: &[TranspileRow]) -> String {
    let mut out = String::from(
        "| workload | grid | router | swaps | depth | rounds | time (ms) |\n|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {:.2} |",
            r.workload, r.grid, r.router, r.swaps, r.depth, r.rounds, r.time_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::measure_cell;
    use crate::workloads::WorkloadClass;
    use qroute_core::RouterKind;

    fn sample_cells() -> Vec<Cell> {
        vec![
            measure_cell(4, WorkloadClass::Random, &RouterKind::locality_aware(), 1),
            measure_cell(4, WorkloadClass::Random, &RouterKind::Ats, 1),
            measure_cell(6, WorkloadClass::Random, &RouterKind::locality_aware(), 1),
            measure_cell(6, WorkloadClass::Random, &RouterKind::Ats, 1),
        ]
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cells = sample_cells();
        let csv = cells_to_csv(&cells);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("n,qubits,class,router"));
    }

    #[test]
    fn markdown_tables_are_complete() {
        let cells = sample_cells();
        let md = depth_table_markdown(&cells);
        assert!(md.contains("| 4×4 |"));
        assert!(md.contains("| 6×6 |"));
        assert!(md.contains("random/ats"));
        assert!(md.contains("random/locality-aware"));
        assert!(!md.contains('–'), "no missing cells expected:\n{md}");
        let tt = time_table_markdown(&cells);
        assert!(tt.contains("routing time"));
    }

    /// Hand-built cells with exactly representable values, so the golden
    /// strings below are stable across platforms.
    fn golden_cells() -> Vec<Cell> {
        vec![
            Cell {
                n: 4,
                qubits: 16,
                class: "random".into(),
                router: "ats".into(),
                mean_depth: 10.5,
                mean_size: 20.25,
                mean_time_ms: 0.125,
                mean_lower_bound: 5.0,
                seeds: 2,
            },
            Cell {
                n: 4,
                qubits: 16,
                class: "random".into(),
                router: "locality-aware".into(),
                mean_depth: 8.0,
                mean_size: 16.5,
                mean_time_ms: 0.25,
                mean_lower_bound: 5.0,
                seeds: 2,
            },
            Cell {
                n: 8,
                qubits: 64,
                class: "random".into(),
                router: "ats".into(),
                mean_depth: 21.5,
                mean_size: 90.125,
                mean_time_ms: 1.5,
                mean_lower_bound: 11.0,
                seeds: 2,
            },
        ]
    }

    #[test]
    fn csv_golden() {
        assert_eq!(
            cells_to_csv(&golden_cells()),
            "n,qubits,class,router,mean_depth,mean_size,mean_time_ms,mean_lower_bound,seeds\n\
             4,16,random,ats,10.500,20.250,0.125000,5.000,2\n\
             4,16,random,locality-aware,8.000,16.500,0.250000,5.000,2\n\
             8,64,random,ats,21.500,90.125,1.500000,11.000,2\n"
        );
    }

    #[test]
    fn depth_table_markdown_golden() {
        assert_eq!(
            depth_table_markdown(&golden_cells()),
            "**mean swap-network depth**\n\n\
             | n×n | random/ats | random/locality-aware |\n\
             |---|---|---|\n\
             | 4×4 | 10.5 | 8.0 |\n\
             | 8×8 | 21.5 | – |\n"
        );
    }

    #[test]
    fn missing_cells_render_dashes() {
        let cells = vec![
            measure_cell(4, WorkloadClass::Random, &RouterKind::locality_aware(), 1),
            measure_cell(6, WorkloadClass::Random, &RouterKind::Ats, 1),
        ];
        let md = depth_table_markdown(&cells);
        assert!(md.contains('–'));
    }
}
