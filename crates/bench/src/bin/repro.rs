//! Regenerate every figure/table of the paper's evaluation.
//!
//! ```text
//! repro [fig4|fig5|hybrid|skinny|ablations|optgap|transpile|all]
//!       [--sides 4,8,16] [--seeds N] [--out DIR]
//! ```
//!
//! Markdown tables print to stdout; CSV/JSON/SVG files land in `--out`
//! (default `results/`). Run `repro --help` for the authoritative usage
//! (the `USAGE` string below).

use qroute_bench::experiments;
use qroute_bench::plot::{cells_to_chart, Scale};
use qroute_bench::report;
use std::path::PathBuf;

struct Args {
    command: String,
    sides: Vec<usize>,
    seeds: u64,
    out: PathBuf,
}

const USAGE: &str = "\
repro — regenerate the paper's figures and tables

USAGE:
    repro [fig4|fig5|hybrid|skinny|ablations|optgap|transpile|all]
          [--sides 4,8,16] [--seeds N] [--out DIR]

Markdown tables print to stdout; CSV/JSON/SVG files land in --out
(default results/).";

fn parse_args() -> Args {
    let mut command = "all".to_string();
    let mut sides = experiments::default_sides();
    let mut seeds = 5u64;
    let mut out = PathBuf::from("results");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage_error = |msg: String| -> ! {
        eprintln!("error: {msg}\n\n{USAGE}");
        std::process::exit(2);
    };
    let flag_value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .cloned()
            .unwrap_or_else(|| usage_error(format!("{flag} requires a value")))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--sides" => {
                sides = flag_value(&mut i, "--sides")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            usage_error(format!("--sides wants integers, got {s:?}"))
                        })
                    })
                    .collect();
            }
            "--seeds" => {
                let v = flag_value(&mut i, "--seeds");
                seeds = v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--seeds wants an integer, got {v:?}"))
                });
            }
            "--out" => out = PathBuf::from(flag_value(&mut i, "--out")),
            c if !c.starts_with('-') => command = c.to_string(),
            other => usage_error(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Args { command, sides, seeds, out }
}

fn write_file(dir: &PathBuf, name: &str, contents: &str) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write output file");
    eprintln!("wrote {}", path.display());
}

fn run_fig4(args: &Args) {
    eprintln!("== Figure 4: depth of computed swap networks ==");
    let cells = experiments::figure4(&args.sides, args.seeds);
    println!("\n## Figure 4 — depth of computed swap networks\n");
    println!("{}", report::depth_table_markdown(&cells));
    write_file(&args.out, "fig4_depth.csv", &report::cells_to_csv(&cells));
    let chart = cells_to_chart(
        &cells,
        "Figure 4: depth of computed swap networks",
        "mean depth (layers, log scale)",
        Scale::Log,
        |c| c.mean_depth.max(1e-3),
    );
    write_file(&args.out, "fig4_depth.svg", &chart.to_svg());
}

fn run_fig5(args: &Args) {
    eprintln!("== Figure 5: time spent finding swap networks ==");
    let cells = experiments::figure5(&args.sides, args.seeds);
    println!("\n## Figure 5 — time spent on finding swap networks\n");
    println!("{}", report::time_table_markdown(&cells));
    write_file(&args.out, "fig5_time.csv", &report::cells_to_csv(&cells));
    let chart = cells_to_chart(
        &cells,
        "Figure 5: time spent on finding swap networks",
        "mean time (ms, log scale)",
        Scale::Log,
        |c| c.mean_time_ms.max(1e-4),
    );
    write_file(&args.out, "fig5_time.svg", &chart.to_svg());
}

fn run_hybrid(args: &Args) {
    eprintln!("== Hybrid clamp check (§V) ==");
    let rows = experiments::hybrid_check(&args.sides, args.seeds);
    println!("\n## Hybrid clamp (locality-aware ⊓ naive)\n");
    println!("{}", report::hybrid_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize hybrid rows");
    write_file(&args.out, "hybrid.json", &json);
}

fn run_skinny(args: &Args) {
    eprintln!("== Skinny orthogonal cycles (§V adversarial case) ==");
    let cells = experiments::skinny_sweep(&args.sides, args.seeds);
    println!("\n## Skinny orthogonal cycles — depth\n");
    println!("{}", report::depth_table_markdown(&cells));
    println!("\n## Skinny orthogonal cycles — time\n");
    println!("{}", report::time_table_markdown(&cells));
    write_file(&args.out, "skinny.csv", &report::cells_to_csv(&cells));
}

fn run_ablations(args: &Args) {
    eprintln!("== Ablations of the locality-aware router ==");
    let side = args.sides.iter().copied().max().unwrap_or(16).min(16);
    let rows = experiments::ablations(side, args.seeds);
    println!("\n## Ablations ({side}×{side})\n");
    println!("{}", report::ablation_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize ablation rows");
    write_file(&args.out, "ablations.json", &json);
}

fn run_optgap(args: &Args) {
    eprintln!("== Optimality gap vs exact BFS optimum (tiny grids) ==");
    let rows = experiments::optimality_gap(args.seeds.max(5));
    println!("\n## Optimality gap on tiny grids\n");
    println!("{}", report::optgap_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize optgap rows");
    write_file(&args.out, "optgap.json", &json);
}

fn run_transpile(args: &Args) {
    eprintln!("== End-to-end transpilation (extension) ==");
    let rows = experiments::transpile_comparison();
    println!("\n## End-to-end transpilation\n");
    println!("{}", report::transpile_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize transpile rows");
    write_file(&args.out, "transpile.json", &json);
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "fig4" => run_fig4(&args),
        "fig5" => run_fig5(&args),
        "hybrid" => run_hybrid(&args),
        "skinny" => run_skinny(&args),
        "ablations" => run_ablations(&args),
        "optgap" => run_optgap(&args),
        "transpile" => run_transpile(&args),
        "all" => {
            run_fig4(&args);
            run_fig5(&args);
            run_hybrid(&args);
            run_skinny(&args);
            run_ablations(&args);
            run_optgap(&args);
            run_transpile(&args);
        }
        other => {
            eprintln!(
                "unknown command {other}; expected fig4|fig5|hybrid|skinny|ablations|optgap|transpile|all"
            );
            std::process::exit(2);
        }
    }
}
