//! Regenerate every figure/table of the paper's evaluation, and produce
//! the machine-readable benchmark record.
//!
//! ```text
//! repro [fig4|fig5|hybrid|skinny|ablations|optgap|transpile|bench|all]
//!       [--sides 4,8,16,32] [--seeds N] [--out DIR]
//!       [--quick] [--no-time] [--baseline BENCH.json] [--check]
//! repro batch --input jobs.jsonl [--output results.jsonl]
//!       [--workers N] [--cache-capacity K] [--time]
//!       [--trace out.jsonl [--trace-format jsonl|chrome]]
//! repro batch --input jobs.jsonl --connect HOST:PORT [--output F]
//! repro serve --addr HOST:PORT [--workers N] [--cache-capacity K]
//!       [--queue-depth N] [--client-queue N]
//! repro ctl --connect HOST:PORT (--stats [--pretty] | --metrics | --shutdown)
//! repro topo --kind <grid|defect|heavy-hex|brick|torus>
//!       [--rows R] [--cols C] [--defects 6,12] [--dot]
//! ```
//!
//! Markdown tables print to stdout; CSV/JSON/SVG files land in `--out`
//! (default `results/`). The `bench` subcommand writes `BENCH.json` and,
//! with `--baseline <file> --check`, exits 1 when a gated metric
//! regressed past tolerance. The `batch` subcommand routes a JSONL job
//! stream through the `qroute_service` engine with deterministic,
//! input-ordered output — in-process by default, or through a running
//! `repro serve` daemon with `--connect`. The `serve` subcommand runs
//! the long-lived routing daemon; `ctl` queries or drains it. The
//! `topo` subcommand materializes a coupling topology and prints a
//! summary or Graphviz DOT. Run `repro --help` for the authoritative
//! usage (the `USAGE` string below).

use qroute_bench::bench::{self, BenchConfig, BenchReport};
use qroute_bench::experiments;
use qroute_bench::plot::{cells_to_chart, Scale};
use qroute_bench::report;
use qroute_service::{
    render_stats_table, ChaosConfig, Client, Daemon, Engine, EngineConfig, RetryPolicy,
    RetryingClient, RouteJob,
};
use qroute_topology::{gridlike, Grid, Topology};
use std::path::PathBuf;

struct Args {
    command: String,
    sides: Option<Vec<usize>>,
    seeds: Option<u64>,
    out: PathBuf,
    quick: bool,
    no_time: bool,
    baseline: Option<PathBuf>,
    check: bool,
    circuit_sides: Option<Vec<usize>>,
    routers: Option<Vec<String>>,
    input: Option<PathBuf>,
    output: Option<PathBuf>,
    workers: Option<usize>,
    cache_capacity: Option<usize>,
    time: bool,
    addr: Option<String>,
    queue_depth: Option<usize>,
    client_queue: Option<usize>,
    default_deadline_ms: Option<u64>,
    max_worker_restarts: Option<u64>,
    chaos_panic_every: Option<u64>,
    chaos_latency_ms: Option<u64>,
    chaos_latency_every: Option<u64>,
    chaos_drop_after_bytes: Option<u64>,
    chaos_drop_conns: Option<u32>,
    chaos_torn_writes: bool,
    retries: Option<u32>,
    retry_base_ms: Option<u64>,
    connect: Option<String>,
    stats: bool,
    metrics: bool,
    pretty: bool,
    shutdown: bool,
    trace: Option<PathBuf>,
    trace_format: Option<String>,
    kind: Option<String>,
    rows: Option<usize>,
    cols: Option<usize>,
    defects: Option<Vec<usize>>,
    dot: bool,
}

const USAGE: &str = "\
repro — regenerate the paper's figures and tables, and drive the
routing service

USAGE:
    repro [fig4|fig5|hybrid|skinny|ablations|optgap|transpile|bench|all]
          [--sides 4,8,16,32] [--seeds N] [--out DIR]
          [--quick] [--no-time] [--circuit-sides 4,8]
          [--routers pathfinder,ats]
          [--baseline BENCH.json] [--check]
    repro batch --input jobs.jsonl [--output results.jsonl]
          [--workers N] [--cache-capacity K] [--time]
          [--trace out.jsonl [--trace-format jsonl|chrome]]
    repro batch --input jobs.jsonl --connect HOST:PORT [--output F]
          [--retries N] [--retry-base-ms MS]
    repro serve --addr HOST:PORT [--workers N] [--cache-capacity K]
          [--queue-depth N] [--client-queue N]
          [--default-deadline-ms MS] [--max-worker-restarts N]
          [--chaos-panic-every N] [--chaos-latency-ms MS]
          [--chaos-latency-every N] [--chaos-drop-after-bytes B]
          [--chaos-drop-conns N] [--chaos-torn-writes]
    repro ctl --connect HOST:PORT (--stats [--pretty] | --metrics | --shutdown)
    repro topo --kind <grid|defect|heavy-hex|brick|torus>
          [--rows R] [--cols C] [--defects 6,12] [--dot]

Markdown tables print to stdout; CSV/JSON/SVG files land in --out
(default results/).

bench writes the machine-readable BENCH.json (schema v5: env metadata +
per router×class×side permutation cells with depth/size/lower-bound/time
percentiles over seeds, circuit cells with swap/routing-depth/
invocation/time percentiles over verified transpiles, defect cells
routing non-grid topologies per topology×router×side, service cells
with jobs/sec + cache hit rate per side×workers, and daemon cells
replaying the example batch through a live TCP daemon per
concurrent-client count) to --out.
Bench-only flags:
    --quick           CI gate config: 2 seeds, timing off (deterministic)
    --no-time         skip wall-clock capture (byte-stable output)
    --circuit-sides S circuit-matrix sides (default: same as --sides
                      when given, else the config's {4,8}; every side
                      must fit the 10-qubit QASM replay fixture)
    --routers R,S     smoke mode: run only the permutation matrix,
                      restricted to the named routers (labels as in the
                      support matrix, e.g. pathfinder,ats); skips the
                      circuit/defect/service/daemon matrices and cannot
                      combine with --baseline
    --baseline F      compare against a committed BENCH.json
    --check           with --baseline: exit 1 on regression
                      (per-class depth/swap tolerance; mean time +25%;
                      pathfinder permutation cells always get 5%)

batch routes a JSONL job stream through the multi-worker service engine
(one {\"side\", \"router\", \"perm\"|\"class\"+\"seed\"} object per line;
router is a label or \"auto\") and writes one outcome line per job, in
input order. Output bytes are deterministic for fixed inputs regardless
of --workers unless --time is given. Malformed jobs become per-job error
outcomes and set exit code 1. With --connect, the same job stream is
replayed through a running `repro serve` daemon instead of an in-process
engine; the outcome bytes are identical to the in-process (untimed) run.
Batch flags:
    --input F         JSONL jobs file (required)
    --output F        results file (default: stdout)
    --workers N       engine worker threads (default 4; local mode only)
    --cache-capacity K  canonical-cache entries (default 1024, 0 = off;
                      local mode only)
    --time            record per-job routing time (non-deterministic;
                      local mode only)
    --trace F         write a structured trace of router internals
                      (phase spans, per-round counters, cache and
                      dispatch events) to F; local mode only. Routing
                      output bytes are unchanged by tracing.
    --trace-format X  trace encoding: jsonl (default; one record per
                      line) or chrome (trace_event array for
                      chrome://tracing / Perfetto)
    --connect A       route through the daemon at A (host:port)
    --retries N       with --connect: reconnect and resubmit unanswered
                      jobs up to N times per job on retry-safe errors
                      (backpressure, io, shutdown); default 0 = one
                      connection, fail fast
    --retry-base-ms MS  with --retries: first backoff step (must be
                      >= 1; doubles per attempt, clamped to the policy
                      cap of 1000 ms before jitter; default 10)

serve runs the long-lived routing daemon: a TCP server speaking the
same JSONL wire format, one request line in, one outcome line out, any
number of concurrent client connections. Outcome order and bytes per
connection match an untimed `repro batch` of the same lines. Stops on a
`repro ctl --shutdown` (graceful drain: admitted jobs finish first).
Serve flags:
    --addr A          listen address, e.g. 127.0.0.1:7878 (required;
                      port 0 picks an ephemeral port)
    --workers N       routing worker threads (default 4)
    --cache-capacity K  shared canonical-cache entries (default 1024)
    --queue-depth N   routing work-queue bound (default 32)
    --client-queue N  per-connection in-flight job limit; jobs past it
                      are rejected with a backpressure error outcome
                      (default 256)
    --default-deadline-ms MS  deadline for jobs that carry none; a job
                      past its deadline answers with a timeout outcome
                      (default: unbounded)
    --max-worker-restarts N  supervised respawn budget for crashed
                      routing workers (default 64)
Chaos flags (fault injection for resilience testing; off by default):
    --chaos-panic-every N     panic the worker on every Nth compute
    --chaos-latency-ms MS     injected latency per targeted compute
    --chaos-latency-every N   target every Nth compute with the latency
                              (default 1 when --chaos-latency-ms is set)
    --chaos-drop-after-bytes B  sever each of the first --chaos-drop-conns
                              connections after ~B outcome bytes
    --chaos-drop-conns N      how many connections to sever (default 1
                              when --chaos-drop-after-bytes is set)
    --chaos-torn-writes       tear the final line in half when severing

ctl sends one control request to a running daemon and prints the
response line on stdout.
Ctl flags:
    --connect A       daemon address (required)
    --stats           request the counter snapshot (one JSON line)
    --pretty          with --stats: render the snapshot as an aligned
                      text table instead of raw JSON
    --metrics         request the Prometheus text exposition of the
                      daemon's metrics registry (counters, gauges,
                      latency histogram) and print it verbatim
    --shutdown        request a graceful drain-and-exit

topo materializes one coupling topology and prints a one-line summary
(vertex/edge counts), or its Graphviz DOT with --dot.
Topo-only flags:
    --kind K          grid | defect | heavy-hex | brick | torus (required)
    --rows R          row count (default 4)
    --cols C          column count (default 4)
    --defects LIST    comma-separated dead vertex ids (defect kind only)
    --dot             emit Graphviz DOT on stdout instead of the summary";

fn usage_error(msg: String) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut command: Option<String> = None;
    let mut sides: Option<Vec<usize>> = None;
    let mut seeds: Option<u64> = None;
    let mut out = PathBuf::from("results");
    let mut quick = false;
    let mut no_time = false;
    let mut baseline: Option<PathBuf> = None;
    let mut check = false;
    let mut circuit_sides: Option<Vec<usize>> = None;
    let mut routers: Option<Vec<String>> = None;
    let mut input: Option<PathBuf> = None;
    let mut output: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut cache_capacity: Option<usize> = None;
    let mut time = false;
    let mut addr: Option<String> = None;
    let mut queue_depth: Option<usize> = None;
    let mut client_queue: Option<usize> = None;
    let mut default_deadline_ms: Option<u64> = None;
    let mut max_worker_restarts: Option<u64> = None;
    let mut chaos_panic_every: Option<u64> = None;
    let mut chaos_latency_ms: Option<u64> = None;
    let mut chaos_latency_every: Option<u64> = None;
    let mut chaos_drop_after_bytes: Option<u64> = None;
    let mut chaos_drop_conns: Option<u32> = None;
    let mut chaos_torn_writes = false;
    let mut retries: Option<u32> = None;
    let mut retry_base_ms: Option<u64> = None;
    let mut connect: Option<String> = None;
    let mut stats = false;
    let mut metrics = false;
    let mut pretty = false;
    let mut shutdown = false;
    let mut trace: Option<PathBuf> = None;
    let mut trace_format: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut rows: Option<usize> = None;
    let mut cols: Option<usize> = None;
    let mut defects: Option<Vec<usize>> = None;
    let mut dot = false;
    let mut out_set = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        match argv.get(*i) {
            // A following flag token is a missing value, not a value —
            // otherwise `--out --check` silently eats the next flag.
            Some(v) if !v.starts_with('-') => v.clone(),
            _ => usage_error(format!("{flag} requires a value")),
        }
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--sides" => {
                sides = Some(
                    flag_value(&mut i, "--sides")
                        .split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                usage_error(format!("--sides wants integers, got {s:?}"))
                            })
                        })
                        .collect(),
                );
            }
            "--circuit-sides" => {
                circuit_sides = Some(
                    flag_value(&mut i, "--circuit-sides")
                        .split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                usage_error(format!("--circuit-sides wants integers, got {s:?}"))
                            })
                        })
                        .collect(),
                );
            }
            "--seeds" => {
                let v = flag_value(&mut i, "--seeds");
                seeds = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--seeds wants an integer, got {v:?}"))
                }));
            }
            "--out" => {
                out = PathBuf::from(flag_value(&mut i, "--out"));
                out_set = true;
            }
            "--quick" => quick = true,
            "--no-time" => no_time = true,
            "--routers" => {
                routers = Some(
                    flag_value(&mut i, "--routers")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--baseline" => baseline = Some(PathBuf::from(flag_value(&mut i, "--baseline"))),
            "--check" => check = true,
            "--input" => input = Some(PathBuf::from(flag_value(&mut i, "--input"))),
            "--output" => output = Some(PathBuf::from(flag_value(&mut i, "--output"))),
            "--workers" => {
                let v = flag_value(&mut i, "--workers");
                let parsed = v
                    .parse()
                    .ok()
                    .filter(|&w: &usize| w >= 1)
                    .unwrap_or_else(|| {
                        usage_error(format!("--workers wants a positive integer, got {v:?}"))
                    });
                workers = Some(parsed);
            }
            "--cache-capacity" => {
                let v = flag_value(&mut i, "--cache-capacity");
                cache_capacity = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--cache-capacity wants an integer, got {v:?}"))
                }));
            }
            "--time" => time = true,
            "--addr" => addr = Some(flag_value(&mut i, "--addr")),
            "--queue-depth" => {
                let v = flag_value(&mut i, "--queue-depth");
                queue_depth = Some(v.parse().ok().filter(|&d: &usize| d >= 1).unwrap_or_else(
                    || usage_error(format!("--queue-depth wants a positive integer, got {v:?}")),
                ));
            }
            "--client-queue" => {
                let v = flag_value(&mut i, "--client-queue");
                client_queue = Some(v.parse().ok().filter(|&d: &usize| d >= 1).unwrap_or_else(
                    || {
                        usage_error(format!(
                            "--client-queue wants a positive integer, got {v:?}"
                        ))
                    },
                ));
            }
            "--default-deadline-ms" => {
                let v = flag_value(&mut i, "--default-deadline-ms");
                default_deadline_ms = Some(
                    v.parse()
                        .ok()
                        .filter(|&ms: &u64| ms >= 1)
                        .unwrap_or_else(|| {
                            usage_error(format!(
                                "--default-deadline-ms wants a positive integer, got {v:?}"
                            ))
                        }),
                );
            }
            "--max-worker-restarts" => {
                let v = flag_value(&mut i, "--max-worker-restarts");
                max_worker_restarts = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--max-worker-restarts wants an integer, got {v:?}"))
                }));
            }
            "--chaos-panic-every" => {
                let v = flag_value(&mut i, "--chaos-panic-every");
                chaos_panic_every = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--chaos-panic-every wants an integer, got {v:?}"))
                }));
            }
            "--chaos-latency-ms" => {
                let v = flag_value(&mut i, "--chaos-latency-ms");
                chaos_latency_ms = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--chaos-latency-ms wants an integer, got {v:?}"))
                }));
            }
            "--chaos-latency-every" => {
                let v = flag_value(&mut i, "--chaos-latency-every");
                chaos_latency_every = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--chaos-latency-every wants an integer, got {v:?}"))
                }));
            }
            "--chaos-drop-after-bytes" => {
                let v = flag_value(&mut i, "--chaos-drop-after-bytes");
                chaos_drop_after_bytes = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!(
                        "--chaos-drop-after-bytes wants an integer, got {v:?}"
                    ))
                }));
            }
            "--chaos-drop-conns" => {
                let v = flag_value(&mut i, "--chaos-drop-conns");
                chaos_drop_conns = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--chaos-drop-conns wants an integer, got {v:?}"))
                }));
            }
            "--chaos-torn-writes" => chaos_torn_writes = true,
            "--retries" => {
                let v = flag_value(&mut i, "--retries");
                retries = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(format!("--retries wants an integer, got {v:?}"))
                }));
            }
            "--retry-base-ms" => {
                let v = flag_value(&mut i, "--retry-base-ms");
                retry_base_ms = Some(v.parse().ok().filter(|&ms: &u64| ms >= 1).unwrap_or_else(
                    || {
                        usage_error(format!(
                            "--retry-base-ms wants a positive integer, got {v:?}"
                        ))
                    },
                ));
            }
            "--connect" => connect = Some(flag_value(&mut i, "--connect")),
            "--stats" => stats = true,
            "--metrics" => metrics = true,
            "--pretty" => pretty = true,
            "--shutdown" => shutdown = true,
            "--trace" => trace = Some(PathBuf::from(flag_value(&mut i, "--trace"))),
            "--trace-format" => {
                let v = flag_value(&mut i, "--trace-format");
                if v != "jsonl" && v != "chrome" {
                    usage_error(format!("--trace-format wants jsonl or chrome, got {v:?}"));
                }
                trace_format = Some(v);
            }
            "--kind" => kind = Some(flag_value(&mut i, "--kind")),
            "--rows" => {
                let v = flag_value(&mut i, "--rows");
                rows = Some(
                    v.parse()
                        .ok()
                        .filter(|&r: &usize| r >= 1)
                        .unwrap_or_else(|| {
                            usage_error(format!("--rows wants a positive integer, got {v:?}"))
                        }),
                );
            }
            "--cols" => {
                let v = flag_value(&mut i, "--cols");
                cols = Some(
                    v.parse()
                        .ok()
                        .filter(|&c: &usize| c >= 1)
                        .unwrap_or_else(|| {
                            usage_error(format!("--cols wants a positive integer, got {v:?}"))
                        }),
                );
            }
            "--defects" => {
                defects = Some(
                    flag_value(&mut i, "--defects")
                        .split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                usage_error(format!("--defects wants integers, got {s:?}"))
                            })
                        })
                        .collect(),
                );
            }
            "--dot" => dot = true,
            c if !c.starts_with('-') => match &command {
                None => command = Some(c.to_string()),
                Some(first) => usage_error(format!(
                    "unexpected second command {c:?} (already got {first:?})"
                )),
            },
            other => usage_error(format!("unknown flag {other}")),
        }
        i += 1;
    }
    let command = command.unwrap_or_else(|| "all".to_string());
    if command != "bench" {
        for (given, flag) in [
            (quick, "--quick"),
            (no_time, "--no-time"),
            (baseline.is_some(), "--baseline"),
            (check, "--check"),
            (circuit_sides.is_some(), "--circuit-sides"),
            (routers.is_some(), "--routers"),
        ] {
            if given {
                usage_error(format!("{flag} only applies to the bench command"));
            }
        }
    }
    if let Some(routers) = &routers {
        if routers.is_empty() {
            usage_error("--routers wants a non-empty router list".to_string());
        }
        if baseline.is_some() {
            usage_error(
                "--routers runs a partial matrix and cannot be checked against a \
                 full --baseline"
                    .to_string(),
            );
        }
    }
    if command != "batch" {
        for (given, flag) in [
            (input.is_some(), "--input"),
            (output.is_some(), "--output"),
            (time, "--time"),
        ] {
            if given {
                usage_error(format!("{flag} only applies to the batch command"));
            }
        }
    }
    if command != "batch" && command != "serve" {
        for (given, flag) in [
            (workers.is_some(), "--workers"),
            (cache_capacity.is_some(), "--cache-capacity"),
        ] {
            if given {
                usage_error(format!(
                    "{flag} only applies to the batch and serve commands"
                ));
            }
        }
    }
    if command != "serve" {
        for (given, flag) in [
            (addr.is_some(), "--addr"),
            (queue_depth.is_some(), "--queue-depth"),
            (client_queue.is_some(), "--client-queue"),
            (default_deadline_ms.is_some(), "--default-deadline-ms"),
            (max_worker_restarts.is_some(), "--max-worker-restarts"),
            (chaos_panic_every.is_some(), "--chaos-panic-every"),
            (chaos_latency_ms.is_some(), "--chaos-latency-ms"),
            (chaos_latency_every.is_some(), "--chaos-latency-every"),
            (chaos_drop_after_bytes.is_some(), "--chaos-drop-after-bytes"),
            (chaos_drop_conns.is_some(), "--chaos-drop-conns"),
            (chaos_torn_writes, "--chaos-torn-writes"),
        ] {
            if given {
                usage_error(format!("{flag} only applies to the serve command"));
            }
        }
    } else if addr.is_none() {
        usage_error("serve requires --addr <host:port>".to_string());
    }
    if command != "batch" && command != "ctl" && connect.is_some() {
        usage_error("--connect only applies to the batch and ctl commands".to_string());
    }
    if command != "ctl" {
        for (given, flag) in [
            (stats, "--stats"),
            (metrics, "--metrics"),
            (pretty, "--pretty"),
            (shutdown, "--shutdown"),
        ] {
            if given {
                usage_error(format!("{flag} only applies to the ctl command"));
            }
        }
    } else {
        if connect.is_none() {
            usage_error("ctl requires --connect <host:port>".to_string());
        }
        if [stats, metrics, shutdown].iter().filter(|&&b| b).count() != 1 {
            usage_error(
                "ctl requires exactly one of --stats, --metrics, or --shutdown".to_string(),
            );
        }
        if pretty && !stats {
            usage_error("--pretty only applies to ctl --stats".to_string());
        }
    }
    if matches!(command.as_str(), "batch" | "serve" | "ctl") {
        // The sweep/bench flags mean nothing to the service layer.
        for (given, flag) in [
            (sides.is_some(), "--sides"),
            (seeds.is_some(), "--seeds"),
            (out_set, "--out"),
        ] {
            if given {
                usage_error(format!("{flag} does not apply to the {command} command"));
            }
        }
    }
    if command != "batch" {
        for (given, flag) in [
            (retries.is_some(), "--retries"),
            (retry_base_ms.is_some(), "--retry-base-ms"),
        ] {
            if given {
                usage_error(format!("{flag} only applies to the batch command"));
            }
        }
    }
    if command != "batch" {
        for (given, flag) in [
            (trace.is_some(), "--trace"),
            (trace_format.is_some(), "--trace-format"),
        ] {
            if given {
                usage_error(format!("{flag} only applies to the batch command"));
            }
        }
    }
    if trace_format.is_some() && trace.is_none() {
        usage_error("--trace-format requires --trace".to_string());
    }
    if command == "batch" {
        if input.is_none() {
            usage_error("batch requires --input <jobs.jsonl>".to_string());
        }
        if connect.is_none() {
            for (given, flag) in [
                (retries.is_some(), "--retries"),
                (retry_base_ms.is_some(), "--retry-base-ms"),
            ] {
                if given {
                    usage_error(format!(
                        "{flag} only applies when batch routes through --connect \
                         (an in-process engine has no connection to retry)"
                    ));
                }
            }
        }
        if retry_base_ms.is_some() && retries.is_none() {
            usage_error("--retry-base-ms requires --retries".to_string());
        }
        if connect.is_some() {
            // The daemon owns the engine configuration; timing is off by
            // design so daemon outcomes stay batch-identical.
            for (given, flag) in [
                (workers.is_some(), "--workers"),
                (cache_capacity.is_some(), "--cache-capacity"),
                (time, "--time"),
                (trace.is_some(), "--trace"),
            ] {
                if given {
                    usage_error(format!(
                        "{flag} does not apply when batch routes through --connect \
                         (the daemon owns its engine configuration)"
                    ));
                }
            }
        }
    }
    if command != "topo" {
        for (given, flag) in [
            (kind.is_some(), "--kind"),
            (rows.is_some(), "--rows"),
            (cols.is_some(), "--cols"),
            (defects.is_some(), "--defects"),
            (dot, "--dot"),
        ] {
            if given {
                usage_error(format!("{flag} only applies to the topo command"));
            }
        }
    } else if kind.is_none() {
        usage_error("topo requires --kind <grid|defect|heavy-hex|brick|torus>".to_string());
    }
    if check && baseline.is_none() {
        usage_error("--check requires --baseline".to_string());
    }
    Args {
        command,
        sides,
        seeds,
        out,
        quick,
        no_time,
        baseline,
        check,
        circuit_sides,
        routers,
        input,
        output,
        workers,
        cache_capacity,
        time,
        addr,
        queue_depth,
        client_queue,
        default_deadline_ms,
        max_worker_restarts,
        chaos_panic_every,
        chaos_latency_ms,
        chaos_latency_every,
        chaos_drop_after_bytes,
        chaos_drop_conns,
        chaos_torn_writes,
        retries,
        retry_base_ms,
        connect,
        stats,
        metrics,
        pretty,
        shutdown,
        trace,
        trace_format,
        kind,
        rows,
        cols,
        defects,
        dot,
    }
}

impl Args {
    /// Sweep sides: `--sides` override or the experiment defaults.
    fn sweep_sides(&self) -> Vec<usize> {
        self.sides
            .clone()
            .unwrap_or_else(experiments::default_sides)
    }

    /// Seeds per cell: `--seeds` override or 5.
    fn sweep_seeds(&self) -> u64 {
        self.seeds.unwrap_or(5)
    }

    /// The bench-matrix configuration implied by the flags. `--sides`
    /// scopes both matrices (so `--sides 4` runs a genuinely tiny bench)
    /// unless `--circuit-sides` picks the circuit sides explicitly;
    /// `--seeds` likewise sets both seed counts.
    fn bench_config(&self) -> BenchConfig {
        let mut config = if self.quick {
            BenchConfig::quick()
        } else {
            BenchConfig::full()
        };
        if let Some(sides) = &self.sides {
            config.sides = sides.clone();
            config.circuit_sides = sides.clone();
            config.defect_sides = sides.clone();
        }
        if let Some(circuit_sides) = &self.circuit_sides {
            config.circuit_sides = circuit_sides.clone();
        }
        if let Some(seeds) = self.seeds {
            config.seeds = seeds;
            config.circuit_seeds = seeds;
            config.defect_seeds = seeds;
        }
        if self.no_time {
            config.timing = false;
        }
        // The replay fixture needs 10 qubits: fail fast on sides < 4
        // instead of panicking mid-measurement.
        if let Some(&side) = config.circuit_sides.iter().find(|&&s| s * s < 10) {
            usage_error(format!(
                "circuit side {side} cannot hold the 10-qubit replay fixture (need side >= 4)"
            ));
        }
        config
    }
}

fn write_file(dir: &PathBuf, name: &str, contents: &str) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write output file");
    eprintln!("wrote {}", path.display());
}

fn run_fig4(args: &Args) {
    eprintln!("== Figure 4: depth of computed swap networks ==");
    let cells = experiments::figure4(&args.sweep_sides(), args.sweep_seeds());
    println!("\n## Figure 4 — depth of computed swap networks\n");
    println!("{}", report::depth_table_markdown(&cells));
    write_file(&args.out, "fig4_depth.csv", &report::cells_to_csv(&cells));
    let chart = cells_to_chart(
        &cells,
        "Figure 4: depth of computed swap networks",
        "mean depth (layers, log scale)",
        Scale::Log,
        |c| c.mean_depth.max(1e-3),
    );
    write_file(&args.out, "fig4_depth.svg", &chart.to_svg());
}

fn run_fig5(args: &Args) {
    eprintln!("== Figure 5: time spent finding swap networks ==");
    let cells = experiments::figure5(&args.sweep_sides(), args.sweep_seeds());
    println!("\n## Figure 5 — time spent on finding swap networks\n");
    println!("{}", report::time_table_markdown(&cells));
    write_file(&args.out, "fig5_time.csv", &report::cells_to_csv(&cells));
    let chart = cells_to_chart(
        &cells,
        "Figure 5: time spent on finding swap networks",
        "mean time (ms, log scale)",
        Scale::Log,
        |c| c.mean_time_ms.max(1e-4),
    );
    write_file(&args.out, "fig5_time.svg", &chart.to_svg());
}

fn run_hybrid(args: &Args) {
    eprintln!("== Hybrid clamp check (§V) ==");
    let rows = experiments::hybrid_check(&args.sweep_sides(), args.sweep_seeds());
    println!("\n## Hybrid clamp (locality-aware ⊓ naive)\n");
    println!("{}", report::hybrid_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize hybrid rows");
    write_file(&args.out, "hybrid.json", &json);
}

fn run_skinny(args: &Args) {
    eprintln!("== Skinny orthogonal cycles (§V adversarial case) ==");
    let cells = experiments::skinny_sweep(&args.sweep_sides(), args.sweep_seeds());
    println!("\n## Skinny orthogonal cycles — depth\n");
    println!("{}", report::depth_table_markdown(&cells));
    println!("\n## Skinny orthogonal cycles — time\n");
    println!("{}", report::time_table_markdown(&cells));
    write_file(&args.out, "skinny.csv", &report::cells_to_csv(&cells));
}

fn run_ablations(args: &Args) {
    eprintln!("== Ablations of the locality-aware router ==");
    let side = args
        .sweep_sides()
        .iter()
        .copied()
        .max()
        .unwrap_or(16)
        .min(16);
    let rows = experiments::ablations(side, args.sweep_seeds());
    println!("\n## Ablations ({side}×{side})\n");
    println!("{}", report::ablation_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize ablation rows");
    write_file(&args.out, "ablations.json", &json);
}

fn run_optgap(args: &Args) {
    eprintln!("== Optimality gap vs exact BFS optimum (tiny grids) ==");
    let rows = experiments::optimality_gap(args.sweep_seeds().max(5));
    println!("\n## Optimality gap on tiny grids\n");
    println!("{}", report::optgap_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize optgap rows");
    write_file(&args.out, "optgap.json", &json);
}

fn run_transpile(args: &Args) {
    eprintln!("== End-to-end transpilation (extension) ==");
    let rows = experiments::transpile_comparison();
    println!("\n## End-to-end transpilation\n");
    println!("{}", report::transpile_markdown(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serialize transpile rows");
    write_file(&args.out, "transpile.json", &json);
}

/// Resolve `--routers` labels against the bench router axis, failing
/// fast on a label the matrix does not know.
fn resolve_router_labels(labels: &[String]) -> Vec<qroute_core::RouterKind> {
    let axis = bench::bench_routers();
    labels
        .iter()
        .map(|label| {
            axis.iter()
                .find(|r| r.label() == label)
                .cloned()
                .unwrap_or_else(|| {
                    let known: Vec<&str> = axis.iter().map(|r| r.label()).collect();
                    usage_error(format!(
                        "--routers got unknown router {label:?} (known: {})",
                        known.join(", ")
                    ))
                })
        })
        .collect()
}

fn run_bench_cmd(args: &Args) {
    let config = args.bench_config();
    if let Some(labels) = &args.routers {
        let routers = resolve_router_labels(labels);
        eprintln!(
            "== Router smoke: {} routers × {} permutation classes × sides {:?}, {} seeds; \
             timing {} ==",
            routers.len(),
            qroute_bench::workloads::WorkloadClass::bench_classes().len(),
            config.sides,
            config.seeds,
            if config.timing { "on" } else { "off" },
        );
        let report = bench::run_router_smoke(&config, &routers);
        write_file(&args.out, "BENCH.json", &report.to_json());
        eprintln!(
            "{} permutation cells measured (schema v{}); every schedule verified",
            report.cells.len(),
            report.schema_version
        );
        return;
    }
    // Load and validate the baseline up front: a typo'd path or stale
    // schema should fail instantly, not after minutes of measurement.
    let baseline = args.baseline.as_ref().map(|baseline_path| {
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!(
                "error: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            std::process::exit(2);
        });
        BenchReport::from_json(&text).unwrap_or_else(|e| {
            eprintln!("error: malformed baseline {}: {e}", baseline_path.display());
            std::process::exit(2);
        })
    });
    eprintln!(
        "== Benchmark matrix: {} routers × {} permutation classes × sides {:?}, {} seeds; \
         {} routers × {} circuit classes × sides {:?}, {} seeds; \
         {} topologies × {} routers × sides {:?}, {} seeds; timing {} ==",
        bench::bench_routers().len(),
        qroute_bench::workloads::WorkloadClass::bench_classes().len(),
        config.sides,
        config.seeds,
        bench::circuit_routers().len(),
        qroute_bench::circuits::CircuitClass::all_classes().len(),
        config.circuit_sides,
        config.circuit_seeds,
        bench::DEFECT_TOPOLOGY_AXIS.len(),
        bench::DEFECT_ROUTER_AXIS.len(),
        config.defect_sides,
        config.defect_seeds,
        if config.timing { "on" } else { "off" },
    );
    let current = bench::run_bench(&config);
    write_file(&args.out, "BENCH.json", &current.to_json());
    let statevector_cells = current
        .circuit_cells
        .iter()
        .filter(|c| c.statevector_checked)
        .count();
    eprintln!(
        "{} permutation cells + {} circuit cells + {} defect cells measured (schema v{}); \
         every transpile verified, {statevector_cells} circuit cells statevector-checked",
        current.cells.len(),
        current.circuit_cells.len(),
        current.defect_cells.len(),
        current.schema_version
    );

    let (Some(baseline), Some(baseline_path)) = (baseline, &args.baseline) else {
        return;
    };
    let outcome = bench::check_against_baseline(&current, &baseline);
    let regressions = outcome.regressions();
    eprintln!(
        "baseline {}: {} comparisons, {} regressions, {} baseline cells missing, \
         {} new cells, {} seed mismatches",
        baseline_path.display(),
        outcome.deltas.len(),
        regressions.len(),
        outcome.missing_in_current.len(),
        outcome.new_in_current.len(),
        outcome.seed_mismatches.len(),
    );
    if outcome.passed() {
        println!(
            "\n## Bench check: OK ({} comparisons within tolerance)\n",
            outcome.deltas.len()
        );
        return;
    }
    println!("\n## Bench check: REGRESSED\n");
    if !regressions.is_empty() {
        println!("{}", bench::delta_table_markdown(&regressions));
    }
    for key in &outcome.missing_in_current {
        println!("- baseline cell `{key}` missing from this run");
    }
    for key in &outcome.seed_mismatches {
        println!("- seed-count mismatch `{key}` (rerun with the baseline's --seeds)");
    }
    if args.check {
        std::process::exit(1);
    }
}

/// Route a JSONL job stream through the service engine: one outcome
/// line per job, in input order. Exit 1 when any job errored (after
/// writing every outcome), 2 on I/O problems. With `--connect`, the
/// stream is replayed through a running daemon instead; the outcome
/// bytes are identical to the in-process (untimed) run.
/// The installed `--trace` subscriber for a local batch run. Installed
/// globally (the engine routes jobs on its own worker threads, which a
/// thread-local subscriber would never arm); [`BatchTracer::finish`]
/// disarms and closes the output.
enum BatchTracer {
    Jsonl(std::sync::Arc<qroute_obs::trace::JsonlSubscriber>),
    Chrome(std::sync::Arc<qroute_obs::trace::ChromeSubscriber>),
}

impl BatchTracer {
    fn install(path: &std::path::Path, format: Option<&str>) -> BatchTracer {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {}: {e}", path.display());
            std::process::exit(2);
        });
        let writer: Box<dyn std::io::Write + Send> = Box::new(std::io::BufWriter::new(file));
        let (tracer, sub): (
            BatchTracer,
            std::sync::Arc<dyn qroute_obs::trace::Subscriber>,
        ) = match format {
            Some("chrome") => {
                let sub = std::sync::Arc::new(qroute_obs::trace::ChromeSubscriber::new(writer));
                (BatchTracer::Chrome(std::sync::Arc::clone(&sub)), sub)
            }
            _ => {
                let sub = std::sync::Arc::new(qroute_obs::trace::JsonlSubscriber::new(writer));
                (BatchTracer::Jsonl(std::sync::Arc::clone(&sub)), sub)
            }
        };
        qroute_obs::trace::install_global(Some(sub));
        tracer
    }

    fn finish(self) {
        qroute_obs::trace::install_global(None);
        match self {
            BatchTracer::Jsonl(sub) => sub.finish(),
            BatchTracer::Chrome(sub) => sub.finish(),
        }
    }
}

fn run_batch_cmd(args: &Args) {
    let input_path = args.input.as_ref().expect("parse_args enforced --input");
    let text = std::fs::read_to_string(input_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", input_path.display());
        std::process::exit(2);
    });
    let mut sink: Box<dyn std::io::Write> = match &args.output {
        Some(path) => {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("error: cannot create {}: {e}", path.display());
                std::process::exit(2);
            });
            Box::new(std::io::BufWriter::new(file))
        }
        None => Box::new(std::io::stdout().lock()),
    };
    if let Some(connect) = &args.connect {
        run_batch_via_daemon(connect, args, &text, &mut *sink);
        return;
    }
    let tracer = args
        .trace
        .as_ref()
        .map(|path| BatchTracer::install(path, args.trace_format.as_deref()));
    let config = EngineConfig::builder()
        .workers(args.workers.unwrap_or(4))
        .cache_capacity(args.cache_capacity.unwrap_or(1024))
        .timing(args.time)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
    let mut engine = Engine::new(config);
    // Interleave submission and (id-ordered) collection so resident
    // results stay bounded by the window, not the stream length.
    const PENDING_WINDOW: usize = 1024;
    let mut errors = 0usize;
    let mut collect_one = |engine: &mut Engine, sink: &mut dyn std::io::Write| {
        if let Some(result) = engine.collect_next() {
            if result.outcome.error.is_some() {
                errors += 1;
            }
            writeln!(sink, "{}", result.outcome.to_json_line()).expect("write outcome line");
        }
    };
    let t0 = std::time::Instant::now();
    let mut submitted = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue; // blank lines separate sections, they are not jobs
        }
        match RouteJob::from_json_line(line) {
            Ok(job) => engine.submit(&job),
            Err(e) => engine.submit_error(e),
        };
        submitted += 1;
        while engine.pending_len() > PENDING_WINDOW {
            collect_one(&mut engine, &mut *sink);
        }
    }
    while engine.pending_len() > 0 {
        collect_one(&mut engine, &mut *sink);
    }
    sink.flush().expect("flush outcomes");
    drop(sink);
    if let Some(tracer) = tracer {
        tracer.finish();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = engine.cache_stats();
    eprintln!(
        "batch summary: jobs={submitted} errors={errors} hits={} misses={} evictions={} \
         hit_rate={:.3} workers={} jobs_per_sec={:.1}",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate(),
        engine.config().workers,
        if elapsed > 0.0 {
            submitted as f64 / elapsed
        } else {
            0.0
        },
    );
    if errors > 0 {
        std::process::exit(1);
    }
}

/// Replay a job stream through a running daemon: same per-line
/// protocol, same outcome bytes as the in-process engine. With
/// `--retries`, a [`RetryingClient`] reconnects and resubmits
/// unanswered jobs on retry-safe errors instead of failing fast.
fn run_batch_via_daemon(addr: &str, args: &Args, text: &str, sink: &mut dyn std::io::Write) {
    let (outcomes, resubmissions) = match args.retries {
        Some(max_retries) if max_retries > 0 => {
            let base_ms = args.retry_base_ms.unwrap_or(10);
            let policy = RetryPolicy {
                max_retries,
                base_ms,
                // A base above the default cap would clamp to the cap on
                // the very first attempt; grow the cap with the base.
                max_ms: base_ms.max(RetryPolicy::default().max_ms),
            };
            let mut client = RetryingClient::new(addr, policy).unwrap_or_else(|e| {
                eprintln!("error: cannot set up retrying client for {addr}: {e}");
                std::process::exit(2);
            });
            let outcomes = client.route_lines(text.lines()).unwrap_or_else(|e| {
                eprintln!("error: daemon connection to {addr} failed: {e}");
                std::process::exit(2);
            });
            (outcomes, client.retries())
        }
        _ => {
            let mut client = Client::connect(addr).unwrap_or_else(|e| {
                eprintln!("error: cannot connect to {addr}: {e}");
                std::process::exit(2);
            });
            let outcomes = client.route_lines(text.lines()).unwrap_or_else(|e| {
                eprintln!("error: daemon connection to {addr} failed: {e}");
                std::process::exit(2);
            });
            (outcomes, 0)
        }
    };
    let mut errors = 0usize;
    for line in &outcomes {
        if !line.ends_with("\"error\":null}") {
            errors += 1;
        }
        writeln!(sink, "{line}").expect("write outcome line");
    }
    sink.flush().expect("flush outcomes");
    eprintln!(
        "batch summary: jobs={} errors={errors} daemon={addr} resubmissions={resubmissions}",
        outcomes.len()
    );
    if errors > 0 {
        std::process::exit(1);
    }
}

/// Run the routing daemon until a `repro ctl --shutdown` (or SIGKILL)
/// stops it; print the listen address up front and the drained counter
/// summary on exit, both on stderr.
fn run_serve_cmd(args: &Args) {
    let addr = args.addr.as_deref().expect("parse_args enforced --addr");
    let mut builder = EngineConfig::builder();
    if let Some(workers) = args.workers {
        builder = builder.workers(workers);
    }
    if let Some(capacity) = args.cache_capacity {
        builder = builder.cache_capacity(capacity);
    }
    if let Some(depth) = args.queue_depth {
        builder = builder.queue_depth(depth);
    }
    if let Some(depth) = args.client_queue {
        builder = builder.client_queue_depth(depth);
    }
    if let Some(ms) = args.default_deadline_ms {
        builder = builder.default_deadline_ms(ms);
    }
    if let Some(n) = args.max_worker_restarts {
        builder = builder.max_worker_restarts(n);
    }
    let chaos = ChaosConfig {
        worker_panic_every: args.chaos_panic_every.unwrap_or(0),
        latency_ms: args.chaos_latency_ms.unwrap_or(0),
        // --chaos-latency-ms alone means "every compute".
        latency_every: args
            .chaos_latency_every
            .unwrap_or(u64::from(args.chaos_latency_ms.is_some())),
        drop_connection_after_bytes: args.chaos_drop_after_bytes,
        // --chaos-drop-after-bytes alone means "the first connection".
        drop_connections: args
            .chaos_drop_conns
            .unwrap_or(u32::from(args.chaos_drop_after_bytes.is_some())),
        torn_writes: args.chaos_torn_writes,
    };
    if chaos.is_armed() {
        eprintln!("warning: chaos armed — this daemon will inject faults on purpose");
        builder = builder.chaos(chaos);
    }
    let config = builder.build().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let daemon = Daemon::bind(addr, config).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    eprintln!("listening on {}", daemon.local_addr());
    let stats = daemon.join();
    eprintln!(
        "daemon summary: jobs={} errors={} connections={} hits={} misses={} evictions={} \
         hit_rate={:.3} timeouts={} worker_restarts={} retries_observed={}",
        stats.jobs_routed,
        stats.jobs_errored,
        stats.connections,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.hit_rate,
        stats.timeouts,
        stats.worker_restarts,
        stats.retries_observed,
    );
}

/// Send one control request to a running daemon and print the response
/// line on stdout. Exit 2 when the daemon is unreachable.
fn run_ctl_cmd(args: &Args) {
    let addr = args
        .connect
        .as_deref()
        .expect("parse_args enforced --connect");
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {addr}: {e}");
        std::process::exit(2);
    });
    let response = if args.stats {
        client.stats()
    } else if args.metrics {
        client.metrics()
    } else {
        assert!(
            args.shutdown,
            "parse_args enforced exactly one ctl request flag"
        );
        client.shutdown_server()
    };
    let line = match response {
        Ok(line) => line,
        Err(e) => {
            eprintln!("error: daemon connection to {addr} failed: {e}");
            std::process::exit(2);
        }
    };
    if args.metrics {
        // The wire carries the Prometheus text as one JSON-escaped
        // string ({"metrics": "..."}); unwrap it back to raw exposition.
        let value: serde_json::Value = serde_json::from_str(&line).unwrap_or_else(|e| {
            eprintln!("error: malformed metrics response {line:?}: {e}");
            std::process::exit(2);
        });
        match value.get("metrics").and_then(serde_json::Value::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("error: daemon answered without a metrics payload: {line}");
                std::process::exit(2);
            }
        }
    } else if args.pretty {
        let value: serde_json::Value = serde_json::from_str(&line).unwrap_or_else(|e| {
            eprintln!("error: malformed stats response {line:?}: {e}");
            std::process::exit(2);
        });
        match value.get("stats") {
            Some(stats) => print!("{}", render_stats_table(stats)),
            None => {
                eprintln!("error: daemon answered without a stats payload: {line}");
                std::process::exit(2);
            }
        }
    } else {
        println!("{line}");
    }
}

/// Materialize the topology `--kind` describes and print either its
/// Graphviz DOT (`--dot`) or a one-line summary. Exit 2 on parameters
/// the topology constructors reject (out-of-range defects, too-small
/// torus factors, ...).
fn run_topo_cmd(args: &Args) {
    let kind = args.kind.as_deref().expect("parse_args enforced --kind");
    let rows = args.rows.unwrap_or(4);
    let cols = args.cols.unwrap_or(4);
    let defects = args.defects.clone().unwrap_or_default();
    if !defects.is_empty() && kind != "defect" {
        usage_error(format!(
            "--defects only applies to --kind defect, not {kind:?}"
        ));
    }
    let topology = match kind {
        "grid" => Topology::grid(rows, cols),
        "defect" => Topology::grid_with_defects(Grid::new(rows, cols), &defects, &[])
            .unwrap_or_else(|e| usage_error(format!("invalid defect pattern: {e}"))),
        "heavy-hex" => Topology::heavy_hex(rows, cols),
        "brick" => Topology::brick_wall(rows, cols),
        "torus" => Topology::torus(rows, cols)
            .unwrap_or_else(|e| usage_error(format!("invalid torus: {e}"))),
        other => usage_error(format!(
            "unknown topology kind {other:?}; expected grid|defect|heavy-hex|brick|torus"
        )),
    };
    let graph = topology.graph();
    if args.dot {
        // DOT identifiers cannot contain '-'.
        print!("{}", gridlike::to_dot(&graph, &kind.replace('-', "_")));
    } else {
        let alive = (0..topology.len())
            .filter(|&v| topology.is_alive(v))
            .count();
        println!(
            "{topology}: {} vertices ({alive} alive), {} edges",
            graph.len(),
            graph.num_edges(),
        );
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "fig4" => run_fig4(&args),
        "fig5" => run_fig5(&args),
        "hybrid" => run_hybrid(&args),
        "skinny" => run_skinny(&args),
        "ablations" => run_ablations(&args),
        "optgap" => run_optgap(&args),
        "transpile" => run_transpile(&args),
        "bench" => run_bench_cmd(&args),
        "batch" => run_batch_cmd(&args),
        "serve" => run_serve_cmd(&args),
        "ctl" => run_ctl_cmd(&args),
        "topo" => run_topo_cmd(&args),
        "all" => {
            run_fig4(&args);
            run_fig5(&args);
            run_hybrid(&args);
            run_skinny(&args);
            run_ablations(&args);
            run_optgap(&args);
            run_transpile(&args);
        }
        other => usage_error(format!(
            "unknown command {other:?}; expected fig4|fig5|hybrid|skinny|ablations|optgap|transpile|bench|batch|serve|ctl|topo|all"
        )),
    }
}
