//! Machine-readable benchmark reports with baseline regression gating.
//!
//! The figure sweeps in [`crate::experiments`] produce human-oriented
//! tables; this module produces the *canonical performance record* the
//! project is judged against over time:
//!
//! * [`BenchReport`] — a schema-versioned, serde-serialized report: build
//!   environment metadata, the run configuration, and one [`BenchCell`]
//!   per router × workload class × grid side with full
//!   [`SampleSummary`] percentiles (mean/min/p50/p90/max over seeds) for
//!   depth, swap count, the displacement lower bound, and wall-clock
//!   routing time;
//! * [`run_bench`] — drives the full cell matrix in parallel via rayon
//!   and returns a deterministically ordered report whose JSON encoding
//!   ([`BenchReport::to_json`]) is byte-stable: with timing capture
//!   disabled ([`BenchConfig::timing`] = `false`), two runs with the same
//!   seeds produce *identical* `BENCH.json` bytes;
//! * [`BenchReport::from_json`] — reads a committed baseline back;
//! * [`check_against_baseline`] — diffs a fresh report against a
//!   baseline and reports per-cell regressions: mean depth beyond the
//!   per-class tolerance ([`depth_tolerance`]), or mean routing time more
//!   than [`TIME_TOLERANCE`] (25%) slower when both reports captured
//!   timing. The `repro bench --baseline <file> --check` subcommand turns
//!   a failed check into exit code 1 plus a markdown delta table
//!   ([`delta_table_markdown`]).
//!
//! Depth, size and lower bound are exactly reproducible (seeded
//! workloads, deterministic routers), so any depth delta is a real
//! algorithmic change; the tolerance only leaves headroom for intentional
//! small trade-offs. Wall-clock time is the one machine-dependent metric,
//! which is why it is separately tolerated and optional.

use crate::workloads::WorkloadClass;
use qroute_core::stats::{route_timed, SampleSummary};
use qroute_core::{GridRouter, RouterKind};
use qroute_topology::Grid;
use rayon::prelude::*;
use serde::Serialize;
use std::fmt::Write as _;

/// Version of the `BENCH.json` schema. Bump on any breaking change to
/// [`BenchReport`]'s serialized shape; [`BenchReport::from_json`] refuses
/// mismatched versions so a stale baseline fails loudly.
pub const SCHEMA_VERSION: u64 = 1;

/// Relative mean-runtime regression tolerated by the baseline check
/// (`0.25` = 25% slower), applied only when both reports captured timing.
pub const TIME_TOLERANCE: f64 = 0.25;

/// Per-class relative mean-depth regression tolerance.
///
/// Depth is deterministic for a fixed seed set, so these are headroom for
/// intentional trade-offs, not noise margins. The overlap and skinny
/// classes get more room: they are the regimes where router heuristics
/// legitimately trade depth between classes (§V — ATS wins on overlap;
/// skinny cycles are adversarial for the locality-aware router).
pub fn depth_tolerance(class: &str) -> f64 {
    if class.starts_with("overlap") || class.starts_with("skinny") {
        0.05
    } else {
        0.02
    }
}

/// Build/environment metadata recorded in every report.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEnv {
    /// Crate version of the harness that produced the report.
    pub version: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Whether the harness was compiled with debug assertions (a `true`
    /// here means timings are not representative of release builds).
    pub debug_assertions: bool,
}

impl BenchEnv {
    /// Capture the current build environment.
    pub fn capture() -> BenchEnv {
        BenchEnv {
            version: env!("CARGO_PKG_VERSION").to_string(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            debug_assertions: cfg!(debug_assertions),
        }
    }
}

/// Configuration of a benchmark run.
#[derive(Debug, Clone, Serialize)]
pub struct BenchConfig {
    /// Square-grid sides in the matrix.
    pub sides: Vec<usize>,
    /// Seeds per cell (`0..seeds`).
    pub seeds: u64,
    /// Whether wall-clock routing time was captured. `false` zeroes the
    /// `time_ms` summaries, making the report byte-stable across runs —
    /// timing is the only nondeterministic input to the schema.
    pub timing: bool,
}

impl BenchConfig {
    /// The canonical full matrix: sides {4, 8, 16, 32}, 5 seeds, with
    /// timing. Side 32 became tractable for every router once the
    /// distance-oracle overhaul removed the per-call `O(n²)` APSP tables;
    /// side 64 works too (`--sides 64 --no-time`) but is kept out of the
    /// default matrix to bound wall-clock.
    pub fn full() -> BenchConfig {
        BenchConfig { sides: vec![4, 8, 16, 32], seeds: 5, timing: true }
    }

    /// The CI gate configuration: the same sides, fewer seeds, and no
    /// timing — so the committed baseline compares byte-for-byte across
    /// machines.
    pub fn quick() -> BenchConfig {
        BenchConfig { sides: vec![4, 8, 16, 32], seeds: 2, timing: false }
    }
}

/// One measured cell: a router × workload class × grid side aggregate
/// with full sample summaries over the seed set.
#[derive(Debug, Clone, Serialize)]
pub struct BenchCell {
    /// Router label ([`GridRouter::name`]).
    pub router: String,
    /// Workload class label ([`WorkloadClass::label`]).
    pub class: String,
    /// Grid side (square grids).
    pub side: usize,
    /// Number of qubits (`side * side`).
    pub qubits: usize,
    /// Schedule depth summary over seeds.
    pub depth: SampleSummary,
    /// Swap-count summary over seeds.
    pub size: SampleSummary,
    /// Depth lower bound (max displacement) summary over seeds.
    pub lower_bound: SampleSummary,
    /// Wall-clock routing time summary in milliseconds (all-zero with
    /// `n = 0` when timing capture was disabled).
    pub time_ms: SampleSummary,
}

impl BenchCell {
    /// The cell's identity within a report's matrix.
    pub fn key(&self) -> (&str, &str, usize) {
        (self.router.as_str(), self.class.as_str(), self.side)
    }
}

/// A complete benchmark report — the `BENCH.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Build environment metadata.
    pub env: BenchEnv,
    /// Run configuration.
    pub config: BenchConfig,
    /// The cell matrix, sorted by (router, class, side).
    pub cells: Vec<BenchCell>,
}

/// The router axis of the benchmark matrix: every [`RouterKind`] in its
/// default configuration.
pub fn bench_routers() -> Vec<RouterKind> {
    vec![
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::hybrid(),
        RouterKind::Ats,
        RouterKind::AtsSerial,
        RouterKind::Tree,
        RouterKind::Snake,
    ]
}

/// Measure one benchmark cell: route `seeds` instances, verify every
/// schedule, and summarize each metric's per-seed samples.
pub fn measure_bench_cell(
    side: usize,
    class: WorkloadClass,
    router: &RouterKind,
    seeds: u64,
    timing: bool,
) -> BenchCell {
    let grid = Grid::new(side, side);
    let mut depths = Vec::with_capacity(seeds as usize);
    let mut sizes = Vec::with_capacity(seeds as usize);
    let mut lbs = Vec::with_capacity(seeds as usize);
    let mut times = Vec::with_capacity(seeds as usize);
    for seed in 0..seeds {
        let pi = class.generate(grid, seed);
        let timed = route_timed(grid, &pi, router);
        assert!(
            timed.schedule.realizes(&pi),
            "{} produced a wrong schedule",
            router.name()
        );
        depths.push(timed.stats.depth as f64);
        sizes.push(timed.stats.size as f64);
        lbs.push(timed.stats.lower_bound as f64);
        if timing {
            times.push(timed.route_ms);
        }
    }
    BenchCell {
        router: router.name().to_string(),
        class: class.label(),
        side,
        qubits: grid.len(),
        depth: SampleSummary::from_samples(&depths),
        size: SampleSummary::from_samples(&sizes),
        lower_bound: SampleSummary::from_samples(&lbs),
        time_ms: SampleSummary::from_samples(&times),
    }
}

/// Run the full benchmark matrix (all [`bench_routers`] × all
/// [`WorkloadClass::all_classes`] × `config.sides`) and return the
/// report with cells in canonical (router, class, side) order.
///
/// Untimed runs measure cells in parallel via rayon (depth and size do
/// not depend on wall-clock); timed runs measure serially so time
/// samples are not distorted by core contention — the same discipline
/// [`crate::experiments::figure5`] applies.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let mut jobs: Vec<(usize, WorkloadClass, RouterKind)> = Vec::new();
    for &side in &config.sides {
        for class in WorkloadClass::all_classes() {
            for router in bench_routers() {
                jobs.push((side, class, router));
            }
        }
    }
    let timing = config.timing;
    let seeds = config.seeds;
    let measure = |(side, class, router): (usize, WorkloadClass, RouterKind)| -> BenchCell {
        measure_bench_cell(side, class, &router, seeds, timing)
    };
    let mut cells: Vec<BenchCell> = if timing {
        jobs.into_iter().map(measure).collect()
    } else {
        jobs.into_par_iter().map(measure).collect()
    };
    cells.sort_by(|a, b| {
        (a.router.as_str(), a.class.as_str(), a.side).cmp(&(
            b.router.as_str(),
            b.class.as_str(),
            b.side,
        ))
    });
    BenchReport {
        schema_version: SCHEMA_VERSION,
        env: BenchEnv::capture(),
        config: config.clone(),
        cells,
    }
}

impl BenchReport {
    /// Serialize to the canonical `BENCH.json` encoding: pretty-printed
    /// JSON with declaration-ordered keys and a trailing newline. For a
    /// fixed configuration with timing disabled, the output is
    /// byte-identical across runs and machines.
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("serialize bench report");
        json.push('\n');
        json
    }

    /// Parse a report back from its JSON encoding (e.g. a committed
    /// baseline). Rejects schema-version mismatches and malformed cells.
    pub fn from_json(input: &str) -> Result<BenchReport, String> {
        let doc = serde_json::from_str(input).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} != supported {SCHEMA_VERSION}; regenerate the baseline"
            ));
        }
        let str_field = |v: &serde_json::Value, key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(|x| x.as_str())
                .ok_or_else(|| format!("missing string field {key:?}"))?
                .to_string())
        };
        let num_field = |v: &serde_json::Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        // Strict: fractional or negative values are malformed, not
        // truncatable — a hand-edited "side": 4.5 must not silently
        // collide with the real side-4 cell.
        let uint_field = |v: &serde_json::Value, key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .map(|x| x as usize)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let summary_field = |v: &serde_json::Value, key: &str| -> Result<SampleSummary, String> {
            let s = v
                .get(key)
                .ok_or_else(|| format!("missing summary {key:?}"))?;
            Ok(SampleSummary {
                n: uint_field(s, "n")?,
                mean: num_field(s, "mean")?,
                min: num_field(s, "min")?,
                p50: num_field(s, "p50")?,
                p90: num_field(s, "p90")?,
                max: num_field(s, "max")?,
            })
        };
        let env_v = doc.get("env").ok_or("missing env")?;
        let config_v = doc.get("config").ok_or("missing config")?;
        let cells_v = doc
            .get("cells")
            .and_then(|v| v.as_array())
            .ok_or("missing cells array")?;
        let mut cells = Vec::with_capacity(cells_v.len());
        for c in cells_v {
            cells.push(BenchCell {
                router: str_field(c, "router")?,
                class: str_field(c, "class")?,
                side: uint_field(c, "side")?,
                qubits: uint_field(c, "qubits")?,
                depth: summary_field(c, "depth")?,
                size: summary_field(c, "size")?,
                lower_bound: summary_field(c, "lower_bound")?,
                time_ms: summary_field(c, "time_ms")?,
            });
        }
        Ok(BenchReport {
            schema_version: version,
            env: BenchEnv {
                version: str_field(env_v, "version")?,
                os: str_field(env_v, "os")?,
                arch: str_field(env_v, "arch")?,
                debug_assertions: env_v
                    .get("debug_assertions")
                    .and_then(|v| v.as_bool())
                    .ok_or("missing env.debug_assertions")?,
            },
            config: BenchConfig {
                sides: config_v
                    .get("sides")
                    .and_then(|v| v.as_array())
                    .ok_or("missing config.sides")?
                    .iter()
                    .map(|v| v.as_u64().map(|x| x as usize).ok_or("bad side"))
                    .collect::<Result<_, _>>()?,
                seeds: config_v
                    .get("seeds")
                    .and_then(|v| v.as_u64())
                    .ok_or("missing config.seeds")?,
                timing: config_v
                    .get("timing")
                    .and_then(|v| v.as_bool())
                    .ok_or("missing config.timing")?,
            },
            cells,
        })
    }
}

/// One metric comparison between a current cell and its baseline cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellDelta {
    /// Router label.
    pub router: String,
    /// Class label.
    pub class: String,
    /// Grid side.
    pub side: usize,
    /// Which metric regressed-or-not: `"depth"` or `"time_ms"`.
    pub metric: String,
    /// Baseline mean.
    pub baseline_mean: f64,
    /// Current mean.
    pub current_mean: f64,
    /// Relative change (`0.10` = 10% worse than baseline).
    pub delta: f64,
    /// Tolerance the delta was judged against.
    pub tolerance: f64,
    /// `true` when `delta > tolerance`.
    pub regressed: bool,
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Every metric comparison made (depth always; time when both
    /// reports captured timing).
    pub deltas: Vec<CellDelta>,
    /// Baseline cell keys absent from the current report. A non-empty
    /// list fails the check: a gate that silently drops cells is no gate.
    pub missing_in_current: Vec<String>,
    /// Current cell keys absent from the baseline (informational — new
    /// routers/classes/sides are expected to appear before the baseline
    /// is refreshed).
    pub new_in_current: Vec<String>,
    /// Cells whose seed counts differ between the reports. Means over
    /// different sample sets are not comparable (a delta could come
    /// purely from the extra seeds), so these fail the check instead of
    /// being diffed.
    pub seed_mismatches: Vec<String>,
}

impl CheckOutcome {
    /// The comparisons that exceeded tolerance.
    pub fn regressions(&self) -> Vec<&CellDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// `true` when no metric regressed, no baseline cell went missing,
    /// and every compared cell used the same seed count.
    pub fn passed(&self) -> bool {
        self.missing_in_current.is_empty()
            && self.seed_mismatches.is_empty()
            && self.regressions().is_empty()
    }
}

/// Compare `current` against `baseline` cell-by-cell.
///
/// Mean depth is gated per class by [`depth_tolerance`]; mean routing
/// time is gated by [`TIME_TOLERANCE`] when both cells captured timing
/// (`n > 0`). Size and lower bound are recorded in reports but not gated:
/// size trades off against depth, and the lower bound is a property of
/// the workload, not the router.
pub fn check_against_baseline(current: &BenchReport, baseline: &BenchReport) -> CheckOutcome {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    let mut seed_mismatches = Vec::new();
    for base in &baseline.cells {
        let Some(cur) = current.cells.iter().find(|c| c.key() == base.key()) else {
            missing.push(format!(
                "{}/{}/{side}x{side}",
                base.router,
                base.class,
                side = base.side
            ));
            continue;
        };
        if cur.depth.n != base.depth.n {
            seed_mismatches.push(format!(
                "{}/{}/{side}x{side}: {} seeds vs baseline {}",
                base.router,
                base.class,
                cur.depth.n,
                base.depth.n,
                side = base.side
            ));
            continue;
        }
        let depth_tol = depth_tolerance(&base.class);
        let depth_delta = cur.depth.mean_delta(&base.depth);
        deltas.push(CellDelta {
            router: base.router.clone(),
            class: base.class.clone(),
            side: base.side,
            metric: "depth".to_string(),
            baseline_mean: base.depth.mean,
            current_mean: cur.depth.mean,
            delta: depth_delta,
            tolerance: depth_tol,
            regressed: depth_delta > depth_tol,
        });
        if base.time_ms.n > 0 && cur.time_ms.n > 0 {
            let time_delta = cur.time_ms.mean_delta(&base.time_ms);
            deltas.push(CellDelta {
                router: base.router.clone(),
                class: base.class.clone(),
                side: base.side,
                metric: "time_ms".to_string(),
                baseline_mean: base.time_ms.mean,
                current_mean: cur.time_ms.mean,
                delta: time_delta,
                tolerance: TIME_TOLERANCE,
                regressed: time_delta > TIME_TOLERANCE,
            });
        }
    }
    let new_in_current = current
        .cells
        .iter()
        .filter(|c| !baseline.cells.iter().any(|b| b.key() == c.key()))
        .map(|c| format!("{}/{}/{side}x{side}", c.router, c.class, side = c.side))
        .collect();
    CheckOutcome { deltas, missing_in_current: missing, new_in_current, seed_mismatches }
}

/// Render a markdown delta table for the given comparisons (typically
/// [`CheckOutcome::regressions`], worst first).
pub fn delta_table_markdown(deltas: &[&CellDelta]) -> String {
    let mut out = String::from(
        "| router | class | n×n | metric | baseline | current | delta | tolerance |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let mut sorted: Vec<&&CellDelta> = deltas.iter().collect();
    sorted.sort_by(|a, b| {
        b.delta
            .partial_cmp(&a.delta)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for d in sorted {
        let _ = writeln!(
            out,
            "| {} | {} | {side}×{side} | {} | {:.3} | {:.3} | {:+.1}% | {:.1}% |",
            d.router,
            d.class,
            d.metric,
            d.baseline_mean,
            d.current_mean,
            d.delta * 100.0,
            d.tolerance * 100.0,
            side = d.side,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchConfig {
        BenchConfig { sides: vec![4], seeds: 2, timing: false }
    }

    #[test]
    fn report_covers_full_matrix() {
        let report = run_bench(&tiny_config());
        let routers = bench_routers().len();
        let classes = WorkloadClass::all_classes().len();
        assert_eq!(report.cells.len(), routers * classes);
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        // Canonical order: sorted by (router, class, side).
        let keys: Vec<_> = report
            .cells
            .iter()
            .map(|c| (c.router.clone(), c.class.clone(), c.side))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn untimed_reports_are_byte_identical() {
        let a = run_bench(&tiny_config()).to_json();
        let b = run_bench(&tiny_config()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let report = run_bench(&tiny_config());
        let parsed = BenchReport::from_json(&report.to_json()).expect("parse own output");
        assert_eq!(parsed.to_json(), report.to_json());
    }

    #[test]
    fn from_json_rejects_fractional_integer_fields() {
        let report = run_bench(&tiny_config());
        let tampered = report.to_json().replacen("\"side\": 4", "\"side\": 4.5", 1);
        let err = BenchReport::from_json(&tampered).unwrap_err();
        assert!(err.contains("side"), "{err}");
    }

    #[test]
    fn from_json_rejects_wrong_schema_version() {
        let mut report = run_bench(&tiny_config());
        report.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn identical_reports_pass_the_check() {
        let report = run_bench(&tiny_config());
        let outcome = check_against_baseline(&report, &report);
        assert!(outcome.passed());
        assert!(outcome.missing_in_current.is_empty());
        assert!(outcome.new_in_current.is_empty());
        // One depth comparison per cell; no timing comparisons.
        assert_eq!(outcome.deltas.len(), report.cells.len());
    }

    #[test]
    fn injected_depth_regression_fails_the_check() {
        let current = run_bench(&tiny_config());
        let mut baseline = current.clone();
        // Pretend the baseline was 20% shallower than what we measure now.
        baseline.cells[0].depth.mean = (current.cells[0].depth.mean / 1.2).max(0.1);
        let outcome = check_against_baseline(&current, &baseline);
        assert!(!outcome.passed());
        let regs = outcome.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "depth");
        let table = delta_table_markdown(&regs);
        assert!(table.contains("depth"), "{table}");
        assert!(table.contains('%'), "{table}");
    }

    #[test]
    fn runtime_regression_beyond_25_percent_fails() {
        let mut current = run_bench(&tiny_config());
        let mut baseline = current.clone();
        baseline.cells[0].time_ms = SampleSummary::from_samples(&[1.0, 1.0]);
        current.cells[0].time_ms = SampleSummary::from_samples(&[1.3, 1.3]);
        let outcome = check_against_baseline(&current, &baseline);
        let regs = outcome.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "time_ms");
        // 20% slower stays within tolerance.
        current.cells[0].time_ms = SampleSummary::from_samples(&[1.2, 1.2]);
        assert!(check_against_baseline(&current, &baseline).passed());
    }

    #[test]
    fn missing_baseline_cells_fail_new_cells_do_not() {
        let full = run_bench(&tiny_config());
        let mut truncated = full.clone();
        truncated.cells.pop();
        // Current is missing a baseline cell → fail.
        let outcome = check_against_baseline(&truncated, &full);
        assert!(!outcome.passed());
        assert_eq!(outcome.missing_in_current.len(), 1);
        // Current has an extra cell the baseline lacks → pass.
        let outcome = check_against_baseline(&full, &truncated);
        assert!(outcome.passed());
        assert_eq!(outcome.new_in_current.len(), 1);
    }

    #[test]
    fn differing_seed_counts_fail_instead_of_comparing_means() {
        let current = run_bench(&tiny_config());
        let more_seeds = run_bench(&BenchConfig { sides: vec![4], seeds: 3, timing: false });
        let outcome = check_against_baseline(&more_seeds, &current);
        assert!(!outcome.passed());
        assert_eq!(outcome.seed_mismatches.len(), current.cells.len());
        // No means were diffed for mismatched cells.
        assert!(outcome.deltas.is_empty());
    }

    #[test]
    fn depth_tolerances_are_class_aware() {
        assert_eq!(depth_tolerance("random"), 0.02);
        assert_eq!(depth_tolerance("block4"), 0.02);
        assert_eq!(depth_tolerance("overlap8s4"), 0.05);
        assert_eq!(depth_tolerance("skinny"), 0.05);
    }
}
