//! Machine-readable benchmark reports with baseline regression gating.
//!
//! The figure sweeps in [`crate::experiments`] produce human-oriented
//! tables; this module produces the *canonical performance record* the
//! project is judged against over time:
//!
//! * [`BenchReport`] — a schema-versioned, serde-serialized report: build
//!   environment metadata, the run configuration, one [`BenchCell`] per
//!   router × permutation class × grid side, and one [`CircuitBenchCell`]
//!   per router × circuit class × grid side, each with full
//!   [`SampleSummary`] percentiles (mean/min/p50/p90/max over seeds);
//! * [`run_bench`] — drives both cell matrices in parallel via rayon
//!   and returns a deterministically ordered report whose JSON encoding
//!   ([`BenchReport::to_json`]) is byte-stable: with timing capture
//!   disabled ([`BenchConfig::timing`] = `false`), two runs with the same
//!   seeds produce *identical* `BENCH.json` bytes;
//! * [`BenchReport::from_json`] — reads a committed baseline back;
//! * [`check_against_baseline`] — diffs a fresh report against a
//!   baseline and reports per-cell regressions: mean depth (and, for
//!   circuit cells, mean swap count) beyond the per-class tolerance
//!   ([`depth_tolerance`] / [`circuit_tolerance`]), or mean time more
//!   than [`TIME_TOLERANCE`] (25%) slower when both reports captured
//!   timing. The `repro bench --baseline <file> --check` subcommand turns
//!   a failed check into exit code 1 plus a markdown delta table
//!   ([`delta_table_markdown`]).
//!
//! Depth, size and lower bound are exactly reproducible (seeded
//! workloads, deterministic routers and transpiler), so any delta is a
//! real algorithmic change; the tolerance only leaves headroom for
//! intentional small trade-offs. Wall-clock time is the one
//! machine-dependent metric, which is why it is separately tolerated and
//! optional.
//!
//! Every circuit cell is verified before its numbers are recorded — see
//! [`crate::verify`] for the tiered differential harness (grid
//! feasibility, metric recounts, structural unembedding, and statevector
//! equivalence for logical registers within the simulator cutoff).

use crate::circuits::CircuitClass;
use crate::verify::verify_transpile;
use crate::workloads::WorkloadClass;
use qroute_core::stats::{route_timed, SampleSummary};
use qroute_core::{GridRouter, RouterKind};
use qroute_topology::{Grid, Topology};
use qroute_transpiler::{TranspileOptions, Transpiler};
use rayon::prelude::*;
use serde::Serialize;
use std::fmt::Write as _;

/// Version of the `BENCH.json` schema. Bump on any breaking change to
/// [`BenchReport`]'s serialized shape; [`BenchReport::from_json`] refuses
/// mismatched versions so a stale baseline fails loudly.
///
/// History: v1 — permutation cells only; v2 — adds the circuit-cell
/// matrix (`circuit_cells`) and the `circuit_sides` / `circuit_seeds`
/// run-configuration fields; v3 — adds the routing-service throughput
/// matrix (`service_cells`: jobs/sec and cache hit rate per side ×
/// worker count) and the `service_sides` / `service_seeds`
/// run-configuration fields; v4 — adds the non-grid topology matrix
/// (`defect_cells`: router × topology kind × side on defective grids and
/// heavy-hex lattices) and the `defect_sides` / `defect_seeds`
/// run-configuration fields; v5 — adds the routing-daemon throughput
/// matrix (`daemon_cells`: jobs and shared-cache counters per
/// concurrent-client count, replaying `examples/jobs.jsonl` through a
/// live TCP daemon) and the `daemon_clients` run-configuration field.
pub const SCHEMA_VERSION: u64 = 5;

/// Relative mean-runtime regression tolerated by the baseline check
/// (`0.25` = 25% slower), applied only when both reports captured timing.
pub const TIME_TOLERANCE: f64 = 0.25;

/// Per-class relative mean-depth regression tolerance.
///
/// Depth is deterministic for a fixed seed set, so these are headroom for
/// intentional trade-offs, not noise margins. The overlap and skinny
/// classes get more room: they are the regimes where router heuristics
/// legitimately trade depth between classes (§V — ATS wins on overlap;
/// skinny cycles are adversarial for the locality-aware router).
pub fn depth_tolerance(class: &str) -> f64 {
    if class.starts_with("overlap")
        || class.starts_with("skinny")
        || class.starts_with("sparse-pairs")
    {
        0.05
    } else {
        0.02
    }
}

/// Router-aware variant of [`depth_tolerance`], applied to permutation
/// cells by the baseline check. The pathfinder router's negotiation loop
/// redistributes depth between contested paths, so every change to its
/// cost schedule legitimately shifts cell depth a little on *all*
/// classes — its cells get the 5% headroom regardless of class.
pub fn cell_depth_tolerance(router: &str, class: &str) -> f64 {
    if router == "pathfinder" {
        0.05
    } else {
        depth_tolerance(class)
    }
}

/// Per-class relative regression tolerance for circuit-cell metrics
/// (mean routing depth added and mean swap count).
///
/// Transpile-loop metrics are deterministic but more sensitive than
/// isolated-permutation depth: a small planner or router change shifts
/// *which* rounds block, and the effect compounds across hundreds of
/// rounds. Structured local workloads (brickwork) get the tight 2%;
/// everything that routes globally gets 5%.
pub fn circuit_tolerance(class: &str) -> f64 {
    if class.starts_with("brickwork") {
        0.02
    } else {
        0.05
    }
}

/// Build/environment metadata recorded in every report.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEnv {
    /// Crate version of the harness that produced the report.
    pub version: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Whether the harness was compiled with debug assertions (a `true`
    /// here means timings are not representative of release builds).
    pub debug_assertions: bool,
}

impl BenchEnv {
    /// Capture the current build environment.
    pub fn capture() -> BenchEnv {
        BenchEnv {
            version: env!("CARGO_PKG_VERSION").to_string(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            debug_assertions: cfg!(debug_assertions),
        }
    }
}

/// Configuration of a benchmark run.
#[derive(Debug, Clone, Serialize)]
pub struct BenchConfig {
    /// Square-grid sides in the permutation matrix.
    pub sides: Vec<usize>,
    /// Seeds per permutation cell (`0..seeds`).
    pub seeds: u64,
    /// Whether wall-clock time was captured. `false` zeroes the
    /// `time_ms` summaries, making the report byte-stable across runs —
    /// timing is the only nondeterministic input to the schema.
    pub timing: bool,
    /// Square-grid sides in the circuit matrix (must all fit the QASM
    /// replay fixture's 10 qubits, i.e. side ≥ 4).
    pub circuit_sides: Vec<usize>,
    /// Seeds per circuit cell (`0..circuit_seeds`).
    pub circuit_seeds: u64,
    /// Square-grid sides in the routing-service throughput matrix.
    pub service_sides: Vec<usize>,
    /// Seeds per workload class in each service batch (`0..service_seeds`).
    pub service_seeds: u64,
    /// Base sides in the non-grid topology matrix (a side-`s` entry means
    /// an `s × s` defective grid and an `s × s` heavy-hex lattice).
    pub defect_sides: Vec<usize>,
    /// Seeds per defect cell (`0..defect_seeds`).
    pub defect_seeds: u64,
    /// Concurrent-client counts in the daemon throughput matrix (each
    /// client replays `examples/jobs.jsonl` over its own connection).
    pub daemon_clients: Vec<usize>,
}

impl BenchConfig {
    /// The canonical full matrix: permutation sides {4, 8, 16, 32} at 5
    /// seeds, circuit sides {4, 8} at 3 seeds, with timing. Side 32
    /// became tractable for every router once the distance-oracle
    /// overhaul removed the per-call `O(n²)` APSP tables; a side-64
    /// permutation matrix works too (`--sides 64 --circuit-sides 8
    /// --seeds 1 --no-time` — `--sides` alone would also point the
    /// *circuit* matrix at side 64, and a full-occupancy 4096-qubit QFT
    /// through the transpile loop is not a bounded-time proposition).
    /// Circuit cells stop at side 8 because a full-occupancy QFT already
    /// drives thousands of routing rounds there.
    pub fn full() -> BenchConfig {
        BenchConfig {
            sides: vec![4, 8, 16, 32],
            seeds: 5,
            timing: true,
            circuit_sides: vec![4, 8],
            circuit_seeds: 3,
            service_sides: vec![8, 16],
            service_seeds: 3,
            defect_sides: vec![8, 16],
            defect_seeds: 3,
            daemon_clients: vec![1, 4, 8],
        }
    }

    /// The CI gate configuration: the same sides, fewer seeds, and no
    /// timing — so the committed baseline compares byte-for-byte across
    /// machines.
    pub fn quick() -> BenchConfig {
        BenchConfig {
            sides: vec![4, 8, 16, 32],
            seeds: 2,
            timing: false,
            circuit_sides: vec![4, 8],
            circuit_seeds: 2,
            service_sides: vec![8, 16],
            service_seeds: 2,
            defect_sides: vec![8, 16],
            defect_seeds: 2,
            daemon_clients: vec![1, 4, 8],
        }
    }
}

/// One measured cell: a router × workload class × grid side aggregate
/// with full sample summaries over the seed set.
#[derive(Debug, Clone, Serialize)]
pub struct BenchCell {
    /// Router label ([`RouterKind::label`]).
    pub router: String,
    /// Workload class label ([`WorkloadClass::label`]).
    pub class: String,
    /// Grid side (square grids).
    pub side: usize,
    /// Number of qubits (`side * side`).
    pub qubits: usize,
    /// Schedule depth summary over seeds.
    pub depth: SampleSummary,
    /// Swap-count summary over seeds.
    pub size: SampleSummary,
    /// Depth lower bound (max displacement) summary over seeds.
    pub lower_bound: SampleSummary,
    /// Wall-clock routing time summary in milliseconds (all-zero with
    /// `n = 0` when timing capture was disabled).
    pub time_ms: SampleSummary,
}

impl BenchCell {
    /// The cell's identity within a report's matrix.
    pub fn key(&self) -> (&str, &str, usize) {
        (self.router.as_str(), self.class.as_str(), self.side)
    }
}

/// One measured circuit cell: a router × circuit class × grid side
/// aggregate over a seed set of *verified* transpiles (see
/// [`crate::verify`]).
#[derive(Debug, Clone, Serialize)]
pub struct CircuitBenchCell {
    /// Router label ([`RouterKind::label`]).
    pub router: String,
    /// Circuit class label ([`CircuitClass::label`]).
    pub class: String,
    /// Grid side (square grids).
    pub side: usize,
    /// Number of physical wires (`side * side`).
    pub qubits: usize,
    /// Logical register width of the class instance.
    pub logical_qubits: usize,
    /// Gate count of the logical circuit (seed-independent for every
    /// class: generated circuits have fixed structure per size).
    pub logical_gates: usize,
    /// 2-qubit gate count of the logical circuit.
    pub logical_two_qubit: usize,
    /// Whether the statevector equivalence tier ran on every seed
    /// (logical register within the simulator cutoff); the structural
    /// verification tiers always run.
    pub statevector_checked: bool,
    /// SWAP-count summary over seeds.
    pub swaps: SampleSummary,
    /// Routing-depth-added summary over seeds (sum of schedule depths
    /// across routing rounds).
    pub routing_depth: SampleSummary,
    /// Router-invocation (routing round) summary over seeds.
    pub invocations: SampleSummary,
    /// Output-circuit depth summary over seeds (all gates unit cost).
    pub output_depth: SampleSummary,
    /// Wall-clock transpile time summary in milliseconds (all-zero with
    /// `n = 0` when timing capture was disabled).
    pub time_ms: SampleSummary,
}

impl CircuitBenchCell {
    /// The cell's identity within a report's circuit matrix.
    pub fn key(&self) -> (&str, &str, usize) {
        (self.router.as_str(), self.class.as_str(), self.side)
    }
}

/// One routing-service throughput cell: a standard repetitive job batch
/// (two passes over every workload class × seed, `auto` dispatch) pushed
/// through [`qroute_service::Engine`] at a given worker count.
///
/// Hit/miss/evict counts are deterministic (the engine makes every cache
/// decision in job order), so they are byte-stable in the committed
/// baseline; `jobs_per_sec` is wall-clock-derived and zeroed when timing
/// capture is off, exactly like the `time_ms` summaries elsewhere.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceBenchCell {
    /// Grid side (square grids).
    pub side: usize,
    /// Engine worker threads used for this cell.
    pub workers: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Canonical-cache hits.
    pub cache_hits: u64,
    /// Canonical-cache misses.
    pub cache_misses: u64,
    /// Canonical-cache evictions.
    pub cache_evictions: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub hit_rate: f64,
    /// Batch throughput (`0.0` when timing capture was disabled).
    pub jobs_per_sec: f64,
}

impl ServiceBenchCell {
    /// The cell's identity within a report's service matrix.
    pub fn key(&self) -> (usize, usize) {
        (self.side, self.workers)
    }
}

/// One measured non-grid topology cell: a router × topology kind × base
/// side aggregate over seeded random permutations of the alive vertices.
///
/// This matrix pins the topology-generic routing path (defective grids
/// and heavy-hex lattices routed through [`qroute_core::GridRouter::route_on`])
/// the same way `cells` pins the square-grid routers.
#[derive(Debug, Clone, Serialize)]
pub struct DefectBenchCell {
    /// Topology kind label: `"defect"` or `"heavy-hex"`.
    pub topology: String,
    /// Router label as given on the axis (`"auto"` stays `"auto"`; the
    /// dispatch policy resolves it per instance).
    pub router: String,
    /// Base side (the defective grid is `side × side`; heavy-hex is the
    /// `side × side` data lattice plus its bridge vertices).
    pub side: usize,
    /// Total vertex count of the topology (for defective grids this
    /// includes the dead vertices — ids are stable).
    pub qubits: usize,
    /// Schedule depth summary over seeds.
    pub depth: SampleSummary,
    /// Swap-count summary over seeds.
    pub size: SampleSummary,
    /// Oracle depth lower bound (max live-graph distance) summary.
    pub lower_bound: SampleSummary,
    /// Wall-clock routing time summary in milliseconds (all-zero with
    /// `n = 0` when timing capture was disabled).
    pub time_ms: SampleSummary,
}

impl DefectBenchCell {
    /// The cell's identity within a report's defect matrix.
    pub fn key(&self) -> (&str, &str, usize) {
        (self.topology.as_str(), self.router.as_str(), self.side)
    }
}

/// Relative mean-depth regression tolerance for defect cells. The
/// token-swapping heuristics on irregular topologies legitimately trade
/// depth as tie-breaking changes, so they get the looser 5%.
pub const DEFECT_DEPTH_TOLERANCE: f64 = 0.05;

/// The topology-kind axis of the defect matrix.
pub const DEFECT_TOPOLOGY_AXIS: [&str; 2] = ["defect", "heavy-hex"];

/// The router axis of the defect matrix: `ats` (the topology-generic
/// router) and `auto` (pinning the dispatch fallback on non-grid
/// topologies).
pub const DEFECT_ROUTER_AXIS: [&str; 2] = ["ats", "auto"];

/// The deterministic defect pattern for a `side × side` grid: interior
/// vertices at `(r, c)` for `r, c ∈ {1, 5, 9, …}`. Scattered isolated
/// holes — the residual grid always stays connected.
pub fn defect_pattern(side: usize) -> Vec<usize> {
    let grid = Grid::new(side, side);
    let mut defects = Vec::new();
    for r in (1..side).step_by(4) {
        for c in (1..side).step_by(4) {
            defects.push(grid.index(r, c));
        }
    }
    defects
}

/// Build the benchmark topology for one kind label and base side.
pub fn defect_topology(kind: &str, side: usize) -> Topology {
    match kind {
        "defect" => Topology::grid_with_defects(Grid::new(side, side), &defect_pattern(side), &[])
            .expect("the scattered interior pattern is always valid"),
        "heavy-hex" => Topology::heavy_hex(side, side),
        other => panic!("unknown defect-matrix topology kind {other:?}"),
    }
}

/// A seeded uniform permutation of the alive vertices of `topology`
/// (fixing the dead ones).
fn alive_random(topology: &Topology, seed: u64) -> qroute_perm::Permutation {
    let alive: Vec<usize> = (0..topology.len())
        .filter(|&v| topology.is_alive(v))
        .collect();
    let shuffled = qroute_perm::generators::random(alive.len(), seed);
    let mut map: Vec<usize> = (0..topology.len()).collect();
    for (k, &v) in alive.iter().enumerate() {
        map[v] = alive[shuffled.apply(k)];
    }
    qroute_perm::Permutation::from_vec(map).expect("permutation of the alive vertices")
}

/// Measure one defect cell: route `seeds` random alive-vertex
/// permutations of the topology, verify every schedule, and summarize.
pub fn measure_defect_cell(
    side: usize,
    kind: &str,
    router_label: &str,
    seeds: u64,
    timing: bool,
) -> DefectBenchCell {
    let topology = defect_topology(kind, side);
    let graph = topology.graph();
    let mut depths = Vec::with_capacity(seeds as usize);
    let mut sizes = Vec::with_capacity(seeds as usize);
    let mut lbs = Vec::with_capacity(seeds as usize);
    let mut times = Vec::with_capacity(seeds as usize);
    for seed in 0..seeds {
        let pi = alive_random(&topology, seed);
        let router = match router_label {
            "auto" => qroute_service::select_router_on(&topology, &pi),
            label => label.parse::<RouterKind>().expect("valid router label"),
        };
        let t0 = std::time::Instant::now();
        let schedule = router
            .route_on(&topology, &pi)
            .expect("the defect-matrix routers accept any connected topology");
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            schedule.realizes(&pi),
            "{router_label} produced a wrong schedule on {topology}"
        );
        schedule
            .validate_on(&graph)
            .unwrap_or_else(|e| panic!("{router_label} infeasible on {topology}: {e:?}"));
        let oracle = topology.oracle(&graph);
        depths.push(schedule.depth() as f64);
        sizes.push(schedule.size() as f64);
        lbs.push(qroute_perm::metrics::depth_lower_bound_oracle(&oracle, &pi) as f64);
        if timing {
            times.push(elapsed_ms);
        }
    }
    DefectBenchCell {
        topology: kind.to_string(),
        router: router_label.to_string(),
        side,
        qubits: topology.len(),
        depth: SampleSummary::from_samples(&depths),
        size: SampleSummary::from_samples(&sizes),
        lower_bound: SampleSummary::from_samples(&lbs),
        time_ms: SampleSummary::from_samples(&times),
    }
}

/// The worker-count axis of the service throughput matrix. Outcome
/// metrics are worker-count invariant by the engine's determinism
/// guarantee; only `jobs_per_sec` varies.
pub const SERVICE_WORKER_AXIS: [usize; 2] = [1, 4];

/// The standard service batch for one side: two passes over every
/// workload class × seed with `auto` routing — the repetitive shape a
/// transpilation campaign produces, so the second pass is all cache hits.
pub fn service_jobs(side: usize, seeds: u64) -> Vec<qroute_service::RouteJob> {
    let mut jobs = Vec::new();
    for _pass in 0..2 {
        for class in WorkloadClass::all_classes() {
            for seed in 0..seeds {
                jobs.push(
                    qroute_service::RouteJob::from_class(side, "auto", &class.label(), seed)
                        .expect("bench class labels are valid service classes"),
                );
            }
        }
    }
    jobs
}

/// Measure one service throughput cell.
pub fn measure_service_cell(
    side: usize,
    workers: usize,
    seeds: u64,
    timing: bool,
) -> ServiceBenchCell {
    let mut engine = qroute_service::Engine::new(
        qroute_service::EngineConfig::builder()
            .workers(workers)
            .build()
            .expect("the service worker axis is valid"),
    );
    let jobs = service_jobs(side, seeds);
    let job_count = jobs.len();
    let t0 = std::time::Instant::now();
    let outcomes = engine.run(jobs);
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(
        outcomes.iter().all(|o| o.error.is_none()),
        "service bench batch must route cleanly"
    );
    let stats = engine.cache_stats();
    ServiceBenchCell {
        side,
        workers,
        jobs: job_count,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        hit_rate: stats.hit_rate(),
        jobs_per_sec: if timing && elapsed > 0.0 {
            job_count as f64 / elapsed
        } else {
            0.0
        },
    }
}

/// The JSONL job stream every daemon bench client replays — the
/// committed example batch, so the daemon matrix exercises exactly the
/// wire format the README documents.
pub const DAEMON_BENCH_JOBS: &str = include_str!("../../../examples/jobs.jsonl");

/// One routing-daemon throughput cell: `clients` concurrent connections
/// each replaying [`DAEMON_BENCH_JOBS`] through a live TCP daemon.
///
/// The shared-cache counters are deterministic regardless of client
/// interleaving: the shard-locked get-or-insert admits exactly one miss
/// per distinct canonical key (the capacity far exceeds the distinct
/// keys in the example batch, so nothing evicts), and every other lookup
/// hits. `jobs_per_sec` is wall-clock-derived and zeroed when timing
/// capture is off, exactly like `jobs_per_sec` in the service matrix.
#[derive(Debug, Clone, Serialize)]
pub struct DaemonBenchCell {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total jobs routed across all clients.
    pub jobs: usize,
    /// Shared canonical-cache hits.
    pub cache_hits: u64,
    /// Shared canonical-cache misses (= distinct canonical keys).
    pub cache_misses: u64,
    /// Shared canonical-cache evictions.
    pub cache_evictions: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub hit_rate: f64,
    /// Aggregate throughput across clients (`0.0` when timing capture
    /// was disabled).
    pub jobs_per_sec: f64,
}

impl DaemonBenchCell {
    /// The cell's identity within a report's daemon matrix.
    pub fn key(&self) -> usize {
        self.clients
    }
}

/// Measure one daemon throughput cell: bind an in-process daemon on an
/// ephemeral port, replay [`DAEMON_BENCH_JOBS`] from `clients`
/// concurrent connections, and snapshot the shared-cache counters after
/// every client drained.
pub fn measure_daemon_cell(clients: usize, timing: bool) -> DaemonBenchCell {
    let daemon = qroute_service::Daemon::bind(
        "127.0.0.1:0",
        qroute_service::EngineConfig::builder()
            .build()
            .expect("the default engine config is valid"),
    )
    .expect("bind the bench daemon on an ephemeral port");
    let addr = daemon.local_addr();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client =
                    qroute_service::Client::connect(addr).expect("connect to the bench daemon");
                let outcomes = client
                    .route_lines(DAEMON_BENCH_JOBS.lines())
                    .expect("replay the example batch");
                assert!(
                    outcomes.iter().all(|l| l.ends_with("\"error\":null}")),
                    "daemon bench batch must route cleanly"
                );
                outcomes.len()
            })
        })
        .collect();
    let jobs: usize = handles
        .into_iter()
        .map(|h| h.join().expect("bench client thread"))
        .sum();
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = daemon.stats();
    daemon.shutdown();
    daemon.join();
    DaemonBenchCell {
        clients,
        jobs,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_evictions: stats.cache_evictions,
        hit_rate: stats.hit_rate,
        jobs_per_sec: if timing && elapsed > 0.0 {
            jobs as f64 / elapsed
        } else {
            0.0
        },
    }
}

/// A complete benchmark report — the `BENCH.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Build environment metadata.
    pub env: BenchEnv,
    /// Run configuration.
    pub config: BenchConfig,
    /// The permutation cell matrix, sorted by (router, class, side).
    pub cells: Vec<BenchCell>,
    /// The circuit cell matrix, sorted by (router, class, side).
    pub circuit_cells: Vec<CircuitBenchCell>,
    /// The non-grid topology matrix, sorted by (topology, router, side).
    /// Gated like the permutation matrix (mean depth, 5% tolerance).
    pub defect_cells: Vec<DefectBenchCell>,
    /// The service throughput matrix, sorted by (side, workers).
    /// Informational (not gated): hit counts are pinned by the service
    /// test suites, and throughput is machine-dependent.
    pub service_cells: Vec<ServiceBenchCell>,
    /// The daemon throughput matrix, sorted by client count.
    /// Informational (not gated), like the service matrix.
    pub daemon_cells: Vec<DaemonBenchCell>,
}

/// The router axis of the permutation benchmark matrix: every
/// [`RouterKind`] in its default configuration.
pub fn bench_routers() -> Vec<RouterKind> {
    RouterKind::all_default()
}

/// The router axis of the circuit benchmark matrix: the routers that
/// matter inside the transpile loop (§V compares exactly these — the
/// paper router, the naive baseline, the hybrid clamp, and ATS). The
/// remaining kinds are permutation-level reference implementations.
pub fn circuit_routers() -> Vec<RouterKind> {
    vec![
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::hybrid(),
        RouterKind::Ats,
    ]
}

/// Measure one circuit cell: transpile `seeds` seeded instances, verify
/// every transpile through the differential harness (panicking on any
/// verification failure — a benchmark must not record wrong answers),
/// and summarize each metric's per-seed samples.
pub fn measure_circuit_cell(
    side: usize,
    class: CircuitClass,
    router: &RouterKind,
    seeds: u64,
    timing: bool,
) -> CircuitBenchCell {
    let grid = Grid::new(side, side);
    let mut swaps = Vec::with_capacity(seeds as usize);
    let mut routing_depth = Vec::with_capacity(seeds as usize);
    let mut invocations = Vec::with_capacity(seeds as usize);
    let mut output_depth = Vec::with_capacity(seeds as usize);
    let mut times = Vec::with_capacity(seeds as usize);
    let mut logical_shape = (0usize, 0usize, 0usize);
    let mut statevector_checked = true;
    for seed in 0..seeds {
        let (logical, layout) = class.generate(grid, seed);
        logical_shape = (
            logical.num_qubits(),
            logical.size(),
            logical.two_qubit_count(),
        );
        let transpiler = Transpiler::new(
            grid,
            TranspileOptions { router: router.clone(), initial_layout: layout },
        );
        let t0 = std::time::Instant::now();
        let res = transpiler.run(&logical);
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        let summary = verify_transpile(grid, &logical, &res).unwrap_or_else(|e| {
            panic!(
                "{} failed verification on {}/{side}x{side}/seed {seed}: {e}",
                router.label(),
                class.label()
            )
        });
        statevector_checked &= summary.statevector_checked;
        swaps.push(res.swap_count as f64);
        routing_depth.push(res.routing_depth_added as f64);
        invocations.push(res.routing_invocations as f64);
        output_depth.push(res.physical.depth() as f64);
        if timing {
            times.push(elapsed_ms);
        }
    }
    CircuitBenchCell {
        router: router.label().to_string(),
        class: class.label(),
        side,
        qubits: grid.len(),
        logical_qubits: logical_shape.0,
        logical_gates: logical_shape.1,
        logical_two_qubit: logical_shape.2,
        statevector_checked,
        swaps: SampleSummary::from_samples(&swaps),
        routing_depth: SampleSummary::from_samples(&routing_depth),
        invocations: SampleSummary::from_samples(&invocations),
        output_depth: SampleSummary::from_samples(&output_depth),
        time_ms: SampleSummary::from_samples(&times),
    }
}

/// Measure one benchmark cell: route `seeds` instances, verify every
/// schedule, and summarize each metric's per-seed samples.
pub fn measure_bench_cell(
    side: usize,
    class: WorkloadClass,
    router: &RouterKind,
    seeds: u64,
    timing: bool,
) -> BenchCell {
    let grid = Grid::new(side, side);
    let mut depths = Vec::with_capacity(seeds as usize);
    let mut sizes = Vec::with_capacity(seeds as usize);
    let mut lbs = Vec::with_capacity(seeds as usize);
    let mut times = Vec::with_capacity(seeds as usize);
    for seed in 0..seeds {
        let pi = class.generate(grid, seed);
        let timed = route_timed(grid, &pi, router);
        assert!(
            timed.schedule.realizes(&pi),
            "{} produced a wrong schedule",
            router.label()
        );
        depths.push(timed.stats.depth as f64);
        sizes.push(timed.stats.size as f64);
        lbs.push(timed.stats.lower_bound as f64);
        if timing {
            times.push(timed.route_ms);
        }
    }
    BenchCell {
        router: router.label().to_string(),
        class: class.label(),
        side,
        qubits: grid.len(),
        depth: SampleSummary::from_samples(&depths),
        size: SampleSummary::from_samples(&sizes),
        lower_bound: SampleSummary::from_samples(&lbs),
        time_ms: SampleSummary::from_samples(&times),
    }
}

fn canonical_key_order<T, F>(cells: &mut [T], key: F)
where
    F: Fn(&T) -> (&str, &str, usize),
{
    cells.sort_by(|a, b| key(a).cmp(&key(b)));
}

/// Run the full benchmark matrix — permutation cells (all
/// [`bench_routers`] × [`WorkloadClass::bench_classes`] × `config.sides`)
/// and circuit cells (all [`circuit_routers`] ×
/// [`CircuitClass::all_classes`] × `config.circuit_sides`) — and return
/// the report with both matrices in canonical (router, class, side)
/// order.
///
/// Untimed runs measure cells in parallel via rayon (depth, size and
/// swap counts do not depend on wall-clock); timed runs measure serially
/// so time samples are not distorted by core contention — the same
/// discipline [`crate::experiments::figure5`] applies.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let timing = config.timing;
    let seeds = config.seeds;
    let circuit_seeds = config.circuit_seeds;

    let mut jobs: Vec<(usize, WorkloadClass, RouterKind)> = Vec::new();
    for &side in &config.sides {
        for class in WorkloadClass::bench_classes() {
            for router in bench_routers() {
                jobs.push((side, class, router));
            }
        }
    }
    let measure = |(side, class, router): (usize, WorkloadClass, RouterKind)| -> BenchCell {
        measure_bench_cell(side, class, &router, seeds, timing)
    };

    let mut circuit_jobs: Vec<(usize, CircuitClass, RouterKind)> = Vec::new();
    for &side in &config.circuit_sides {
        for class in CircuitClass::all_classes() {
            for router in circuit_routers() {
                circuit_jobs.push((side, class, router));
            }
        }
    }
    let measure_circuit =
        |(side, class, router): (usize, CircuitClass, RouterKind)| -> CircuitBenchCell {
            measure_circuit_cell(side, class, &router, circuit_seeds, timing)
        };

    let defect_seeds = config.defect_seeds;
    let mut defect_jobs: Vec<(usize, &'static str, &'static str)> = Vec::new();
    for &side in &config.defect_sides {
        for kind in DEFECT_TOPOLOGY_AXIS {
            for router in DEFECT_ROUTER_AXIS {
                defect_jobs.push((side, kind, router));
            }
        }
    }
    let measure_defect = |(side, kind, router): (usize, &str, &str)| -> DefectBenchCell {
        measure_defect_cell(side, kind, router, defect_seeds, timing)
    };

    let (mut cells, mut circuit_cells, mut defect_cells): (
        Vec<BenchCell>,
        Vec<CircuitBenchCell>,
        Vec<DefectBenchCell>,
    ) = if timing {
        (
            jobs.into_iter().map(measure).collect(),
            circuit_jobs.into_iter().map(measure_circuit).collect(),
            defect_jobs.into_iter().map(measure_defect).collect(),
        )
    } else {
        (
            jobs.into_par_iter().map(measure).collect(),
            circuit_jobs.into_par_iter().map(measure_circuit).collect(),
            defect_jobs.into_par_iter().map(measure_defect).collect(),
        )
    };
    canonical_key_order(&mut cells, BenchCell::key);
    canonical_key_order(&mut circuit_cells, CircuitBenchCell::key);
    canonical_key_order(&mut defect_cells, DefectBenchCell::key);
    // Service cells always run serially: each cell owns a worker pool,
    // and timed throughput must not fight rayon for cores.
    let mut service_cells = Vec::new();
    for &side in &config.service_sides {
        for workers in SERVICE_WORKER_AXIS {
            service_cells.push(measure_service_cell(
                side,
                workers,
                config.service_seeds,
                timing,
            ));
        }
    }
    service_cells.sort_by_key(ServiceBenchCell::key);
    // Daemon cells likewise run serially: each cell owns a live TCP
    // daemon with its own worker pool and client threads.
    let mut daemon_cells = Vec::new();
    for &clients in &config.daemon_clients {
        daemon_cells.push(measure_daemon_cell(clients, timing));
    }
    daemon_cells.sort_by_key(DaemonBenchCell::key);
    BenchReport {
        schema_version: SCHEMA_VERSION,
        env: BenchEnv::capture(),
        config: config.clone(),
        cells,
        circuit_cells,
        defect_cells,
        service_cells,
        daemon_cells,
    }
}

/// A focused permutation-only run for router smoke checks (`repro bench
/// --routers`): the permutation matrix restricted to `routers`, every
/// other matrix skipped. Reuses the run configuration (sides, seeds,
/// timing) and the report schema, so the output is a valid `BENCH.json`
/// whose circuit/defect/service/daemon matrices are empty.
pub fn run_router_smoke(config: &BenchConfig, routers: &[RouterKind]) -> BenchReport {
    let timing = config.timing;
    let seeds = config.seeds;
    let mut jobs: Vec<(usize, WorkloadClass, RouterKind)> = Vec::new();
    for &side in &config.sides {
        for class in WorkloadClass::bench_classes() {
            for router in routers {
                jobs.push((side, class, router.clone()));
            }
        }
    }
    let measure = |(side, class, router): (usize, WorkloadClass, RouterKind)| -> BenchCell {
        measure_bench_cell(side, class, &router, seeds, timing)
    };
    let mut cells: Vec<BenchCell> = if timing {
        jobs.into_iter().map(measure).collect()
    } else {
        jobs.into_par_iter().map(measure).collect()
    };
    canonical_key_order(&mut cells, BenchCell::key);
    BenchReport {
        schema_version: SCHEMA_VERSION,
        env: BenchEnv::capture(),
        config: config.clone(),
        cells,
        circuit_cells: Vec::new(),
        defect_cells: Vec::new(),
        service_cells: Vec::new(),
        daemon_cells: Vec::new(),
    }
}

impl BenchReport {
    /// Serialize to the canonical `BENCH.json` encoding: pretty-printed
    /// JSON with declaration-ordered keys and a trailing newline. For a
    /// fixed configuration with timing disabled, the output is
    /// byte-identical across runs and machines.
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("serialize bench report");
        json.push('\n');
        json
    }

    /// Parse a report back from its JSON encoding (e.g. a committed
    /// baseline). Rejects schema-version mismatches and malformed cells.
    pub fn from_json(input: &str) -> Result<BenchReport, String> {
        let doc = serde_json::from_str(input).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} != supported {SCHEMA_VERSION}; regenerate the baseline"
            ));
        }
        let str_field = |v: &serde_json::Value, key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(|x| x.as_str())
                .ok_or_else(|| format!("missing string field {key:?}"))?
                .to_string())
        };
        let num_field = |v: &serde_json::Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        // Strict: fractional or negative values are malformed, not
        // truncatable — a hand-edited "side": 4.5 must not silently
        // collide with the real side-4 cell.
        let uint_field = |v: &serde_json::Value, key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .map(|x| x as usize)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let summary_field = |v: &serde_json::Value, key: &str| -> Result<SampleSummary, String> {
            let s = v
                .get(key)
                .ok_or_else(|| format!("missing summary {key:?}"))?;
            Ok(SampleSummary {
                n: uint_field(s, "n")?,
                mean: num_field(s, "mean")?,
                min: num_field(s, "min")?,
                p50: num_field(s, "p50")?,
                p90: num_field(s, "p90")?,
                max: num_field(s, "max")?,
            })
        };
        let bool_field = |v: &serde_json::Value, key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(|x| x.as_bool())
                .ok_or_else(|| format!("missing boolean field {key:?}"))
        };
        let side_list = |v: &serde_json::Value, key: &str| -> Result<Vec<usize>, String> {
            v.get(key)
                .and_then(|x| x.as_array())
                .ok_or_else(|| format!("missing config.{key}"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .map(|s| s as usize)
                        .ok_or_else(|| "bad side".to_string())
                })
                .collect()
        };
        let env_v = doc.get("env").ok_or("missing env")?;
        let config_v = doc.get("config").ok_or("missing config")?;
        let cells_v = doc
            .get("cells")
            .and_then(|v| v.as_array())
            .ok_or("missing cells array")?;
        let mut cells = Vec::with_capacity(cells_v.len());
        for c in cells_v {
            cells.push(BenchCell {
                router: str_field(c, "router")?,
                class: str_field(c, "class")?,
                side: uint_field(c, "side")?,
                qubits: uint_field(c, "qubits")?,
                depth: summary_field(c, "depth")?,
                size: summary_field(c, "size")?,
                lower_bound: summary_field(c, "lower_bound")?,
                time_ms: summary_field(c, "time_ms")?,
            });
        }
        let u64_field = |v: &serde_json::Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let circuit_cells_v = doc
            .get("circuit_cells")
            .and_then(|v| v.as_array())
            .ok_or("missing circuit_cells array")?;
        let mut circuit_cells = Vec::with_capacity(circuit_cells_v.len());
        for c in circuit_cells_v {
            circuit_cells.push(CircuitBenchCell {
                router: str_field(c, "router")?,
                class: str_field(c, "class")?,
                side: uint_field(c, "side")?,
                qubits: uint_field(c, "qubits")?,
                logical_qubits: uint_field(c, "logical_qubits")?,
                logical_gates: uint_field(c, "logical_gates")?,
                logical_two_qubit: uint_field(c, "logical_two_qubit")?,
                statevector_checked: bool_field(c, "statevector_checked")?,
                swaps: summary_field(c, "swaps")?,
                routing_depth: summary_field(c, "routing_depth")?,
                invocations: summary_field(c, "invocations")?,
                output_depth: summary_field(c, "output_depth")?,
                time_ms: summary_field(c, "time_ms")?,
            });
        }
        let defect_cells_v = doc
            .get("defect_cells")
            .and_then(|v| v.as_array())
            .ok_or("missing defect_cells array")?;
        let mut defect_cells = Vec::with_capacity(defect_cells_v.len());
        for c in defect_cells_v {
            defect_cells.push(DefectBenchCell {
                topology: str_field(c, "topology")?,
                router: str_field(c, "router")?,
                side: uint_field(c, "side")?,
                qubits: uint_field(c, "qubits")?,
                depth: summary_field(c, "depth")?,
                size: summary_field(c, "size")?,
                lower_bound: summary_field(c, "lower_bound")?,
                time_ms: summary_field(c, "time_ms")?,
            });
        }
        let service_cells_v = doc
            .get("service_cells")
            .and_then(|v| v.as_array())
            .ok_or("missing service_cells array")?;
        let mut service_cells = Vec::with_capacity(service_cells_v.len());
        for c in service_cells_v {
            service_cells.push(ServiceBenchCell {
                side: uint_field(c, "side")?,
                workers: uint_field(c, "workers")?,
                jobs: uint_field(c, "jobs")?,
                cache_hits: u64_field(c, "cache_hits")?,
                cache_misses: u64_field(c, "cache_misses")?,
                cache_evictions: u64_field(c, "cache_evictions")?,
                hit_rate: num_field(c, "hit_rate")?,
                jobs_per_sec: num_field(c, "jobs_per_sec")?,
            });
        }
        let daemon_cells_v = doc
            .get("daemon_cells")
            .and_then(|v| v.as_array())
            .ok_or("missing daemon_cells array")?;
        let mut daemon_cells = Vec::with_capacity(daemon_cells_v.len());
        for c in daemon_cells_v {
            daemon_cells.push(DaemonBenchCell {
                clients: uint_field(c, "clients")?,
                jobs: uint_field(c, "jobs")?,
                cache_hits: u64_field(c, "cache_hits")?,
                cache_misses: u64_field(c, "cache_misses")?,
                cache_evictions: u64_field(c, "cache_evictions")?,
                hit_rate: num_field(c, "hit_rate")?,
                jobs_per_sec: num_field(c, "jobs_per_sec")?,
            });
        }
        Ok(BenchReport {
            schema_version: version,
            env: BenchEnv {
                version: str_field(env_v, "version")?,
                os: str_field(env_v, "os")?,
                arch: str_field(env_v, "arch")?,
                debug_assertions: bool_field(env_v, "debug_assertions")?,
            },
            config: BenchConfig {
                sides: side_list(config_v, "sides")?,
                seeds: config_v
                    .get("seeds")
                    .and_then(|v| v.as_u64())
                    .ok_or("missing config.seeds")?,
                timing: bool_field(config_v, "timing")?,
                circuit_sides: side_list(config_v, "circuit_sides")?,
                circuit_seeds: config_v
                    .get("circuit_seeds")
                    .and_then(|v| v.as_u64())
                    .ok_or("missing config.circuit_seeds")?,
                service_sides: side_list(config_v, "service_sides")?,
                service_seeds: config_v
                    .get("service_seeds")
                    .and_then(|v| v.as_u64())
                    .ok_or("missing config.service_seeds")?,
                defect_sides: side_list(config_v, "defect_sides")?,
                defect_seeds: config_v
                    .get("defect_seeds")
                    .and_then(|v| v.as_u64())
                    .ok_or("missing config.defect_seeds")?,
                daemon_clients: side_list(config_v, "daemon_clients")?,
            },
            cells,
            circuit_cells,
            defect_cells,
            service_cells,
            daemon_cells,
        })
    }
}

/// One metric comparison between a current cell and its baseline cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellDelta {
    /// Router label.
    pub router: String,
    /// Class label.
    pub class: String,
    /// Grid side.
    pub side: usize,
    /// Which metric regressed-or-not: `"depth"` or `"time_ms"`.
    pub metric: String,
    /// Baseline mean.
    pub baseline_mean: f64,
    /// Current mean.
    pub current_mean: f64,
    /// Relative change (`0.10` = 10% worse than baseline).
    pub delta: f64,
    /// Tolerance the delta was judged against.
    pub tolerance: f64,
    /// `true` when `delta > tolerance`.
    pub regressed: bool,
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Every metric comparison made (depth always; time when both
    /// reports captured timing).
    pub deltas: Vec<CellDelta>,
    /// Baseline cell keys absent from the current report. A non-empty
    /// list fails the check: a gate that silently drops cells is no gate.
    pub missing_in_current: Vec<String>,
    /// Current cell keys absent from the baseline (informational — new
    /// routers/classes/sides are expected to appear before the baseline
    /// is refreshed).
    pub new_in_current: Vec<String>,
    /// Cells whose seed counts differ between the reports. Means over
    /// different sample sets are not comparable (a delta could come
    /// purely from the extra seeds), so these fail the check instead of
    /// being diffed.
    pub seed_mismatches: Vec<String>,
}

impl CheckOutcome {
    /// The comparisons that exceeded tolerance.
    pub fn regressions(&self) -> Vec<&CellDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// `true` when no metric regressed, no baseline cell went missing,
    /// and every compared cell used the same seed count.
    pub fn passed(&self) -> bool {
        self.missing_in_current.is_empty()
            && self.seed_mismatches.is_empty()
            && self.regressions().is_empty()
    }
}

/// Compare `current` against `baseline` cell-by-cell, over both the
/// permutation and the circuit matrices.
///
/// Permutation cells: mean depth is gated per class by
/// [`depth_tolerance`]. Circuit cells: mean routing depth added *and*
/// mean swap count are gated per class by [`circuit_tolerance`] (inside
/// the transpile loop the two trade off differently than in isolated
/// permutations, so both are pinned). Mean time is gated by
/// [`TIME_TOLERANCE`] when both cells captured timing (`n > 0`).
/// Size/lower bound (permutation) and invocations/output depth (circuit)
/// are recorded but not gated.
pub fn check_against_baseline(current: &BenchReport, baseline: &BenchReport) -> CheckOutcome {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    let mut seed_mismatches = Vec::new();
    for base in &baseline.cells {
        let Some(cur) = current.cells.iter().find(|c| c.key() == base.key()) else {
            missing.push(format!(
                "{}/{}/{side}x{side}",
                base.router,
                base.class,
                side = base.side
            ));
            continue;
        };
        if cur.depth.n != base.depth.n {
            seed_mismatches.push(format!(
                "{}/{}/{side}x{side}: {} seeds vs baseline {}",
                base.router,
                base.class,
                cur.depth.n,
                base.depth.n,
                side = base.side
            ));
            continue;
        }
        let depth_tol = cell_depth_tolerance(&base.router, &base.class);
        let depth_delta = cur.depth.mean_delta(&base.depth);
        deltas.push(CellDelta {
            router: base.router.clone(),
            class: base.class.clone(),
            side: base.side,
            metric: "depth".to_string(),
            baseline_mean: base.depth.mean,
            current_mean: cur.depth.mean,
            delta: depth_delta,
            tolerance: depth_tol,
            regressed: depth_delta > depth_tol,
        });
        if base.time_ms.n > 0 && cur.time_ms.n > 0 {
            let time_delta = cur.time_ms.mean_delta(&base.time_ms);
            deltas.push(CellDelta {
                router: base.router.clone(),
                class: base.class.clone(),
                side: base.side,
                metric: "time_ms".to_string(),
                baseline_mean: base.time_ms.mean,
                current_mean: cur.time_ms.mean,
                delta: time_delta,
                tolerance: TIME_TOLERANCE,
                regressed: time_delta > TIME_TOLERANCE,
            });
        }
    }
    for base in &baseline.circuit_cells {
        let Some(cur) = current.circuit_cells.iter().find(|c| c.key() == base.key()) else {
            missing.push(format!(
                "circuit:{}/{}/{side}x{side}",
                base.router,
                base.class,
                side = base.side
            ));
            continue;
        };
        if cur.swaps.n != base.swaps.n {
            seed_mismatches.push(format!(
                "circuit:{}/{}/{side}x{side}: {} seeds vs baseline {}",
                base.router,
                base.class,
                cur.swaps.n,
                base.swaps.n,
                side = base.side
            ));
            continue;
        }
        let tol = circuit_tolerance(&base.class);
        for (metric, cur_s, base_s) in [
            ("routing_depth", &cur.routing_depth, &base.routing_depth),
            ("swaps", &cur.swaps, &base.swaps),
        ] {
            let delta = cur_s.mean_delta(base_s);
            deltas.push(CellDelta {
                router: base.router.clone(),
                class: base.class.clone(),
                side: base.side,
                metric: metric.to_string(),
                baseline_mean: base_s.mean,
                current_mean: cur_s.mean,
                delta,
                tolerance: tol,
                regressed: delta > tol,
            });
        }
        if base.time_ms.n > 0 && cur.time_ms.n > 0 {
            let time_delta = cur.time_ms.mean_delta(&base.time_ms);
            deltas.push(CellDelta {
                router: base.router.clone(),
                class: base.class.clone(),
                side: base.side,
                metric: "time_ms".to_string(),
                baseline_mean: base.time_ms.mean,
                current_mean: cur.time_ms.mean,
                delta: time_delta,
                tolerance: TIME_TOLERANCE,
                regressed: time_delta > TIME_TOLERANCE,
            });
        }
    }
    for base in &baseline.defect_cells {
        let Some(cur) = current.defect_cells.iter().find(|c| c.key() == base.key()) else {
            missing.push(format!(
                "defect:{}/{}/side{}",
                base.topology, base.router, base.side
            ));
            continue;
        };
        if cur.depth.n != base.depth.n {
            seed_mismatches.push(format!(
                "defect:{}/{}/side{}: {} seeds vs baseline {}",
                base.topology, base.router, base.side, cur.depth.n, base.depth.n
            ));
            continue;
        }
        let depth_delta = cur.depth.mean_delta(&base.depth);
        deltas.push(CellDelta {
            router: base.router.clone(),
            class: base.topology.clone(),
            side: base.side,
            metric: "depth".to_string(),
            baseline_mean: base.depth.mean,
            current_mean: cur.depth.mean,
            delta: depth_delta,
            tolerance: DEFECT_DEPTH_TOLERANCE,
            regressed: depth_delta > DEFECT_DEPTH_TOLERANCE,
        });
        if base.time_ms.n > 0 && cur.time_ms.n > 0 {
            let time_delta = cur.time_ms.mean_delta(&base.time_ms);
            deltas.push(CellDelta {
                router: base.router.clone(),
                class: base.topology.clone(),
                side: base.side,
                metric: "time_ms".to_string(),
                baseline_mean: base.time_ms.mean,
                current_mean: cur.time_ms.mean,
                delta: time_delta,
                tolerance: TIME_TOLERANCE,
                regressed: time_delta > TIME_TOLERANCE,
            });
        }
    }
    let mut new_in_current: Vec<String> = current
        .cells
        .iter()
        .filter(|c| !baseline.cells.iter().any(|b| b.key() == c.key()))
        .map(|c| format!("{}/{}/{side}x{side}", c.router, c.class, side = c.side))
        .collect();
    new_in_current.extend(
        current
            .circuit_cells
            .iter()
            .filter(|c| !baseline.circuit_cells.iter().any(|b| b.key() == c.key()))
            .map(|c| {
                format!(
                    "circuit:{}/{}/{side}x{side}",
                    c.router,
                    c.class,
                    side = c.side
                )
            }),
    );
    new_in_current.extend(
        current
            .defect_cells
            .iter()
            .filter(|c| !baseline.defect_cells.iter().any(|b| b.key() == c.key()))
            .map(|c| format!("defect:{}/{}/side{}", c.topology, c.router, c.side)),
    );
    CheckOutcome { deltas, missing_in_current: missing, new_in_current, seed_mismatches }
}

/// Render a markdown delta table for the given comparisons (typically
/// [`CheckOutcome::regressions`], worst first).
pub fn delta_table_markdown(deltas: &[&CellDelta]) -> String {
    let mut out = String::from(
        "| router | class | n×n | metric | baseline | current | delta | tolerance |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let mut sorted: Vec<&&CellDelta> = deltas.iter().collect();
    sorted.sort_by(|a, b| {
        b.delta
            .partial_cmp(&a.delta)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for d in sorted {
        let _ = writeln!(
            out,
            "| {} | {} | {side}×{side} | {} | {:.3} | {:.3} | {:+.1}% | {:.1}% |",
            d.router,
            d.class,
            d.metric,
            d.baseline_mean,
            d.current_mean,
            d.delta * 100.0,
            d.tolerance * 100.0,
            side = d.side,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchConfig {
        BenchConfig {
            sides: vec![4],
            seeds: 2,
            timing: false,
            circuit_sides: vec![4],
            circuit_seeds: 1,
            service_sides: vec![4],
            service_seeds: 1,
            defect_sides: vec![5],
            defect_seeds: 1,
            daemon_clients: vec![1, 2],
        }
    }

    #[test]
    fn report_covers_full_matrix() {
        let report = run_bench(&tiny_config());
        let routers = bench_routers().len();
        let classes = WorkloadClass::bench_classes().len();
        assert_eq!(report.cells.len(), routers * classes);
        assert_eq!(
            report.circuit_cells.len(),
            circuit_routers().len() * CircuitClass::all_classes().len()
        );
        assert_eq!(
            report.defect_cells.len(),
            DEFECT_TOPOLOGY_AXIS.len() * DEFECT_ROUTER_AXIS.len()
        );
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        // Canonical order: sorted by (router, class, side), both matrices.
        let keys: Vec<_> = report
            .cells
            .iter()
            .map(|c| (c.router.clone(), c.class.clone(), c.side))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let ckeys: Vec<_> = report
            .circuit_cells
            .iter()
            .map(|c| (c.router.clone(), c.class.clone(), c.side))
            .collect();
        let mut csorted = ckeys.clone();
        csorted.sort();
        assert_eq!(ckeys, csorted);
    }

    #[test]
    fn circuit_cells_record_verified_metrics() {
        let cell = measure_circuit_cell(
            4,
            CircuitClass::QasmReplay,
            &RouterKind::locality_aware(),
            2,
            false,
        );
        assert_eq!(cell.qubits, 16);
        assert_eq!(cell.logical_qubits, 10);
        assert!(cell.logical_two_qubit > 0);
        // 10 logical qubits is within the simulator cutoff: every seed
        // was statevector-verified against the logical circuit.
        assert!(cell.statevector_checked);
        assert!(cell.swaps.mean > 0.0, "scattered replay must route");
        assert_eq!(cell.swaps.n, 2);
        assert_eq!(cell.time_ms.n, 0, "untimed cell records no samples");

        // Full-occupancy classes exceed the cutoff but still pass the
        // structural verification tiers.
        let wide = measure_circuit_cell(4, CircuitClass::SparseRandom, &RouterKind::Ats, 1, false);
        assert!(!wide.statevector_checked);
        assert_eq!(wide.logical_qubits, 16);
    }

    #[test]
    fn service_cells_cover_the_worker_axis_with_invariant_cache_metrics() {
        let report = run_bench(&tiny_config());
        assert_eq!(report.service_cells.len(), SERVICE_WORKER_AXIS.len());
        let keys: Vec<_> = report
            .service_cells
            .iter()
            .map(ServiceBenchCell::key)
            .collect();
        assert_eq!(keys, vec![(4, 1), (4, 4)]);
        let reference = &report.service_cells[0];
        let jobs = service_jobs(4, 1).len();
        assert_eq!(reference.jobs, jobs);
        // Two passes over the class pool: at least the entire second pass
        // hits (cross-class canonical collisions can only add more — on a
        // 4x4 grid `random`, `block4` and `overlap8s4` even generate the
        // same instance).
        assert_eq!(reference.cache_hits + reference.cache_misses, jobs as u64);
        assert!(reference.cache_hits >= jobs as u64 / 2, "{reference:?}");
        assert!(reference.cache_misses >= 1, "{reference:?}");
        assert!(reference.hit_rate >= 0.5 && reference.hit_rate < 1.0);
        assert_eq!(
            reference.jobs_per_sec, 0.0,
            "untimed cells record no throughput"
        );
        for cell in &report.service_cells[1..] {
            assert_eq!(cell.cache_hits, reference.cache_hits);
            assert_eq!(cell.cache_misses, reference.cache_misses);
            assert_eq!(cell.cache_evictions, reference.cache_evictions);
        }
        // Timed measurement produces a real throughput number.
        let timed = measure_service_cell(4, 2, 1, true);
        assert!(timed.jobs_per_sec > 0.0);
    }

    #[test]
    fn daemon_cells_cover_the_client_axis_with_deterministic_cache_counters() {
        let report = run_bench(&tiny_config());
        assert_eq!(report.daemon_cells.len(), 2);
        let keys: Vec<_> = report
            .daemon_cells
            .iter()
            .map(DaemonBenchCell::key)
            .collect();
        assert_eq!(keys, vec![1, 2]);
        let batch_len = DAEMON_BENCH_JOBS
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        let single = &report.daemon_cells[0];
        assert_eq!(single.jobs, batch_len);
        assert_eq!(single.cache_hits + single.cache_misses, batch_len as u64);
        assert_eq!(single.cache_evictions, 0, "{single:?}");
        assert_eq!(
            single.jobs_per_sec, 0.0,
            "untimed cells record no throughput"
        );
        // The distinct-key count is interleaving-independent: N clients
        // replaying the same batch miss exactly once per distinct key.
        let double = &report.daemon_cells[1];
        assert_eq!(double.jobs, 2 * batch_len);
        assert_eq!(double.cache_misses, single.cache_misses);
        assert_eq!(
            double.cache_hits,
            2 * batch_len as u64 - single.cache_misses
        );
        // Timed measurement produces a real throughput number.
        let timed = measure_daemon_cell(2, true);
        assert!(timed.jobs_per_sec > 0.0);
    }

    #[test]
    fn untimed_reports_are_byte_identical() {
        let a = run_bench(&tiny_config()).to_json();
        let b = run_bench(&tiny_config()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let report = run_bench(&tiny_config());
        let parsed = BenchReport::from_json(&report.to_json()).expect("parse own output");
        assert_eq!(parsed.to_json(), report.to_json());
    }

    #[test]
    fn from_json_rejects_fractional_integer_fields() {
        let report = run_bench(&tiny_config());
        let tampered = report.to_json().replacen("\"side\": 4", "\"side\": 4.5", 1);
        let err = BenchReport::from_json(&tampered).unwrap_err();
        assert!(err.contains("side"), "{err}");
    }

    #[test]
    fn from_json_rejects_wrong_schema_version() {
        let mut report = run_bench(&tiny_config());
        report.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn identical_reports_pass_the_check() {
        let report = run_bench(&tiny_config());
        let outcome = check_against_baseline(&report, &report);
        assert!(outcome.passed());
        assert!(outcome.missing_in_current.is_empty());
        assert!(outcome.new_in_current.is_empty());
        // One depth comparison per permutation cell, two gated metrics
        // per circuit cell, one depth comparison per defect cell; no
        // timing comparisons.
        assert_eq!(
            outcome.deltas.len(),
            report.cells.len() + 2 * report.circuit_cells.len() + report.defect_cells.len()
        );
    }

    #[test]
    fn injected_circuit_regression_fails_the_check() {
        let current = run_bench(&tiny_config());
        let mut baseline = current.clone();
        // Pretend the baseline needed 20% fewer swaps than we do now.
        let cell = baseline
            .circuit_cells
            .iter_mut()
            .find(|c| c.swaps.mean > 1.0)
            .expect("some circuit cell routes");
        cell.swaps.mean /= 1.2;
        let outcome = check_against_baseline(&current, &baseline);
        assert!(!outcome.passed());
        let regs = outcome.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "swaps");
    }

    #[test]
    fn missing_circuit_cell_fails_the_check() {
        let full = run_bench(&tiny_config());
        let mut truncated = full.clone();
        truncated.circuit_cells.pop();
        let outcome = check_against_baseline(&truncated, &full);
        assert!(!outcome.passed());
        assert_eq!(outcome.missing_in_current.len(), 1);
        assert!(outcome.missing_in_current[0].starts_with("circuit:"));
        // The reverse direction: an extra circuit cell passes.
        let outcome = check_against_baseline(&full, &truncated);
        assert!(outcome.passed());
        assert_eq!(outcome.new_in_current.len(), 1);
    }

    #[test]
    fn injected_depth_regression_fails_the_check() {
        let current = run_bench(&tiny_config());
        let mut baseline = current.clone();
        // Pretend the baseline was 20% shallower than what we measure now.
        baseline.cells[0].depth.mean = (current.cells[0].depth.mean / 1.2).max(0.1);
        let outcome = check_against_baseline(&current, &baseline);
        assert!(!outcome.passed());
        let regs = outcome.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "depth");
        let table = delta_table_markdown(&regs);
        assert!(table.contains("depth"), "{table}");
        assert!(table.contains('%'), "{table}");
    }

    #[test]
    fn runtime_regression_beyond_25_percent_fails() {
        let mut current = run_bench(&tiny_config());
        let mut baseline = current.clone();
        baseline.cells[0].time_ms = SampleSummary::from_samples(&[1.0, 1.0]);
        current.cells[0].time_ms = SampleSummary::from_samples(&[1.3, 1.3]);
        let outcome = check_against_baseline(&current, &baseline);
        let regs = outcome.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "time_ms");
        // 20% slower stays within tolerance.
        current.cells[0].time_ms = SampleSummary::from_samples(&[1.2, 1.2]);
        assert!(check_against_baseline(&current, &baseline).passed());
    }

    #[test]
    fn missing_baseline_cells_fail_new_cells_do_not() {
        let full = run_bench(&tiny_config());
        let mut truncated = full.clone();
        truncated.cells.pop();
        // Current is missing a baseline cell → fail.
        let outcome = check_against_baseline(&truncated, &full);
        assert!(!outcome.passed());
        assert_eq!(outcome.missing_in_current.len(), 1);
        // Current has an extra cell the baseline lacks → pass.
        let outcome = check_against_baseline(&full, &truncated);
        assert!(outcome.passed());
        assert_eq!(outcome.new_in_current.len(), 1);
    }

    #[test]
    fn differing_seed_counts_fail_instead_of_comparing_means() {
        let current = run_bench(&tiny_config());
        let more_seeds = run_bench(&BenchConfig {
            seeds: 3,
            circuit_seeds: 2,
            defect_seeds: 2,
            ..tiny_config()
        });
        let outcome = check_against_baseline(&more_seeds, &current);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.seed_mismatches.len(),
            current.cells.len() + current.circuit_cells.len() + current.defect_cells.len()
        );
        // No means were diffed for mismatched cells.
        assert!(outcome.deltas.is_empty());
    }

    #[test]
    fn defect_cells_measure_real_routes() {
        for kind in DEFECT_TOPOLOGY_AXIS {
            for router in DEFECT_ROUTER_AXIS {
                let cell = measure_defect_cell(5, kind, router, 2, false);
                assert_eq!(cell.topology, kind);
                assert_eq!(cell.router, router);
                assert_eq!(cell.qubits, defect_topology(kind, 5).len());
                assert_eq!(cell.depth.n, 2);
                assert!(
                    cell.depth.mean >= cell.lower_bound.mean,
                    "{kind}/{router}: {cell:?}"
                );
                assert!(cell.size.mean > 0.0, "random workloads must move tokens");
                assert_eq!(cell.time_ms.n, 0, "untimed cell records no samples");
            }
        }
    }

    #[test]
    fn injected_defect_regression_fails_the_check() {
        let current = run_bench(&tiny_config());
        let mut baseline = current.clone();
        baseline.defect_cells[0].depth.mean /= 1.2;
        let outcome = check_against_baseline(&current, &baseline);
        assert!(!outcome.passed());
        let regs = outcome.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "depth");
        assert_eq!(regs[0].class, current.defect_cells[0].topology);
    }

    #[test]
    fn missing_defect_cell_fails_the_check() {
        let full = run_bench(&tiny_config());
        let mut truncated = full.clone();
        truncated.defect_cells.pop();
        let outcome = check_against_baseline(&truncated, &full);
        assert!(!outcome.passed());
        assert!(outcome.missing_in_current[0].starts_with("defect:"));
        let outcome = check_against_baseline(&full, &truncated);
        assert!(outcome.passed());
        assert_eq!(outcome.new_in_current.len(), 1);
    }

    #[test]
    fn defect_patterns_stay_connected_and_interior() {
        for side in [4, 5, 8, 16] {
            let pattern = defect_pattern(side);
            assert!(!pattern.is_empty(), "side {side}");
            let topology = defect_topology("defect", side);
            topology
                .validate_routable()
                .unwrap_or_else(|e| panic!("side {side}: {e}"));
            assert_eq!(topology.dead_vertices(), &pattern[..]);
        }
    }

    #[test]
    fn depth_tolerances_are_class_aware() {
        assert_eq!(depth_tolerance("random"), 0.02);
        assert_eq!(depth_tolerance("block4"), 0.02);
        assert_eq!(depth_tolerance("overlap8s4"), 0.05);
        assert_eq!(depth_tolerance("skinny"), 0.05);
        assert_eq!(depth_tolerance("sparse-pairs"), 0.05);
        assert_eq!(circuit_tolerance("brickwork4"), 0.02);
        assert_eq!(circuit_tolerance("qft"), 0.05);
        assert_eq!(circuit_tolerance("qaoa2"), 0.05);
        assert_eq!(circuit_tolerance("qasm-replay10"), 0.05);
    }

    #[test]
    fn depth_tolerances_are_router_aware() {
        // Pathfinder cells get congestion-schedule headroom on every
        // class; every other router keeps the class-based tolerance.
        assert_eq!(cell_depth_tolerance("pathfinder", "random"), 0.05);
        assert_eq!(cell_depth_tolerance("pathfinder", "sparse-pairs"), 0.05);
        assert_eq!(cell_depth_tolerance("ats", "random"), 0.02);
        assert_eq!(cell_depth_tolerance("ats", "skinny"), 0.05);
        assert_eq!(cell_depth_tolerance("locality-aware", "sparse-pairs"), 0.05);
    }

    #[test]
    fn pathfinder_wins_the_sparse_class_at_side_16() {
        // The acceptance regime for the pathfinder router: on sparse
        // partial permutations at side >= 16 its per-token negotiated
        // search beats the full-grid matching sweeps. The seed count
        // matches `BenchConfig::quick`, so this is exactly the
        // comparison the committed BENCH baseline records.
        let class = WorkloadClass::SparsePairs;
        let seeds = BenchConfig::quick().seeds;
        for side in [16, 32] {
            let pf = measure_bench_cell(side, class, &RouterKind::pathfinder(), seeds, false);
            for rival in [
                RouterKind::locality_aware(),
                RouterKind::naive(),
                RouterKind::hybrid(),
            ] {
                let cell = measure_bench_cell(side, class, &rival, seeds, false);
                assert!(
                    pf.depth.mean < cell.depth.mean,
                    "side {side}: pathfinder mean depth {} vs {} mean depth {}",
                    pf.depth.mean,
                    rival.label(),
                    cell.depth.mean
                );
            }
        }
    }
}
