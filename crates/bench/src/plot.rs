//! Minimal SVG line-chart rendering — regenerates Figures 4 and 5 as
//! actual figures, not just tables.
//!
//! No plotting dependencies: the charts the paper shows are simple
//! multi-series line plots with (optionally logarithmic) axes, which is a
//! few hundred lines of SVG. The output is deterministic, so golden tests
//! can pin structure.

use crate::experiments::Cell;
use std::fmt::Write as _;

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log10 axis (values must be positive).
    Log,
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates, sorted by `x`.
    pub points: Vec<(f64, f64)>,
    /// Stroke color (any SVG color string).
    pub color: String,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title drawn at the top.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

/// A palette matching the paper's green/brown/blue/red feel.
pub const PALETTE: [&str; 6] = [
    "#2e8b57", "#8b5a2b", "#1f77b4", "#d62728", "#9467bd", "#111111",
];

fn nice_ticks(min: f64, max: f64, n: usize) -> Vec<f64> {
    if max <= min {
        return vec![min];
    }
    let span = max - min;
    let raw = span / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= max + 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

impl Chart {
    fn y_transformed(&self, y: f64) -> f64 {
        match self.y_scale {
            Scale::Linear => y,
            Scale::Log => y.max(1e-12).log10(),
        }
    }

    /// Render the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;

        // Data bounds.
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| self.y_transformed(p.1)))
            .collect();
        let (xmin, xmax) = xs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        let (ymin, ymax) = ys
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        let (xmin, xmax) = if xs.is_empty() {
            (0.0, 1.0)
        } else {
            (xmin, xmax)
        };
        let (ymin, ymax) = if ys.is_empty() {
            (0.0, 1.0)
        } else {
            (ymin, ymax)
        };
        let ypad = ((ymax - ymin) * 0.06).max(1e-9);
        let (ymin, ymax) = (ymin - ypad, ymax + ypad);
        let xspan = (xmax - xmin).max(1e-9);
        let yspan = (ymax - ymin).max(1e-9);

        let px = |x: f64| MARGIN_L + (x - xmin) / xspan * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (self.y_transformed(y) - ymin) / yspan * plot_h;
        let py_raw = |ty: f64| MARGIN_T + plot_h - (ty - ymin) / yspan * plot_h;

        let mut svg = String::with_capacity(8192);
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
        // Title and axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            xml_escape(&self.title)
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 10.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="14" y="{:.1}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        );

        // Plot frame.
        let _ = writeln!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333" stroke-width="1"/>"##
        );

        // Y ticks (log scale: decades).
        let ticks: Vec<(f64, String)> = match self.y_scale {
            Scale::Linear => nice_ticks(ymin, ymax, 6)
                .into_iter()
                .map(|t| (t, format_tick(t)))
                .collect(),
            Scale::Log => {
                let lo = ymin.floor() as i32;
                let hi = ymax.ceil() as i32;
                (lo..=hi)
                    .map(|d| (d as f64, format_decade(d)))
                    .filter(|&(t, _)| t >= ymin && t <= ymax)
                    .collect()
            }
        };
        for (t, label) in &ticks {
            let y = py_raw(*t);
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd" stroke-width="0.7"/>"##,
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{y:.1}" font-family="sans-serif" font-size="10" text-anchor="end" dy="3">{label}</text>"#,
                MARGIN_L - 6.0
            );
        }
        // X ticks at the data points of the longest series.
        let mut xticks: Vec<f64> = xs.clone();
        xticks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xticks.dedup();
        for t in &xticks {
            let x = px(*t);
            let _ = writeln!(
                svg,
                r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#333" stroke-width="1"/>"##,
                MARGIN_T + plot_h,
                MARGIN_T + plot_h + 4.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                format_tick(*t)
            );
        }

        // Series.
        for s in &self.series {
            if s.points.is_empty() {
                continue;
            }
            let mut d = String::new();
            for (k, &(x, y)) in s.points.iter().enumerate() {
                let _ = write!(
                    d,
                    "{}{:.1},{:.1} ",
                    if k == 0 { "M" } else { "L" },
                    px(x),
                    py(y)
                );
            }
            let _ = writeln!(
                svg,
                r#"<path d="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
                d.trim(),
                s.color
            );
            for &(x, y) in &s.points {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{}"/>"#,
                    px(x),
                    py(y),
                    s.color
                );
            }
        }

        // Legend.
        for (k, s) in self.series.iter().enumerate() {
            let y = MARGIN_T + 14.0 + 18.0 * k as f64;
            let x = MARGIN_L + plot_w + 10.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{x:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{}" stroke-width="2"/>"#,
                x + 18.0,
                s.color
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{y:.1}" font-family="sans-serif" font-size="11" dy="3">{}</text>"#,
                x + 24.0,
                xml_escape(&s.label)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn format_tick(t: f64) -> String {
    if (t - t.round()).abs() < 1e-9 {
        format!("{}", t.round() as i64)
    } else {
        format!("{t:.2}")
    }
}

fn format_decade(d: i32) -> String {
    match d {
        0 => "1".into(),
        1 => "10".into(),
        2 => "100".into(),
        3 => "1k".into(),
        4 => "10k".into(),
        _ => format!("1e{d}"),
    }
}

/// Build a figure from sweep cells: one series per `(class, router)`
/// pair, x = grid side, y = extracted metric.
pub fn cells_to_chart(
    cells: &[Cell],
    title: &str,
    y_label: &str,
    y_scale: Scale,
    metric: impl Fn(&Cell) -> f64,
) -> Chart {
    let mut keys: Vec<(String, String)> = cells
        .iter()
        .map(|c| (c.class.clone(), c.router.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    let series = keys
        .iter()
        .enumerate()
        .map(|(k, (class, router))| {
            let mut points: Vec<(f64, f64)> = cells
                .iter()
                .filter(|c| &c.class == class && &c.router == router)
                .map(|c| (c.n as f64, metric(c)))
                .collect();
            points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            Series {
                label: format!("{class}/{router}"),
                points,
                color: PALETTE[k % PALETTE.len()].to_string(),
            }
        })
        .collect();
    Chart {
        title: title.to_string(),
        x_label: "grid side n (n×n)".to_string(),
        y_label: y_label.to_string(),
        y_scale,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        Chart {
            title: "test <chart>".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            y_scale: Scale::Linear,
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(4.0, 10.0), (8.0, 20.0), (16.0, 35.0)],
                    color: "#2e8b57".into(),
                },
                Series {
                    label: "b".into(),
                    points: vec![(4.0, 12.0), (8.0, 60.0), (16.0, 300.0)],
                    color: "#8b5a2b".into(),
                },
            ],
        }
    }

    #[test]
    fn svg_is_well_formed_ish() {
        let svg = sample_chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("test &lt;chart&gt;"), "title must be escaped");
    }

    #[test]
    fn log_scale_renders_decades() {
        let mut c = sample_chart();
        c.y_scale = Scale::Log;
        let svg = c.to_svg();
        assert!(
            svg.contains(">10<") || svg.contains(">100<"),
            "decade ticks expected:\n{svg}"
        );
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let c = Chart {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            y_scale: Scale::Linear,
            series: vec![],
        };
        let svg = c.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn nice_ticks_cover_range() {
        let t = nice_ticks(0.0, 100.0, 6);
        assert!(t.len() >= 4 && t.len() <= 12);
        assert!(t.first().copied().unwrap() >= 0.0);
        assert!(t.last().copied().unwrap() <= 100.0 + 1e-9);
        assert_eq!(nice_ticks(5.0, 5.0, 4), vec![5.0]);
    }

    #[test]
    fn cells_to_chart_groups_series() {
        use crate::experiments::measure_cell;
        use crate::workloads::WorkloadClass;
        use qroute_core::RouterKind;
        let cells = vec![
            measure_cell(4, WorkloadClass::Random, &RouterKind::locality_aware(), 1),
            measure_cell(6, WorkloadClass::Random, &RouterKind::locality_aware(), 1),
            measure_cell(4, WorkloadClass::Random, &RouterKind::Ats, 1),
            measure_cell(6, WorkloadClass::Random, &RouterKind::Ats, 1),
        ];
        let chart = cells_to_chart(&cells, "t", "depth", Scale::Linear, |c| c.mean_depth);
        assert_eq!(chart.series.len(), 2);
        for s in &chart.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points[0].0 < s.points[1].0);
        }
    }
}
