//! Sweep drivers for every figure and claim in §V, plus our ablations.

use crate::workloads::WorkloadClass;
use qroute_circuit::{builders, Circuit};
use qroute_core::grid_route::{naive_grid_route, NaiveOptions};
use qroute_core::local_grid::{main_procedure, AssignmentStrategy, LocalRouteOptions, WindowMode};
use qroute_core::{GridRouter, RouterKind};
use qroute_topology::Grid;
use qroute_transpiler::{InitialLayout, TranspileOptions, Transpiler};
use rayon::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// One measured cell of a sweep (a router × class × size aggregate over
/// seeds).
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Grid side (square grids) or `rows`.
    pub n: usize,
    /// Number of qubits (`rows * cols`).
    pub qubits: usize,
    /// Workload class label.
    pub class: String,
    /// Router label.
    pub router: String,
    /// Mean schedule depth across seeds.
    pub mean_depth: f64,
    /// Mean SWAP count across seeds.
    pub mean_size: f64,
    /// Mean routing time in milliseconds.
    pub mean_time_ms: f64,
    /// Mean depth lower bound (max displacement) for reference.
    pub mean_lower_bound: f64,
    /// Number of seeds aggregated.
    pub seeds: usize,
}

/// The routers compared in Figures 4 and 5.
pub fn paper_routers() -> Vec<RouterKind> {
    vec![RouterKind::locality_aware(), RouterKind::Ats]
}

/// Default square-grid sides for the sweeps.
pub fn default_sides() -> Vec<usize> {
    vec![4, 6, 8, 12, 16, 24, 32, 48]
}

/// Measure one cell: route `seeds` instances, verifying every schedule.
///
/// A thin mean-only view over [`crate::bench::measure_bench_cell`], so
/// figure tables and `BENCH.json` are guaranteed to measure the same
/// thing (same seed scheme, same verification, same timing capture).
pub fn measure_cell(side: usize, class: WorkloadClass, router: &RouterKind, seeds: u64) -> Cell {
    let cell = crate::bench::measure_bench_cell(side, class, router, seeds, true);
    Cell {
        n: side,
        qubits: cell.qubits,
        class: cell.class,
        router: cell.router,
        mean_depth: cell.depth.mean,
        mean_size: cell.size.mean,
        mean_time_ms: cell.time_ms.mean,
        mean_lower_bound: cell.lower_bound.mean,
        seeds: seeds as usize,
    }
}

/// Figure 4: depth of computed swap networks across grid sizes and
/// workload classes for locality-aware vs ATS. Cells are routed in
/// parallel (depth does not depend on wall-clock).
pub fn figure4(sides: &[usize], seeds: u64) -> Vec<Cell> {
    let mut jobs: Vec<(usize, WorkloadClass, RouterKind)> = Vec::new();
    for &side in sides {
        for class in WorkloadClass::paper_classes() {
            for router in paper_routers() {
                jobs.push((side, class, router));
            }
        }
    }
    jobs.into_par_iter()
        .map(|(side, class, router)| measure_cell(side, class, &router, seeds))
        .collect()
}

/// Figure 5: time to *find* the swap networks. Run serially so timings
/// are not distorted by core contention.
pub fn figure5(sides: &[usize], seeds: u64) -> Vec<Cell> {
    let mut out = Vec::new();
    for &side in sides {
        for class in WorkloadClass::paper_classes() {
            for router in paper_routers() {
                out.push(measure_cell(side, class, &router, seeds));
            }
        }
    }
    out
}

/// §V claim: the hybrid clamp is never deeper than either input router.
#[derive(Debug, Clone, Serialize)]
pub struct HybridRow {
    /// Grid side.
    pub n: usize,
    /// Class label.
    pub class: String,
    /// Mean depths: locality-aware, naive, hybrid.
    pub local: f64,
    /// Naive baseline mean depth.
    pub naive: f64,
    /// Hybrid mean depth.
    pub hybrid: f64,
    /// `true` when hybrid ≤ min(local, naive) on every seed.
    pub clamp_held: bool,
}

/// Run the hybrid clamp experiment.
pub fn hybrid_check(sides: &[usize], seeds: u64) -> Vec<HybridRow> {
    let classes = [WorkloadClass::Random, WorkloadClass::Overlap { b: 8, s: 4 }];
    let mut rows = Vec::new();
    for &side in sides {
        let grid = Grid::new(side, side);
        for class in classes {
            let (mut sl, mut sn, mut sh) = (0usize, 0usize, 0usize);
            let mut held = true;
            for seed in 0..seeds {
                let pi = class.generate(grid, seed);
                let l = RouterKind::locality_aware().route(grid, &pi).depth();
                let n = RouterKind::naive().route(grid, &pi).depth();
                let h = RouterKind::hybrid().route(grid, &pi).depth();
                held &= h <= l.min(n);
                sl += l;
                sn += n;
                sh += h;
            }
            let k = seeds as f64;
            rows.push(HybridRow {
                n: side,
                class: class.label(),
                local: sl as f64 / k,
                naive: sn as f64 / k,
                hybrid: sh as f64 / k,
                clamp_held: held,
            });
        }
    }
    rows
}

/// Skinny-cycle adversarial sweep (text of §V): locality-aware vs ATS on
/// orthogonal long cycles.
pub fn skinny_sweep(sides: &[usize], seeds: u64) -> Vec<Cell> {
    let mut out = Vec::new();
    for &side in sides {
        for router in [
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::Ats,
        ] {
            out.push(measure_cell(side, WorkloadClass::Skinny, &router, seeds));
        }
    }
    out
}

/// One ablation row: a named variant of the locality-aware router.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Grid side.
    pub n: usize,
    /// Class label.
    pub class: String,
    /// Variant label.
    pub variant: String,
    /// Mean depth.
    pub mean_depth: f64,
    /// Mean routing time (ms).
    pub mean_time_ms: f64,
}

/// The design-choice ablations DESIGN.md calls out: window search,
/// assignment strategy, compaction, transpose.
pub fn ablations(side: usize, seeds: u64) -> Vec<AblationRow> {
    let grid = Grid::new(side, side);
    let variants: Vec<(&str, LocalRouteOptions)> = vec![
        (
            "full (paper+compact+transpose)",
            LocalRouteOptions::default(),
        ),
        (
            "no-windows",
            LocalRouteOptions { window: WindowMode::FullOnly, ..LocalRouteOptions::default() },
        ),
        (
            "assign-minsum",
            LocalRouteOptions {
                assignment: AssignmentStrategy::MinSum,
                ..LocalRouteOptions::default()
            },
        ),
        (
            "assign-inorder",
            LocalRouteOptions {
                assignment: AssignmentStrategy::InOrder,
                ..LocalRouteOptions::default()
            },
        ),
        (
            "no-compaction",
            LocalRouteOptions { compact: false, ..LocalRouteOptions::default() },
        ),
        (
            "no-transpose",
            LocalRouteOptions { try_transpose: false, ..LocalRouteOptions::default() },
        ),
        ("paper-exact (alg.2 only)", LocalRouteOptions::paper()),
    ];
    let classes = [WorkloadClass::Random, WorkloadClass::Block { b: 4 }];
    let mut rows = Vec::new();
    for class in classes {
        for (label, opts) in &variants {
            let mut depth_sum = 0usize;
            let mut elapsed = 0.0;
            for seed in 0..seeds {
                let pi = class.generate(grid, seed);
                let t0 = Instant::now();
                let s = main_procedure(grid, &pi, opts);
                elapsed += t0.elapsed().as_secs_f64() * 1e3;
                assert!(s.realizes(&pi));
                depth_sum += s.depth();
            }
            rows.push(AblationRow {
                n: side,
                class: class.label(),
                variant: label.to_string(),
                mean_depth: depth_sum as f64 / seeds as f64,
                mean_time_ms: elapsed / seeds as f64,
            });
        }
        // The naive baselines, for scale: the deterministic decomposition
        // (which happens to be "lucky arbitrary") and the seeded-random
        // one (the Figure-3 scenario the paper warns about).
        for (label, randomize) in [("naive-baseline", None), ("naive-random", Some(1u64))] {
            let mut depth_sum = 0usize;
            let mut elapsed = 0.0;
            for seed in 0..seeds {
                let pi = class.generate(grid, seed);
                let t0 = Instant::now();
                let s = naive_grid_route(
                    grid,
                    &pi,
                    &NaiveOptions {
                        compact: true,
                        try_transpose: true,
                        randomize: randomize.map(|r| r ^ seed),
                        ..Default::default()
                    },
                );
                elapsed += t0.elapsed().as_secs_f64() * 1e3;
                depth_sum += s.depth();
            }
            rows.push(AblationRow {
                n: side,
                class: class.label(),
                variant: label.into(),
                mean_depth: depth_sum as f64 / seeds as f64,
                mean_time_ms: elapsed / seeds as f64,
            });
        }
    }
    rows
}

/// One row of the optimality-gap experiment: a router vs the exact
/// optimum on tiny grids.
#[derive(Debug, Clone, Serialize)]
pub struct OptGapRow {
    /// Grid description.
    pub grid: String,
    /// Router label.
    pub router: String,
    /// Mean exact optimal depth across instances.
    pub mean_opt: f64,
    /// Mean router depth across instances.
    pub mean_router: f64,
    /// Worst per-instance ratio `router / max(opt, 1)`.
    pub max_ratio: f64,
    /// Number of instances.
    pub instances: usize,
}

/// Compare every router against the exact BFS optimum on tiny grids
/// (≤ 8 vertices keep the search fast even across many seeds).
pub fn optimality_gap(seeds: u64) -> Vec<OptGapRow> {
    use qroute_core::exact::optimal_depth;
    let shapes = [Grid::new(1, 5), Grid::new(2, 3), Grid::new(2, 4)];
    let routers = [
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::Ats,
        RouterKind::Snake,
    ];
    let mut rows = Vec::new();
    for grid in shapes {
        let graph = grid.to_graph();
        // Precompute instances and optima once per grid.
        let instances: Vec<_> = (0..seeds)
            .map(|s| {
                let pi = crate::workloads::WorkloadClass::Random.generate(grid, s);
                let opt = optimal_depth(&graph, &pi, 32).expect("tiny instances route");
                (pi, opt)
            })
            .collect();
        for router in &routers {
            let mut opt_sum = 0usize;
            let mut router_sum = 0usize;
            let mut max_ratio = 0.0f64;
            for (pi, opt) in &instances {
                let d = router.route(grid, pi).depth();
                assert!(d >= *opt, "{} beat the exact optimum", router.label());
                opt_sum += opt;
                router_sum += d;
                max_ratio = max_ratio.max(d as f64 / (*opt).max(1) as f64);
            }
            rows.push(OptGapRow {
                grid: format!("{}x{}", grid.rows(), grid.cols()),
                router: router.label().to_string(),
                mean_opt: opt_sum as f64 / instances.len() as f64,
                mean_router: router_sum as f64 / instances.len() as f64,
                max_ratio,
                instances: instances.len(),
            });
        }
    }
    rows
}

/// End-to-end transpilation comparison (extension experiment).
#[derive(Debug, Clone, Serialize)]
pub struct TranspileRow {
    /// Workload name.
    pub workload: String,
    /// Grid description.
    pub grid: String,
    /// Router label.
    pub router: String,
    /// SWAPs inserted.
    pub swaps: usize,
    /// Output circuit depth (all gates unit cost).
    pub depth: usize,
    /// Routing rounds.
    pub rounds: usize,
    /// Wall-clock transpile time (ms).
    pub time_ms: f64,
}

/// Transpile a set of named workloads with each router.
pub fn transpile_comparison() -> Vec<TranspileRow> {
    let cases: Vec<(String, Grid, Circuit)> = vec![
        ("qft-16".into(), Grid::new(4, 4), builders::qft(16)),
        (
            "trotter-diag-4x4".into(),
            Grid::new(4, 4),
            builders::trotter_diagonal_step(4, 4, 0.1, 2),
        ),
        (
            "random-25g-4x4".into(),
            Grid::new(4, 4),
            builders::random_two_qubit_circuit(16, 25, 7),
        ),
        (
            "ghz-row-major-5x5".into(),
            Grid::new(5, 5),
            builders::ghz(25),
        ),
    ];
    let routers = [
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::hybrid(),
        RouterKind::Ats,
    ];
    let mut rows = Vec::new();
    for (name, grid, circuit) in &cases {
        for router in &routers {
            let t = Transpiler::new(
                *grid,
                TranspileOptions {
                    router: router.clone(),
                    initial_layout: InitialLayout::Identity,
                },
            );
            let t0 = Instant::now();
            let res = t.run(circuit);
            let time_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(res.physical.is_feasible(|a, b| grid.dist(a, b) == 1));
            rows.push(TranspileRow {
                workload: name.clone(),
                grid: format!("{}x{}", grid.rows(), grid.cols()),
                router: router.label().to_string(),
                swaps: res.swap_count,
                depth: res.physical.depth(),
                rounds: res.routing_invocations,
                time_ms,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_cell_aggregates() {
        let c = measure_cell(6, WorkloadClass::Random, &RouterKind::locality_aware(), 3);
        assert_eq!(c.qubits, 36);
        assert_eq!(c.seeds, 3);
        assert!(c.mean_depth >= c.mean_lower_bound);
        assert!(c.mean_time_ms >= 0.0);
    }

    #[test]
    fn figure4_has_full_grid_of_cells() {
        let cells = figure4(&[4, 6], 2);
        assert_eq!(cells.len(), 2 * 3 * 2); // sides x classes x routers
    }

    #[test]
    fn hybrid_clamp_holds_on_small_sweep() {
        for row in hybrid_check(&[6], 3) {
            assert!(row.clamp_held, "{row:?}");
            assert!(row.hybrid <= row.naive + 1e-9);
            assert!(row.hybrid <= row.local + 1e-9);
        }
    }

    #[test]
    fn ablations_cover_all_variants() {
        let rows = ablations(6, 2);
        let variants: std::collections::BTreeSet<_> =
            rows.iter().map(|r| r.variant.clone()).collect();
        assert_eq!(variants.len(), 9);
    }

    #[test]
    fn optimality_gap_rows_are_sane() {
        let rows = optimality_gap(2);
        assert_eq!(rows.len(), 3 * 4);
        for r in &rows {
            assert!(r.mean_router >= r.mean_opt);
            assert!(r.max_ratio >= 1.0);
        }
    }

    #[test]
    fn transpile_rows_are_consistent() {
        let rows = transpile_comparison();
        assert_eq!(rows.len(), 4 * 4);
        for r in &rows {
            assert!(r.depth > 0);
        }
        // The trivially feasible GHZ row-major case: snake layout isn't
        // identity, so swaps may occur — but QFT must always need swaps.
        assert!(rows
            .iter()
            .filter(|r| r.workload == "qft-16")
            .all(|r| r.swaps > 0));
    }
}
