//! Differential verification of benchmarked transpiles.
//!
//! Every circuit cell the benchmark matrix measures goes through
//! [`verify_transpile`] before its numbers are recorded — a benchmark
//! that reports how fast wrong answers are produced is worse than no
//! benchmark. The harness is `qroute_sim`-backed and layered so the
//! expensive tier only runs where it is tractable:
//!
//! 1. **Grid feasibility** — every 2-qubit gate of the physical circuit
//!    acts on grid-adjacent wires (the coupling-DAG check of §II).
//! 2. **Metric recount** — `swap_count` is recounted from the emitted
//!    physical circuit (`SWAP`s in physical minus `SWAP`s in logical),
//!    and `routing_depth_added` / `routing_invocations` are recounted
//!    from the per-round record ([`qroute_transpiler::RoundStats`]).
//! 3. **Structural unembedding** — [`qroute_sim::equiv::unembed_physical`]
//!    replays every `SWAP` as a wire relabeling: catches computation on
//!    dummy wires and final layouts that disagree with where the swaps
//!    actually put the logical qubits. Runs at *any* size (`O(gates)`).
//! 4. **Statevector equivalence** — for logical registers within
//!    [`qroute_sim::equiv::EQUIV_QUBIT_CUTOFF`] qubits, the transpile is
//!    checked unitarily equivalent to the logical circuit modulo the
//!    reported layouts ([`transpiled_equivalent_embedded`]): `O(2^n_logical)`
//!    regardless of grid size, so the 10-qubit QASM-replay class is fully
//!    verified even on 64-qubit grids.
//!
//! [`assert_routers_agree`] adds the cross-router differential check:
//! all routers' physical circuits for one input must be pairwise
//! equivalent modulo their own layouts.

use qroute_circuit::{Circuit, Gate};
use qroute_core::{GridRouter, RouterKind};
use qroute_sim::equiv::{
    transpiled_equivalent_embedded, transpiled_pair_equivalent, unembed_physical,
    EQUIV_QUBIT_CUTOFF,
};
use qroute_topology::Grid;
use qroute_transpiler::{InitialLayout, TranspileOptions, TranspileResult, Transpiler};

/// What [`verify_transpile`] established about one transpile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifySummary {
    /// Whether the statevector tier ran (logical register within
    /// [`EQUIV_QUBIT_CUTOFF`]); the structural tiers always run.
    pub statevector_checked: bool,
}

/// Verify one transpile end to end. Returns which tiers ran, or a
/// description of the first failed check.
pub fn verify_transpile(
    grid: Grid,
    logical: &Circuit,
    res: &TranspileResult,
) -> Result<VerifySummary, String> {
    // Tier 1: grid feasibility.
    if !res.physical.is_feasible(|a, b| grid.dist(a, b) == 1) {
        return Err("physical circuit uses a non-adjacent 2-qubit gate".into());
    }
    // Tier 2: metric recounts against the emitted circuit and the
    // per-round record.
    if res.physical.size() != logical.size() + res.swap_count {
        return Err(format!(
            "gate count mismatch: physical {} != logical {} + {} swaps",
            res.physical.size(),
            logical.size(),
            res.swap_count
        ));
    }
    let recounted = res
        .physical
        .swap_gate_count()
        .checked_sub(logical.swap_gate_count())
        .ok_or("physical circuit has fewer SWAPs than the logical one")?;
    if recounted != res.swap_count {
        return Err(format!(
            "swap_count {} != {recounted} recounted from the physical circuit",
            res.swap_count
        ));
    }
    if res.rounds.len() != res.routing_invocations {
        return Err(format!(
            "routing_invocations {} != {} recorded rounds",
            res.routing_invocations,
            res.rounds.len()
        ));
    }
    let round_depth: usize = res.rounds.iter().map(|r| r.depth).sum();
    if round_depth != res.routing_depth_added {
        return Err(format!(
            "routing_depth_added {} != {round_depth} recounted from rounds",
            res.routing_depth_added
        ));
    }
    let round_swaps: usize = res.rounds.iter().map(|r| r.swaps).sum();
    if round_swaps != res.swap_count {
        return Err(format!(
            "swap_count {} != {round_swaps} recounted from rounds",
            res.swap_count
        ));
    }
    // Tier 3: structural unembedding (any size). The tracker treats
    // every physical SWAP as a relabeling, while `final_layout` tracks
    // only *routing* swaps — the transpiler executes the logical
    // circuit's own SWAPs as gates without touching the layout. Replay
    // those logical SWAPs over the slot indices to get the exact
    // expected relation: slot `l` must sit on the wire the final layout
    // reports for the slot whose state `l`'s wire ended up holding.
    let n = logical.num_qubits();
    let (_, pos) = unembed_physical(&res.physical, n, &res.initial_layout)
        .map_err(|e| format!("unembedding failed: {e}"))?;
    let mut at: Vec<usize> = (0..n).collect(); // at[w] = slot on logical wire w
    for g in logical.gates() {
        if let Gate::Swap(a, b) = *g {
            at.swap(a, b);
        }
    }
    for (wire, &slot) in at.iter().enumerate() {
        if pos[slot] != res.final_layout[wire] {
            return Err(format!(
                "final layout {:?} disagrees with tracked positions {pos:?} \
                 (modulo the logical circuit's own SWAPs)",
                &res.final_layout[..n]
            ));
        }
    }
    // Tier 4: statevector equivalence within the cutoff.
    if n <= EQUIV_QUBIT_CUTOFF {
        if !transpiled_equivalent_embedded(
            logical,
            &res.physical,
            &res.initial_layout,
            &res.final_layout,
        ) {
            return Err("statevector equivalence check failed".into());
        }
        Ok(VerifySummary { statevector_checked: true })
    } else {
        Ok(VerifySummary { statevector_checked: false })
    }
}

/// Transpile `logical` with every router in `routers` under the same
/// initial layout, verify each output, and assert all outputs pairwise
/// equivalent modulo their own layouts. Returns the per-router results.
///
/// Pairwise equivalence runs statevector probes only within the cutoff;
/// above it the per-router [`verify_transpile`] structural tiers still
/// apply.
pub fn assert_routers_agree(
    grid: Grid,
    logical: &Circuit,
    routers: &[RouterKind],
    layout: &InitialLayout,
) -> Result<Vec<TranspileResult>, String> {
    let mut results: Vec<(String, TranspileResult)> = Vec::new();
    for router in routers {
        let t = Transpiler::new(
            grid,
            TranspileOptions { router: router.clone(), initial_layout: layout.clone() },
        );
        let res = t.run(logical);
        verify_transpile(grid, logical, &res).map_err(|e| format!("{}: {e}", router.name()))?;
        results.push((router.name().to_string(), res));
    }
    let n = logical.num_qubits();
    if n <= EQUIV_QUBIT_CUTOFF {
        for pair in results.windows(2) {
            let (na, a) = &pair[0];
            let (nb, b) = &pair[1];
            if !transpiled_pair_equivalent(
                n,
                (&a.physical, &a.initial_layout, &a.final_layout),
                (&b.physical, &b.initial_layout, &b.final_layout),
            ) {
                return Err(format!("{na} and {nb} produced inequivalent circuits"));
            }
        }
    }
    Ok(results.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::CircuitClass;
    use qroute_circuit::builders;

    #[test]
    fn honest_transpiles_verify_clean() {
        let grid = Grid::new(3, 3);
        let c = builders::qaoa_random_graph(9, 1, 7);
        let t = Transpiler::new(grid, TranspileOptions::default());
        let res = t.run(&c);
        let summary = verify_transpile(grid, &c, &res).expect("verifies");
        assert!(summary.statevector_checked);
    }

    #[test]
    fn tampered_metrics_are_caught() {
        let grid = Grid::new(3, 3);
        let c = builders::random_two_qubit_circuit(9, 15, 1);
        let t = Transpiler::new(grid, TranspileOptions::default());
        let base = t.run(&c);
        assert!(base.swap_count > 0, "want a routed instance");

        let mut lied_swaps = base.clone();
        lied_swaps.swap_count += 1;
        assert!(verify_transpile(grid, &c, &lied_swaps).is_err());

        let mut lied_depth = base.clone();
        lied_depth.routing_depth_added += 1;
        assert!(verify_transpile(grid, &c, &lied_depth).is_err());

        let mut lied_layout = base.clone();
        lied_layout.final_layout.swap(0, 1);
        assert!(verify_transpile(grid, &c, &lied_layout).is_err());

        let mut dropped_gate = base.clone();
        let mut gates = dropped_gate.physical.gates().to_vec();
        let last_non_swap = gates
            .iter()
            .rposition(|g| !matches!(g, Gate::Swap(_, _)))
            .unwrap();
        gates.remove(last_non_swap);
        let mut physical = Circuit::new(grid.len());
        for g in gates {
            physical.push(g);
        }
        dropped_gate.physical = physical;
        assert!(verify_transpile(grid, &c, &dropped_gate).is_err());
    }

    #[test]
    fn corrupted_final_layout_is_caught_even_above_the_cutoff() {
        // The QFT class carries logical SWAP gates and, at full
        // occupancy, sits far above the statevector cutoff — the
        // structural tier alone must still pin the final layout.
        let grid = Grid::new(4, 4);
        let (c, layout) = CircuitClass::Qft.generate(grid, 1);
        let t = Transpiler::new(
            grid,
            TranspileOptions { router: RouterKind::locality_aware(), initial_layout: layout },
        );
        let mut res = t.run(&c);
        verify_transpile(grid, &c, &res).expect("honest transpile verifies");
        res.final_layout.swap(0, 1);
        assert!(
            verify_transpile(grid, &c, &res).is_err(),
            "corrupted final layout must fail structural verification"
        );
    }

    #[test]
    fn statevector_tier_skips_above_cutoff_but_structure_still_runs() {
        let grid = Grid::new(4, 4);
        let (c, layout) = CircuitClass::SparseRandom.generate(grid, 0);
        let t = Transpiler::new(
            grid,
            TranspileOptions { router: RouterKind::locality_aware(), initial_layout: layout },
        );
        let res = t.run(&c);
        let summary = verify_transpile(grid, &c, &res).expect("structural tiers pass");
        assert!(!summary.statevector_checked, "16 qubits is past the cutoff");
    }

    #[test]
    fn routers_agree_on_a_replayed_fixture() {
        let grid = Grid::new(4, 4);
        let (c, layout) = CircuitClass::QasmReplay.generate(grid, 5);
        let routers = [
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::Ats,
        ];
        let results = assert_routers_agree(grid, &c, &routers, &layout).expect("all agree");
        assert_eq!(results.len(), 3);
    }
}
