//! The permutation classes evaluated in §V.

use qroute_perm::{generators, Permutation};
use qroute_topology::Grid;

/// A named permutation workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Uniform random permutation of all vertices (the "global" mapping
    /// scheme; green-vs-brown regime of Fig. 4).
    Random,
    /// Cycles confined to disjoint `b × b` blocks (blue-vs-red regime).
    Block {
        /// Block side length.
        b: usize,
    },
    /// Random permutations composed across overlapping `b × b` windows
    /// with stride `s < b` (the regime where ATS wins).
    Overlap {
        /// Window side length.
        b: usize,
        /// Stride between windows.
        s: usize,
    },
    /// Long, skinny cycles in orthogonal directions (the adversarial case
    /// §V singles out for the locality-aware router).
    Skinny,
}

impl WorkloadClass {
    /// Stable label for tables.
    pub fn label(&self) -> String {
        match self {
            WorkloadClass::Random => "random".into(),
            WorkloadClass::Block { b } => format!("block{b}"),
            WorkloadClass::Overlap { b, s } => format!("overlap{b}s{s}"),
            WorkloadClass::Skinny => "skinny".into(),
        }
    }

    /// Generate the seeded instance on a grid.
    pub fn generate(&self, grid: Grid, seed: u64) -> Permutation {
        match *self {
            WorkloadClass::Random => generators::random(grid.len(), seed),
            WorkloadClass::Block { b } => generators::block_local(grid, b, b, seed),
            WorkloadClass::Overlap { b, s } => {
                generators::overlapping_blocks(grid, b, b, s, s, seed)
            }
            WorkloadClass::Skinny => generators::skinny_cycles(grid, seed),
        }
    }

    /// The classes shown in Figure 4 / Figure 5.
    pub fn paper_classes() -> Vec<WorkloadClass> {
        vec![
            WorkloadClass::Random,
            WorkloadClass::Block { b: 4 },
            WorkloadClass::Overlap { b: 8, s: 4 },
        ]
    }

    /// Every workload class, with the default parameterizations: the
    /// paper classes plus the skinny-cycle adversarial case. This is the
    /// class axis of the benchmark matrix (`repro bench`).
    pub fn all_classes() -> Vec<WorkloadClass> {
        let mut classes = WorkloadClass::paper_classes();
        classes.push(WorkloadClass::Skinny);
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<String> = WorkloadClass::paper_classes()
            .iter()
            .map(|c| c.label())
            .collect();
        labels.push(WorkloadClass::Skinny.label());
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn generation_is_seeded() {
        let grid = Grid::new(8, 8);
        for class in WorkloadClass::paper_classes() {
            assert_eq!(class.generate(grid, 3), class.generate(grid, 3));
            assert_ne!(
                class.generate(grid, 3),
                class.generate(grid, 4),
                "{class:?}"
            );
        }
    }

    #[test]
    fn all_classes_generate_valid_permutations() {
        let grid = Grid::new(9, 9);
        for class in [
            WorkloadClass::Random,
            WorkloadClass::Block { b: 3 },
            WorkloadClass::Overlap { b: 4, s: 2 },
            WorkloadClass::Skinny,
        ] {
            let p = class.generate(grid, 0);
            assert_eq!(p.len(), 81);
        }
    }
}
