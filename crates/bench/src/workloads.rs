//! The permutation classes evaluated in §V.

use qroute_perm::{generators, Permutation};
use qroute_topology::Grid;

/// A named permutation workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Uniform random permutation of all vertices (the "global" mapping
    /// scheme; green-vs-brown regime of Fig. 4).
    Random,
    /// Cycles confined to disjoint `b × b` blocks (blue-vs-red regime).
    Block {
        /// Block side length.
        b: usize,
    },
    /// Random permutations composed across overlapping `b × b` windows
    /// with stride `s < b` (the regime where ATS wins).
    Overlap {
        /// Window side length.
        b: usize,
        /// Stride between windows.
        s: usize,
    },
    /// Long, skinny cycles in orthogonal directions (the adversarial case
    /// §V singles out for the locality-aware router).
    Skinny,
    /// A sparse partial permutation: `n/16` disjoint 2-cycles between
    /// vertices at most a quarter side apart, everything else a fixed
    /// point. Per-token search (pathfinder) pays per moved token here,
    /// while the matching-based routers sweep the whole grid.
    SparsePairs,
}

impl WorkloadClass {
    /// Stable label for tables.
    pub fn label(&self) -> String {
        match self {
            WorkloadClass::Random => "random".into(),
            WorkloadClass::Block { b } => format!("block{b}"),
            WorkloadClass::Overlap { b, s } => format!("overlap{b}s{s}"),
            WorkloadClass::Skinny => "skinny".into(),
            // NOTE: not "sparse" — that label belongs to the
            // `CircuitClass::SparseRandom` circuit class.
            WorkloadClass::SparsePairs => "sparse-pairs".into(),
        }
    }

    /// Generate the seeded instance on a grid.
    pub fn generate(&self, grid: Grid, seed: u64) -> Permutation {
        match *self {
            WorkloadClass::Random => generators::random(grid.len(), seed),
            WorkloadClass::Block { b } => generators::block_local(grid, b, b, seed),
            WorkloadClass::Overlap { b, s } => {
                generators::overlapping_blocks(grid, b, b, s, s, seed)
            }
            WorkloadClass::Skinny => generators::skinny_cycles(grid, seed),
            WorkloadClass::SparsePairs => generators::sparse_pairs(
                grid,
                (grid.len() / 16).max(1),
                (grid.rows().max(grid.cols()) / 4).max(2),
                seed,
            ),
        }
    }

    /// The classes shown in Figure 4 / Figure 5.
    pub fn paper_classes() -> Vec<WorkloadClass> {
        vec![
            WorkloadClass::Random,
            WorkloadClass::Block { b: 4 },
            WorkloadClass::Overlap { b: 8, s: 4 },
        ]
    }

    /// Every *full-permutation* workload class, with the default
    /// parameterizations: the paper classes plus the skinny-cycle
    /// adversarial case. This is the class pool of the service/daemon
    /// benchmark cells; the permutation matrix additionally benches
    /// [`WorkloadClass::bench_classes`].
    pub fn all_classes() -> Vec<WorkloadClass> {
        let mut classes = WorkloadClass::paper_classes();
        classes.push(WorkloadClass::Skinny);
        classes
    }

    /// The class axis of the permutation benchmark matrix
    /// (`repro bench`): [`WorkloadClass::all_classes`] plus the sparse
    /// partial-permutation class the pathfinder router targets. Kept
    /// separate from `all_classes` so the service throughput cells —
    /// which replay the `all_classes` pool — keep byte-identical
    /// baselines.
    pub fn bench_classes() -> Vec<WorkloadClass> {
        let mut classes = WorkloadClass::all_classes();
        classes.push(WorkloadClass::SparsePairs);
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<String> = WorkloadClass::bench_classes()
            .iter()
            .map(|c| c.label())
            .collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn bench_classes_extend_all_classes_with_sparse_pairs() {
        let all = WorkloadClass::all_classes();
        let bench = WorkloadClass::bench_classes();
        assert_eq!(&bench[..all.len()], &all[..]);
        assert_eq!(bench.len(), all.len() + 1);
        assert_eq!(bench.last().unwrap().label(), "sparse-pairs");
        // The service cells replay `all_classes`; the sparse class must
        // not leak into that pool or their baselines change.
        assert!(all.iter().all(|c| *c != WorkloadClass::SparsePairs));
    }

    #[test]
    fn sparse_pairs_instances_are_sparse_and_local() {
        let grid = Grid::new(16, 16);
        let p = WorkloadClass::SparsePairs.generate(grid, 0);
        assert_eq!(p.support_size(), 2 * (256 / 16));
        for v in 0..p.len() {
            assert!(grid.dist(v, p.apply(v)) <= 4);
        }
    }

    #[test]
    fn generation_is_seeded() {
        let grid = Grid::new(8, 8);
        for class in WorkloadClass::paper_classes() {
            assert_eq!(class.generate(grid, 3), class.generate(grid, 3));
            assert_ne!(
                class.generate(grid, 3),
                class.generate(grid, 4),
                "{class:?}"
            );
        }
    }

    #[test]
    fn all_classes_generate_valid_permutations() {
        let grid = Grid::new(9, 9);
        for class in [
            WorkloadClass::Random,
            WorkloadClass::Block { b: 3 },
            WorkloadClass::Overlap { b: 4, s: 2 },
            WorkloadClass::Skinny,
        ] {
            let p = class.generate(grid, 0);
            assert_eq!(p.len(), 81);
        }
    }
}
