//! The circuit-level workload classes of the benchmark matrix.
//!
//! The permutation classes ([`crate::workloads`]) measure routers on
//! isolated permutations; these classes measure them *inside the
//! transpilation loop* — the deployment context §V's headline claim is
//! about. Each class yields a seeded logical circuit plus the initial
//! layout the transpiler should start from:
//!
//! * [`CircuitClass::Qft`] — the all-to-all QFT on every grid qubit, the
//!   canonical worst case; the circuit is fixed, so the seed varies the
//!   *placement* (random initial layout) instead;
//! * [`CircuitClass::Brickwork`] — hardware-efficient alternating layers
//!   on the logical chain; mostly grid-local under the identity layout;
//! * [`CircuitClass::Qaoa`] — QAOA phase separators over a seeded random
//!   graph; globally entangling;
//! * [`CircuitClass::SparseRandom`] — sparse random 2-qubit circuits
//!   (`2·n` gates on `n` qubits);
//! * [`CircuitClass::QasmReplay`] — a checked-in 10-qubit OpenQASM
//!   fixture replayed through [`qroute_circuit::parser`]; because its
//!   logical register stays within the statevector cutoff, every
//!   benchmarked transpile of this class is equivalence-checked against
//!   the logical circuit, even on grids far beyond statevector reach.

use qroute_circuit::{builders, parser, Circuit};
use qroute_topology::Grid;
use qroute_transpiler::InitialLayout;

/// The OpenQASM fixture replayed by [`CircuitClass::QasmReplay`]
/// (10 qubits, mixed gate set, long-range interactions).
pub const REPLAY_FIXTURE: &str = include_str!("../fixtures/replay10.qasm");

/// A named circuit workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitClass {
    /// QFT on all grid qubits, seeded random initial placement.
    Qft,
    /// Brickwork ansatz on the logical chain.
    Brickwork {
        /// Number of alternating brick layers.
        layers: usize,
    },
    /// QAOA over a seeded random graph.
    Qaoa {
        /// Number of phase-separator + mixer rounds.
        rounds: usize,
    },
    /// Sparse random 2-qubit circuit (`2·n` gates).
    SparseRandom,
    /// Replay of the checked-in [`REPLAY_FIXTURE`], seeded random
    /// placement.
    QasmReplay,
}

impl CircuitClass {
    /// Stable label for tables and `BENCH.json` cells.
    pub fn label(&self) -> String {
        match self {
            CircuitClass::Qft => "qft".into(),
            CircuitClass::Brickwork { layers } => format!("brickwork{layers}"),
            CircuitClass::Qaoa { rounds } => format!("qaoa{rounds}"),
            CircuitClass::SparseRandom => "sparse".into(),
            CircuitClass::QasmReplay => "qasm-replay10".into(),
        }
    }

    /// Generate the seeded instance for a grid: the logical circuit and
    /// the initial layout to transpile it under. Fixed circuits (QFT,
    /// QASM replay) take the seed in the *layout*; generated circuits
    /// take it in the circuit and start from the identity layout.
    ///
    /// # Panics
    /// Panics when the class needs more qubits than the grid offers
    /// (the QASM fixture needs 10).
    pub fn generate(&self, grid: Grid, seed: u64) -> (Circuit, InitialLayout) {
        let n = grid.len();
        match *self {
            CircuitClass::Qft => (builders::qft(n), InitialLayout::Random(seed)),
            CircuitClass::Brickwork { layers } => (
                builders::brickwork(n, layers, seed),
                InitialLayout::Identity,
            ),
            CircuitClass::Qaoa { rounds } => (
                builders::qaoa_random_graph(n, rounds, seed),
                InitialLayout::Identity,
            ),
            CircuitClass::SparseRandom => (
                builders::random_two_qubit_circuit(n, 2 * n, seed),
                InitialLayout::Identity,
            ),
            CircuitClass::QasmReplay => {
                let c = parser::parse_qasm(REPLAY_FIXTURE).expect("fixture parses");
                assert!(
                    c.num_qubits() <= n,
                    "replay fixture needs {} qubits but the grid has {n}",
                    c.num_qubits()
                );
                (c, InitialLayout::Random(seed))
            }
        }
    }

    /// Every circuit class with its default parameterization — the class
    /// axis of the circuit benchmark matrix (`repro bench`).
    pub fn all_classes() -> Vec<CircuitClass> {
        vec![
            CircuitClass::Qft,
            CircuitClass::Brickwork { layers: 4 },
            CircuitClass::Qaoa { rounds: 2 },
            CircuitClass::SparseRandom,
            CircuitClass::QasmReplay,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_from_each_other_and_permutation_classes() {
        let mut labels: Vec<String> = CircuitClass::all_classes()
            .iter()
            .map(|c| c.label())
            .collect();
        for w in crate::workloads::WorkloadClass::all_classes() {
            labels.push(w.label());
        }
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn generation_is_seeded() {
        let grid = Grid::new(4, 4);
        for class in CircuitClass::all_classes() {
            let (a, _) = class.generate(grid, 3);
            let (b, _) = class.generate(grid, 3);
            assert_eq!(a, b, "{class:?}");
            assert!(a.two_qubit_count() > 0, "{class:?}");
        }
    }

    #[test]
    fn fixed_circuit_classes_vary_the_layout_instead() {
        let grid = Grid::new(4, 4);
        for class in [CircuitClass::Qft, CircuitClass::QasmReplay] {
            let (c3, l3) = class.generate(grid, 3);
            let (c4, l4) = class.generate(grid, 4);
            assert_eq!(c3, c4, "{class:?} circuit must not depend on the seed");
            let (b3, b4) = (l3.build(grid.len()), l4.build(grid.len()));
            assert_ne!(b3, b4, "{class:?} layout must depend on the seed");
        }
    }

    #[test]
    fn replay_fixture_parses_to_ten_qubits() {
        let (c, _) = CircuitClass::QasmReplay.generate(Grid::new(4, 4), 0);
        assert_eq!(c.num_qubits(), 10);
        assert!(c.size() > 30);
    }

    #[test]
    #[should_panic(expected = "replay fixture needs")]
    fn replay_rejects_too_small_grids() {
        let _ = CircuitClass::QasmReplay.generate(Grid::new(3, 3), 0);
    }
}
