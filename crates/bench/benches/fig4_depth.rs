//! Criterion bench backing Figure 4: routing one instance per
//! (router × class) on a fixed grid. The measured quantity is wall time,
//! but each iteration also sanity-checks the produced depth; use the
//! `repro` binary for the actual depth tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_bench::workloads::WorkloadClass;
use qroute_core::{GridRouter, RouterKind};
use qroute_topology::Grid;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_depth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let side = 16;
    let grid = Grid::new(side, side);
    for class in WorkloadClass::paper_classes() {
        let pi = class.generate(grid, 0);
        for router in [RouterKind::locality_aware(), RouterKind::Ats] {
            let id = BenchmarkId::new(router.name(), class.label());
            group.bench_with_input(id, &pi, |b, pi| {
                b.iter(|| {
                    let s = router.route(grid, black_box(pi));
                    black_box(s.depth())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
