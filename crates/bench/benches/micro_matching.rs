//! Microbenchmarks for the matching substrate: Hopcroft–Karp, regular
//! multigraph decomposition and the MCBBM bottleneck assignment — the
//! three components whose costs make up the locality-aware router's
//! `Õ(m²n√n)` bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_core::grid_route::build_column_multigraph;
use qroute_matching::{
    bottleneck_assignment, decompose_regular, decompose_regular_euler, hopcroft_karp,
};
use qroute_perm::generators;
use qroute_topology::Grid;
use std::hint::black_box;
use std::time::Duration;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_matching");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    for n in [64usize, 256] {
        // d-regular bipartite graph adjacency.
        let d = 4;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|l| (0..d).map(|k| ((l + k * 17 + k * k) % n) as u32).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &adj, |b, adj| {
            b.iter(|| black_box(hopcroft_karp(n, n, black_box(adj)).size()))
        });
    }

    for side in [8usize, 16, 32] {
        let grid = Grid::new(side, side);
        let pi = generators::random(grid.len(), 3);
        group.bench_with_input(BenchmarkId::new("decompose_regular", side), &pi, |b, pi| {
            b.iter(|| {
                let mut mg = build_column_multigraph(grid, black_box(pi));
                black_box(decompose_regular(&mut mg).unwrap().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("decompose_euler", side), &pi, |b, pi| {
            b.iter(|| {
                let mut mg = build_column_multigraph(grid, black_box(pi));
                black_box(decompose_regular_euler(&mut mg).unwrap().len())
            })
        });
    }

    for m in [16usize, 64] {
        let weights: Vec<Vec<u64>> = (0..m)
            .map(|i| (0..m).map(|j| ((i * 31 + j * 17) % 97) as u64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("mcbbm", m), &weights, |b, w| {
            b.iter(|| black_box(bottleneck_assignment(black_box(w)).bottleneck))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
