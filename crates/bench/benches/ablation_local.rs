//! Ablation bench: cost of each design choice inside the locality-aware
//! router (window search, assignment strategy, compaction, transpose).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_core::local_grid::{main_procedure, AssignmentStrategy, LocalRouteOptions, WindowMode};
use qroute_perm::generators;
use qroute_topology::Grid;
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_local");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let grid = Grid::new(16, 16);
    let pi = generators::random(grid.len(), 9);
    let variants: Vec<(&str, LocalRouteOptions)> = vec![
        ("default", LocalRouteOptions::default()),
        (
            "no-windows",
            LocalRouteOptions { window: WindowMode::FullOnly, ..LocalRouteOptions::default() },
        ),
        (
            "minsum",
            LocalRouteOptions {
                assignment: AssignmentStrategy::MinSum,
                ..LocalRouteOptions::default()
            },
        ),
        (
            "inorder",
            LocalRouteOptions {
                assignment: AssignmentStrategy::InOrder,
                ..LocalRouteOptions::default()
            },
        ),
        (
            "no-compact",
            LocalRouteOptions { compact: false, ..LocalRouteOptions::default() },
        ),
        (
            "no-transpose",
            LocalRouteOptions { try_transpose: false, ..LocalRouteOptions::default() },
        ),
        ("paper-exact", LocalRouteOptions::paper()),
    ];
    for (label, opts) in variants {
        group.bench_with_input(BenchmarkId::new("variant", label), &pi, |b, pi| {
            b.iter(|| black_box(main_procedure(grid, black_box(pi), &opts).depth()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
