//! Microbenchmarks for the ATS baseline: serial swap discovery and the
//! greedy parallelization pass, separated so the Fig. 5 gap can be
//! attributed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_core::token_swap::{approximate_token_swapping, tree_route};
use qroute_perm::generators;
use qroute_topology::Grid;
use std::hint::black_box;
use std::time::Duration;

fn bench_token_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_token_swap");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for side in [8usize, 16, 24] {
        let grid = Grid::new(side, side);
        let graph = grid.to_graph();
        let pi = generators::random(grid.len(), 5);

        group.bench_with_input(BenchmarkId::new("ats_serial", side), &pi, |b, pi| {
            b.iter(|| black_box(approximate_token_swapping(&graph, black_box(pi)).num_swaps()))
        });

        let outcome = approximate_token_swapping(&graph, &pi);
        group.bench_with_input(
            BenchmarkId::new("ats_parallelize", side),
            &outcome,
            |b, out| b.iter(|| black_box(out.parallelized(grid.len()).depth())),
        );

        group.bench_with_input(BenchmarkId::new("tree_route", side), &pi, |b, pi| {
            b.iter(|| black_box(tree_route(&graph, black_box(pi)).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_token_swap);
criterion_main!(benches);
