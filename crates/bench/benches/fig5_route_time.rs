//! Criterion bench backing Figure 5: routing-time scaling across grid
//! sizes for the locality-aware router vs ATS on random permutations.
//! The paper's claim: the locality-aware router is about an order of
//! magnitude faster on larger grids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qroute_bench::workloads::WorkloadClass;
use qroute_core::{GridRouter, RouterKind};
use qroute_perm::generators;
use qroute_topology::Grid;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_route_time");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for side in [8usize, 16, 24, 32] {
        let grid = Grid::new(side, side);
        let pi = generators::random(grid.len(), 0);
        group.throughput(Throughput::Elements(grid.len() as u64));
        for router in [RouterKind::locality_aware(), RouterKind::Ats] {
            let id = BenchmarkId::new(router.name(), side);
            group.bench_with_input(id, &pi, |b, pi| {
                b.iter(|| black_box(router.route(grid, black_box(pi)).depth()))
            });
        }
    }
    // The block-local class, where locality pays off most.
    for side in [16usize, 32] {
        let grid = Grid::new(side, side);
        let pi = WorkloadClass::Block { b: 4 }.generate(grid, 0);
        for router in [RouterKind::locality_aware(), RouterKind::Ats] {
            let id = BenchmarkId::new(format!("{}-block4", router.name()), side);
            group.bench_with_input(id, &pi, |b, pi| {
                b.iter(|| black_box(router.route(grid, black_box(pi)).depth()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
