//! End-to-end transpilation bench: full mapping+routing pipeline on the
//! motivating workloads, per router.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_circuit::builders;
use qroute_core::RouterKind;
use qroute_topology::Grid;
use qroute_transpiler::{InitialLayout, TranspileOptions, Transpiler};
use std::hint::black_box;
use std::time::Duration;

fn bench_transpile(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_e2e");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let cases = vec![
        ("qft16-4x4", Grid::new(4, 4), builders::qft(16)),
        (
            "trotter-diag-4x4",
            Grid::new(4, 4),
            builders::trotter_diagonal_step(4, 4, 0.1, 2),
        ),
        (
            "random50-5x5",
            Grid::new(5, 5),
            builders::random_two_qubit_circuit(25, 50, 3),
        ),
    ];
    for (name, grid, circuit) in &cases {
        for router in [
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::Ats,
        ] {
            use qroute_core::GridRouter as _;
            let t = Transpiler::new(
                *grid,
                TranspileOptions {
                    router: router.clone(),
                    initial_layout: InitialLayout::Identity,
                },
            );
            let id = BenchmarkId::new(*name, router.name());
            group.bench_with_input(id, circuit, |b, circuit| {
                b.iter(|| black_box(t.run(black_box(circuit)).swap_count))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transpile);
criterion_main!(benches);
