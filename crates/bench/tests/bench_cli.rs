//! End-to-end tests of the `repro` binary: the `bench` subcommand's
//! determinism and baseline gate, and the strict argument parsing.
//!
//! Each invocation uses `--sides 4 --seeds 1` to keep the matrix tiny —
//! these tests run the debug binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn repro")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qroute_bench_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const TINY: &[&str] = &["bench", "--sides", "4", "--seeds", "1", "--no-time"];

#[test]
fn bench_runs_are_byte_identical() {
    let dir = tmp_dir("determinism");
    let a = repro(&[TINY, &["--out", "a"]].concat(), &dir);
    let b = repro(&[TINY, &["--out", "b"]].concat(), &dir);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert!(b.status.success(), "{}", String::from_utf8_lossy(&b.stderr));
    let ja = std::fs::read(dir.join("a/BENCH.json")).expect("first BENCH.json");
    let jb = std::fs::read(dir.join("b/BENCH.json")).expect("second BENCH.json");
    assert!(!ja.is_empty());
    assert_eq!(
        ja, jb,
        "same --seeds must produce byte-identical BENCH.json"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_check_gates_an_injected_depth_regression() {
    let dir = tmp_dir("gate");
    // Produce a matching baseline, then check against it: exit 0.
    let out = repro(&[TINY, &["--out", "base"]].concat(), &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = dir.join("base/BENCH.json");
    let ok = repro(
        &[
            TINY,
            &["--out", "cur", "--baseline", "base/BENCH.json", "--check"],
        ]
        .concat(),
        &dir,
    );
    assert!(
        ok.status.success(),
        "self-check must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Inject a depth regression: claim the baseline was 2x shallower on
    // every cell, so the current (unchanged) run regresses past tolerance.
    let report = qroute_bench::bench::BenchReport::from_json(
        &std::fs::read_to_string(&baseline).expect("read baseline"),
    )
    .expect("parse baseline");
    let mut tampered = report.clone();
    for cell in &mut tampered.cells {
        cell.depth.mean /= 2.0;
    }
    std::fs::write(dir.join("tampered.json"), tampered.to_json()).expect("write tampered");
    let fail = repro(
        &[
            TINY,
            &["--out", "cur", "--baseline", "tampered.json", "--check"],
        ]
        .concat(),
        &dir,
    );
    assert_eq!(
        fail.status.code(),
        Some(1),
        "injected regression must exit 1: {}",
        String::from_utf8_lossy(&fail.stderr)
    );
    let stdout = String::from_utf8_lossy(&fail.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(
        stdout.contains("| depth |"),
        "delta table expected:\n{stdout}"
    );

    // Without --check the diff is reported but the exit stays 0.
    let soft = repro(
        &[TINY, &["--out", "cur", "--baseline", "tampered.json"]].concat(),
        &dir,
    );
    assert!(soft.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_check_rejects_missing_and_malformed_baselines() {
    let dir = tmp_dir("badbaseline");
    let missing = repro(
        &[TINY, &["--baseline", "nope.json", "--check"]].concat(),
        &dir,
    );
    assert_eq!(missing.status.code(), Some(2));
    std::fs::write(dir.join("garbage.json"), "{ not json").expect("write garbage");
    let garbage = repro(
        &[TINY, &["--baseline", "garbage.json", "--check"]].concat(),
        &dir,
    );
    assert_eq!(garbage.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn arg_parsing_rejects_misuse_with_exit_2() {
    let dir = tmp_dir("args");
    for bad in [
        vec!["fig4", "fig5"],              // second positional command
        vec!["fig4", "--bogus"],           // unknown flag
        vec!["--check"],                   // --check without --baseline
        vec!["fig4", "--quick"],           // bench-only flag on another command
        vec!["bench", "--seeds"],          // flag missing its value
        vec!["bench", "--out", "--check"], // flag token where a value belongs
        vec!["bench", "--sides", "4,x"],   // malformed side list
        vec!["definitely-not-a-command"],  // unknown command
        // batch-only flags on other commands
        vec!["fig4", "--input", "jobs.jsonl"],
        vec!["bench", "--workers", "2"],
        vec!["bench", "--output", "r.jsonl"],
        vec!["transpile", "--cache-capacity", "8"],
        vec!["fig5", "--time"],
        // bench/sweep flags on batch, and batch misuse
        vec!["batch", "--input", "j.jsonl", "--quick"],
        vec!["batch", "--input", "j.jsonl", "--sides", "4"],
        vec!["batch", "--input", "j.jsonl", "--seeds", "2"],
        vec!["batch", "--input", "j.jsonl", "--out", "results"],
        vec!["batch"], // --input is required
        vec!["batch", "--input", "j.jsonl", "--workers", "0"],
    ] {
        let out = repro(&bad, &dir);
        assert_eq!(out.status.code(), Some(2), "{bad:?} should exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("USAGE"),
            "{bad:?} should print usage:\n{stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_exits_zero() {
    let dir = tmp_dir("help");
    let out = repro(&["--help"], &dir);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
    let _ = std::fs::remove_dir_all(&dir);
}
