//! End-to-end tests of `repro serve`, `repro ctl`, and `repro batch
//! --connect`: a real daemon child process on an ephemeral port, two
//! concurrent wire clients producing bytes identical to the in-process
//! batch, control requests, graceful shutdown, and flag gating.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn repro(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn repro")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qroute_daemon_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn example_jobs() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/jobs.jsonl")
        .canonicalize()
        .expect("committed example jobs file exists")
        .display()
        .to_string()
}

/// Start `repro serve` on an ephemeral port and return the child plus
/// the address it reported on stderr.
fn spawn_daemon(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro serve");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    // Warnings (e.g. "chaos armed") may precede the listen banner.
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("read serve banner") > 0,
            "serve exited before printing its listen banner"
        );
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.trim().to_string();
        }
    };
    (child, addr, stderr)
}

fn shutdown_and_reap(
    mut child: Child,
    addr: &str,
    mut stderr: BufReader<std::process::ChildStderr>,
    dir: &Path,
) {
    let out = repro(&["ctl", "--connect", addr, "--shutdown"], dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "{\"ok\":\"shutdown\"}"
    );
    let status = child.wait().expect("serve child exits after --shutdown");
    assert!(status.success(), "serve must drain and exit 0: {status}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut rest).expect("drain serve stderr");
    assert!(
        rest.contains("daemon summary:"),
        "serve must print the drained summary:\n{rest}"
    );
}

#[test]
fn daemon_serves_concurrent_clients_with_batch_identical_bytes() {
    let dir = tmp_dir("roundtrip");
    let jobs = example_jobs();
    let (child, addr, stderr) = spawn_daemon(&[]);

    let local = repro(&["batch", "--input", &jobs, "--output", "local"], &dir);
    assert!(
        local.status.success(),
        "{}",
        String::from_utf8_lossy(&local.stderr)
    );

    // Two concurrent wire clients replaying the same stream.
    let clients: Vec<_> = ["a", "b"]
        .map(|name| {
            let jobs = jobs.clone();
            let addr = addr.clone();
            let dir = dir.clone();
            std::thread::spawn(move || {
                repro(
                    &[
                        "batch",
                        "--input",
                        &jobs,
                        "--connect",
                        &addr,
                        "--output",
                        name,
                    ],
                    &dir,
                )
            })
        })
        .into_iter()
        .collect();
    for (name, handle) in ["a", "b"].iter().zip(clients) {
        let out = handle.join().expect("client thread");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let summary = String::from_utf8_lossy(&out.stderr);
        assert!(
            summary.contains(&format!("daemon={addr}")),
            "summary names the daemon:\n{summary}"
        );
        let reference = std::fs::read(dir.join("local")).expect("local results");
        let via_daemon = std::fs::read(dir.join(name)).expect("daemon results");
        assert!(!via_daemon.is_empty());
        assert_eq!(
            via_daemon, reference,
            "client {name}: daemon bytes diverged from the local batch"
        );
    }

    // The shared cache saw both replays: stats reports nonzero hits.
    let stats = repro(&["ctl", "--connect", &addr, "--stats"], &dir);
    assert!(
        stats.status.success(),
        "{}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let stats_line = String::from_utf8_lossy(&stats.stdout);
    let doc: serde_json::Value =
        serde_json::from_str(stats_line.trim()).expect("stats response is JSON");
    let snapshot = doc.get("stats").expect("stats envelope");
    let hits = snapshot
        .get("cache_hits")
        .and_then(|v| v.as_u64())
        .expect("cache_hits field");
    assert!(
        hits > 0,
        "two replays must hit the shared cache:\n{stats_line}"
    );
    assert!(
        snapshot
            .get("jobs_routed")
            .and_then(|v| v.as_u64())
            .unwrap()
            > 0,
        "{stats_line}"
    );

    shutdown_and_reap(child, &addr, stderr, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_honors_engine_config_flags() {
    let dir = tmp_dir("config");
    let jobs = example_jobs();
    let (child, addr, stderr) = spawn_daemon(&[
        "--workers",
        "2",
        "--cache-capacity",
        "0",
        "--client-queue",
        "64",
    ]);
    let out = repro(&["batch", "--input", &jobs, "--connect", &addr], &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Capacity 0 disables the cache: everything misses.
    assert!(
        !String::from_utf8_lossy(&out.stdout).contains("\"cache\":\"hit\""),
        "cache-capacity 0 must disable hits"
    );
    shutdown_and_reap(child, &addr, stderr, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ctl_against_a_dead_daemon_exits_2() {
    let dir = tmp_dir("dead");
    // Port reserved then released: nothing is listening there.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let out = repro(&["ctl", "--connect", &addr, "--stats"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot connect"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ctl_against_a_just_shut_down_daemon_exits_2_with_one_line() {
    let dir = tmp_dir("just_shut_down");
    let (child, addr, stderr) = spawn_daemon(&[]);
    shutdown_and_reap(child, &addr, stderr, &dir);
    // The port was live moments ago; a straggling ctl must fail
    // cleanly — nonzero exit, one diagnostic line, no panic/backtrace.
    let out = repro(&["ctl", "--connect", &addr, "--stats"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "no stats from a dead daemon");
    let diag = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        diag.trim_end().lines().count(),
        1,
        "one line, not a dump:\n{diag}"
    );
    assert!(
        diag.contains("cannot connect") && diag.contains(&addr),
        "{diag}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_retries_recover_from_an_injected_connection_drop() {
    let dir = tmp_dir("retries");
    // All-distinct canonical keys: the per-connection mirror reset on
    // reconnect cannot change a hit/miss label, so the retried replay
    // must be byte-identical to the local batch.
    let jobs: String = (0..20)
        .map(|k| {
            format!("{{\"side\": 5, \"router\": \"ats\", \"class\": \"random\", \"seed\": {k}}}\n")
        })
        .collect();
    let jobs_path = dir.join("jobs.jsonl");
    std::fs::write(&jobs_path, &jobs).expect("write jobs");
    let jobs_arg = jobs_path.display().to_string();

    let local = repro(&["batch", "--input", &jobs_arg, "--output", "local"], &dir);
    assert!(
        local.status.success(),
        "{}",
        String::from_utf8_lossy(&local.stderr)
    );

    let (child, addr, stderr) = spawn_daemon(&[
        "--chaos-drop-after-bytes",
        "400",
        "--chaos-drop-conns",
        "1",
        "--chaos-torn-writes",
    ]);
    let out = repro(
        &[
            "batch",
            "--input",
            &jobs_arg,
            "--connect",
            &addr,
            "--output",
            "wire",
            "--retries",
            "5",
            "--retry-base-ms",
            "1",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(
        !summary.contains("resubmissions=0"),
        "the injected drop must have forced a resubmission:\n{summary}"
    );
    assert_eq!(
        std::fs::read(dir.join("wire")).expect("wire results"),
        std::fs::read(dir.join("local")).expect("local results"),
        "retried replay diverged from the local batch"
    );

    // The client reported its resubmissions to the daemon.
    let stats = repro(&["ctl", "--connect", &addr, "--stats"], &dir);
    assert!(
        stats.status.success(),
        "{}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let doc: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&stats.stdout).trim()).expect("stats JSON");
    let snapshot = doc.get("stats").expect("stats envelope");
    assert!(
        snapshot
            .get("retries_observed")
            .and_then(|v| v.as_u64())
            .expect("retries_observed")
            > 0,
        "{}",
        String::from_utf8_lossy(&stats.stdout)
    );

    shutdown_and_reap(child, &addr, stderr, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_ctl_flags_are_gated() {
    let dir = tmp_dir("gating");
    for (args, needle) in [
        (&["serve"][..], "serve requires --addr"),
        (&["ctl", "--connect", "127.0.0.1:1"][..], "exactly one of"),
        (
            &["ctl", "--connect", "127.0.0.1:1", "--stats", "--shutdown"][..],
            "exactly one of",
        ),
        (&["ctl", "--stats"][..], "ctl requires --connect"),
        (
            &["batch", "--addr", "127.0.0.1:1"][..],
            "--addr only applies",
        ),
        (
            &["serve", "--addr", "127.0.0.1:1", "--time"][..],
            "--time only applies",
        ),
        (
            &[
                "batch",
                "--input",
                "x",
                "--connect",
                "127.0.0.1:1",
                "--workers",
                "2",
            ][..],
            "--workers does not apply",
        ),
        (
            &[
                "batch",
                "--input",
                "x",
                "--connect",
                "127.0.0.1:1",
                "--time",
            ][..],
            "--time does not apply",
        ),
        (
            &["fig4", "--connect", "127.0.0.1:1"][..],
            "--connect only applies",
        ),
        (
            &["batch", "--input", "x", "--retries", "2"][..],
            "--retries only applies when batch routes through --connect",
        ),
        (
            &["serve", "--addr", "127.0.0.1:1", "--retries", "2"][..],
            "--retries only applies to the batch command",
        ),
        (
            &[
                "batch",
                "--input",
                "x",
                "--connect",
                "127.0.0.1:1",
                "--retry-base-ms",
                "5",
            ][..],
            "--retry-base-ms requires --retries",
        ),
        (
            &["batch", "--input", "x", "--chaos-panic-every", "3"][..],
            "--chaos-panic-every only applies to the serve command",
        ),
        (
            &[
                "ctl",
                "--connect",
                "127.0.0.1:1",
                "--stats",
                "--default-deadline-ms",
                "50",
            ][..],
            "--default-deadline-ms only applies to the serve command",
        ),
    ] {
        let out = repro(args, &dir);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}:\n{stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_documents_serve_and_ctl() {
    let dir = tmp_dir("help");
    let out = repro(&["--help"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "serve",
        "ctl",
        "--addr",
        "--connect",
        "--stats",
        "--shutdown",
        "--client-queue",
        "--queue-depth",
        "--retries",
        "--retry-base-ms",
        "--default-deadline-ms",
        "--max-worker-restarts",
        "--chaos-panic-every",
        "--chaos-torn-writes",
    ] {
        assert!(stdout.contains(needle), "help missing {needle}:\n{stdout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
