//! End-to-end tests of `repro batch`: JSONL routing against the
//! committed example jobs file, byte-determinism across worker counts,
//! cache hit accounting, and per-job error handling.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn repro")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qroute_batch_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn example_file(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/{name}"));
    path.canonicalize()
        .expect("committed example jobs file exists")
        .display()
        .to_string()
}

fn example_jobs() -> String {
    example_file("jobs.jsonl")
}

#[test]
fn batch_output_is_byte_identical_across_runs_and_worker_counts() {
    let dir = tmp_dir("determinism");
    let jobs = example_jobs();
    let mut outputs = Vec::new();
    for (name, workers) in [("a", "1"), ("b", "1"), ("c", "8")] {
        let out = repro(
            &[
                "batch",
                "--input",
                &jobs,
                "--output",
                name,
                "--workers",
                workers,
            ],
            &dir,
        );
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("batch summary:"),
            "summary expected on stderr:\n{stderr}"
        );
        outputs.push(std::fs::read(dir.join(name)).expect("results file"));
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(outputs[0], outputs[1], "same flags must reproduce bytes");
    assert_eq!(outputs[0], outputs[2], "worker count must not change bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_reports_cache_hits_on_the_example_file() {
    // The committed example file embeds duplicates, reflected copies and
    // translated copies precisely so every fresh run exercises the cache.
    let dir = tmp_dir("hits");
    let out = repro(&["batch", "--input", &example_jobs()], &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let hits: u64 = stderr
        .split("hits=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no hits= in summary:\n{stderr}"));
    assert!(hits > 0, "example jobs must hit the cache:\n{stderr}");
    // Stdout got the outcome lines, in input order.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines.len(),
        std::fs::read_to_string(example_jobs())
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    );
    for (k, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\":{k},")),
            "line {k}: {line}"
        );
    }
    assert!(stdout.contains("\"cache\":\"hit\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn defect_example_batch_is_deterministic_and_hits_the_cache() {
    // The committed mixed batch: old-schema square jobs, defective grids
    // (duplicates and a reflected pattern pair sharing one canonical
    // entry), heavy-hex/brick/torus jobs. Bytes must not depend on the
    // worker count, and the symmetric defect jobs must hit the cache.
    let dir = tmp_dir("defects");
    let jobs = example_file("jobs_defects.jsonl");
    let mut outputs = Vec::new();
    for (name, workers) in [("w1", "1"), ("w8", "8")] {
        let out = repro(
            &[
                "batch",
                "--input",
                &jobs,
                "--output",
                name,
                "--workers",
                workers,
            ],
            &dir,
        );
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        let hits: u64 = stderr
            .split("hits=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no hits= in summary:\n{stderr}"));
        assert!(hits > 0, "symmetric defect jobs must hit:\n{stderr}");
        assert!(stderr.contains("errors=0"), "{stderr}");
        outputs.push(std::fs::read(dir.join(name)).expect("results file"));
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(outputs[0], outputs[1], "worker count must not change bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_cache_capacity_disables_hits() {
    let dir = tmp_dir("nocache");
    let out = repro(
        &["batch", "--input", &example_jobs(), "--cache-capacity", "0"],
        &dir,
    );
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("hits=0 "), "no cache, no hits:\n{stderr}");
    assert!(!String::from_utf8_lossy(&out.stdout).contains("\"cache\":\"hit\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_jobs_become_error_outcomes_and_exit_1() {
    let dir = tmp_dir("errors");
    std::fs::write(
        dir.join("jobs.jsonl"),
        concat!(
            "{\"side\": 3, \"router\": \"ats\", \"class\": \"random\", \"seed\": 1}\n",
            "this is not json\n",
            "{\"side\": 3, \"router\": \"warp-drive\", \"class\": \"random\", \"seed\": 1}\n",
            "{\"side\": 2, \"perm\": [0, 0, 1, 2]}\n",
            "{\"side\": 3, \"class\": \"random\", \"seed\": 2}\n",
        ),
    )
    .expect("write jobs");
    let out = repro(&["batch", "--input", "jobs.jsonl"], &dir);
    assert_eq!(out.status.code(), Some(1), "errored jobs must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "every job gets an outcome line:\n{stdout}");
    assert!(lines[0].contains("\"error\":null"));
    assert!(lines[1].contains("\"error\":\""));
    assert!(lines[2].contains("warp-drive"));
    assert!(lines[3].contains("\"error\":\""));
    assert!(lines[4].contains("\"error\":null"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("errors=3"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_input_file_exits_2() {
    let dir = tmp_dir("noinput");
    let out = repro(&["batch", "--input", "no-such-file.jsonl"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no-such-file"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_documents_the_batch_subcommand() {
    let dir = tmp_dir("batchhelp");
    let out = repro(&["--help"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "batch",
        "--input",
        "--workers",
        "--cache-capacity",
        "--time",
    ] {
        assert!(stdout.contains(needle), "help missing {needle}:\n{stdout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
