//! End-to-end tests of `repro topo`: topology materialization, the
//! pinned Graphviz DOT output, and flag validation.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn brick_2x2_dot_output_is_pinned() {
    let out = repro(&[
        "topo", "--kind", "brick", "--rows", "2", "--cols", "2", "--dot",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "graph brick {\n  0;\n  1;\n  2;\n  3;\n  0 -- 1;\n  0 -- 2;\n  2 -- 3;\n}\n"
    );
}

#[test]
fn summary_counts_alive_vertices_and_edges() {
    let out = repro(&["topo", "--kind", "defect", "--defects", "5"]);
    assert!(out.status.success());
    // 4x4 default frame, one dead vertex, its 4 incident edges removed.
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "defect(4x4, 1 dead vertices, 0 dead edges): 16 vertices (15 alive), 20 edges\n"
    );
}

#[test]
fn heavy_hex_dot_name_is_a_valid_identifier() {
    let out = repro(&[
        "topo",
        "--kind",
        "heavy-hex",
        "--rows",
        "2",
        "--cols",
        "5",
        "--dot",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("graph heavy_hex {\n"), "{stdout}");
    assert!(stdout.ends_with("}\n"));
}

#[test]
fn invalid_parameters_exit_2() {
    for args in [
        &["topo"][..],                                        // missing --kind
        &["topo", "--kind", "moebius"][..],                   // unknown kind
        &["topo", "--kind", "grid", "--defects", "1"][..],    // defects on non-defect
        &["topo", "--kind", "defect", "--defects", "99"][..], // out of range
        &["topo", "--kind", "torus", "--rows", "2"][..],      // torus factor < 3
        &["fig4", "--dot"][..],                               // topo-only flag elsewhere
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} should exit 2");
    }
}

#[test]
fn help_documents_the_topo_subcommand() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["topo", "--kind", "--defects", "--dot", "heavy-hex"] {
        assert!(stdout.contains(needle), "help missing {needle}:\n{stdout}");
    }
}
