//! Locality metrics of permutations on grids.
//!
//! These quantify "how local" a routing instance is and provide the depth
//! lower bounds used in tests and experiment reports:
//! any swap-layer schedule realizing `π` needs at least
//! `max_v dist(v, π(v))` layers (a token moves at most one edge per layer),
//! and at least `ceil(Σ_v dist(v, π(v)) / ⌊n/2⌋)` layers (each layer moves
//! at most `⌊n/2⌋` tokens one step each... conservatively `Σ/2` per layer of
//! swaps, since a layer on an n-vertex graph has at most ⌊n/2⌋ swaps and a
//! swap reduces total remaining distance by at most 2).

use crate::permutation::Permutation;
use qroute_topology::{dist, DistanceOracle, Graph, Grid};

/// Sum over all tokens of the L1 distance to their destination.
pub fn total_displacement(grid: Grid, p: &Permutation) -> usize {
    assert_eq!(grid.len(), p.len());
    (0..p.len()).map(|v| grid.dist(v, p.apply(v))).sum()
}

/// Largest single-token L1 distance — a lower bound on routing depth.
pub fn max_displacement(grid: Grid, p: &Permutation) -> usize {
    assert_eq!(grid.len(), p.len());
    (0..p.len())
        .map(|v| grid.dist(v, p.apply(v)))
        .max()
        .unwrap_or(0)
}

/// Combine the two depth bounds: `max(maxd, ceil(total / 2⌊n/2⌋))`.
///
/// A layer contains at most `⌊n/2⌋` swaps and each swap moves two tokens
/// one step, so a layer reduces total remaining displacement by at most
/// `2⌊n/2⌋`. Shared by every `depth_lower_bound*` variant so the formula
/// lives in one place.
fn combine_depth_bounds(total: usize, maxd: usize, n: usize) -> usize {
    let per_layer = 2 * (n / 2);
    let volume_bound = if per_layer == 0 {
        0
    } else {
        total.div_ceil(per_layer)
    };
    maxd.max(volume_bound)
}

/// Depth lower bound on a grid: `max(max_displacement, ceil(total / 2*⌊n/2⌋))`.
pub fn depth_lower_bound(grid: Grid, p: &Permutation) -> usize {
    let n = p.len();
    if n == 0 {
        return 0;
    }
    combine_depth_bounds(total_displacement(grid, p), max_displacement(grid, p), n)
}

/// Same bounds on an arbitrary graph, using BFS distances (one scratch
/// buffer reused across the `n` single-source passes; no `n × n` table).
pub fn depth_lower_bound_graph(graph: &Graph, p: &Permutation) -> usize {
    assert_eq!(graph.len(), p.len());
    let n = p.len();
    if n == 0 {
        return 0;
    }
    let mut row = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let mut total = 0usize;
    let mut maxd = 0usize;
    for v in 0..n {
        dist::bfs_into(graph, v, &mut row, &mut queue);
        let d = row[p.apply(v)];
        assert_ne!(d, dist::UNREACHABLE, "destination unreachable from source");
        total += d as usize;
        maxd = maxd.max(d as usize);
    }
    combine_depth_bounds(total, maxd, n)
}

/// [`depth_lower_bound_graph`] with distances served by an oracle — the
/// hot-path form: on a grid pass a `GridOracle` and the bound costs `O(n)`
/// time and `O(1)` extra memory instead of `n` BFS runs.
///
/// # Panics
/// Panics when the sizes disagree or some destination is unreachable.
pub fn depth_lower_bound_oracle(oracle: &impl DistanceOracle, p: &Permutation) -> usize {
    assert_eq!(oracle.len(), p.len());
    let n = p.len();
    if n == 0 {
        return 0;
    }
    let mut total = 0usize;
    let mut maxd = 0usize;
    for v in 0..n {
        let d = oracle.dist(v, p.apply(v));
        assert_ne!(d, dist::UNREACHABLE, "destination unreachable from source");
        total += d as usize;
        maxd = maxd.max(d as usize);
    }
    combine_depth_bounds(total, maxd, n)
}

/// Total distance on an arbitrary graph (the ATS potential function `Φ`),
/// with one reused BFS scratch buffer.
pub fn total_distance_graph(graph: &Graph, p: &Permutation) -> usize {
    assert_eq!(graph.len(), p.len());
    let mut row = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    (0..p.len())
        .map(|v| {
            dist::bfs_into(graph, v, &mut row, &mut queue);
            row[p.apply(v)] as usize
        })
        .sum()
}

/// Total distance `Φ` with distances served by an oracle.
pub fn total_distance_oracle(oracle: &impl DistanceOracle, p: &Permutation) -> usize {
    assert_eq!(oracle.len(), p.len());
    (0..p.len())
        .map(|v| oracle.dist(v, p.apply(v)) as usize)
        .sum()
}

/// Histogram of cycle lengths (index = length, value = count); index 0 is
/// unused, index 1 counts fixed points.
pub fn cycle_length_histogram(p: &Permutation) -> Vec<usize> {
    let mut hist = vec![0usize; p.len() + 1];
    for c in p.cycles(true) {
        hist[c.len()] += 1;
    }
    hist
}

/// The *spread* of a cycle on the grid: the L1 diameter of its vertex set
/// (max pairwise L1 distance). Local workloads have small spreads.
pub fn cycle_spread(grid: Grid, cycle: &[usize]) -> usize {
    let mut best = 0;
    for (k, &u) in cycle.iter().enumerate() {
        for &v in &cycle[k + 1..] {
            best = best.max(grid.dist(u, v));
        }
    }
    best
}

/// Maximum cycle spread over all non-trivial cycles of `p` — the paper's
/// notion of "cycles contained within small regions" is `max_spread ≪
/// diameter`.
pub fn max_cycle_spread(grid: Grid, p: &Permutation) -> usize {
    p.cycles(false)
        .iter()
        .map(|c| cycle_spread(grid, c))
        .max()
        .unwrap_or(0)
}

/// Block-locality score in `[0, 1]`: how well the instance matches the
/// paper's "cycles contained within small regions" regime.
///
/// Defined as `1 − max_cycle_spread / diameter`: `1.0` means every cycle
/// fits a single vertex (the identity), values near `1` mean all cycles
/// are confined to blocks far smaller than the grid, and `0` means some
/// cycle spans the full L1 diameter. The routing service's `auto`
/// dispatch policy keys off this feature — it is `O(n)` on the cycle
/// decomposition, far cheaper than trial-routing.
pub fn block_locality_score(grid: Grid, p: &Permutation) -> f64 {
    let diameter = (grid.rows() - 1) + (grid.cols() - 1);
    if diameter == 0 {
        return 1.0;
    }
    1.0 - max_cycle_spread(grid, p) as f64 / diameter as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn identity_metrics_are_zero() {
        let grid = Grid::new(4, 4);
        let p = Permutation::identity(16);
        assert_eq!(total_displacement(grid, &p), 0);
        assert_eq!(max_displacement(grid, &p), 0);
        assert_eq!(depth_lower_bound(grid, &p), 0);
        assert_eq!(max_cycle_spread(grid, &p), 0);
    }

    #[test]
    fn reversal_bounds() {
        let grid = Grid::new(1, 8);
        let p = generators::reversal(8);
        assert_eq!(max_displacement(grid, &p), 7);
        // total = 2*(7+5+3+1) = 32; per layer 2*4 = 8 -> volume bound 4.
        assert_eq!(total_displacement(grid, &p), 32);
        assert_eq!(depth_lower_bound(grid, &p), 7);
    }

    #[test]
    fn graph_and_grid_bounds_agree_on_grid() {
        use qroute_topology::{GridOracle, LazyBfsOracle};
        let grid = Grid::new(3, 5);
        let g = grid.to_graph();
        for seed in 0..5 {
            let p = generators::random(grid.len(), seed);
            assert_eq!(
                depth_lower_bound(grid, &p),
                depth_lower_bound_graph(&g, &p),
                "seed {seed}"
            );
            assert_eq!(
                total_displacement(grid, &p),
                total_distance_graph(&g, &p),
                "seed {seed}"
            );
            // Oracle-served variants agree with both.
            let grid_oracle = GridOracle::new(grid);
            let lazy = LazyBfsOracle::new(&g);
            assert_eq!(
                depth_lower_bound(grid, &p),
                depth_lower_bound_oracle(&grid_oracle, &p),
                "seed {seed}"
            );
            assert_eq!(
                depth_lower_bound(grid, &p),
                depth_lower_bound_oracle(&lazy, &p),
                "seed {seed}"
            );
            assert_eq!(
                total_displacement(grid, &p),
                total_distance_oracle(&grid_oracle, &p),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cycle_histogram_counts() {
        let p = Permutation::from_cycles(6, &[vec![0, 1, 2], vec![3, 4]]);
        let h = cycle_length_histogram(&p);
        assert_eq!(h[1], 1); // fixed point 5
        assert_eq!(h[2], 1);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn block_local_has_bounded_spread() {
        let grid = Grid::new(12, 12);
        let p = generators::block_local(grid, 3, 3, 17);
        // A 3x3 block has L1 diameter 4.
        assert!(max_cycle_spread(grid, &p) <= 4);
    }

    #[test]
    fn block_locality_score_separates_regimes() {
        let grid = Grid::new(12, 12);
        assert_eq!(block_locality_score(grid, &Permutation::identity(144)), 1.0);
        assert_eq!(
            block_locality_score(Grid::new(1, 1), &Permutation::identity(1)),
            1.0
        );
        // Disjoint 3x3 blocks: spread <= 4, diameter 22 -> score >= 1 - 4/22.
        let local = generators::block_local(grid, 3, 3, 7);
        assert!(block_locality_score(grid, &local) >= 1.0 - 4.0 / 22.0);
        // The full reversal moves the corner token across the diameter.
        let global = generators::reversal(144);
        assert_eq!(block_locality_score(grid, &global), 0.0);
        for seed in 0..4 {
            let p = generators::random(144, seed);
            let s = block_locality_score(grid, &p);
            assert!((0.0..=1.0).contains(&s), "seed {seed}: {s}");
        }
    }

    #[test]
    fn spread_of_explicit_cycle() {
        let grid = Grid::new(4, 4);
        let cycle = vec![grid.index(0, 0), grid.index(3, 3), grid.index(0, 3)];
        assert_eq!(cycle_spread(grid, &cycle), 6);
    }
}
