//! Seeded workload generators for the permutation classes evaluated in §V
//! of the paper.
//!
//! The paper's experiments use "a wide range of grid sizes and multiple
//! random mapping schemes (local and global)" and discusses three regimes:
//!
//! * **random** — a uniform random permutation of all grid vertices (the
//!   regime where the locality-aware router beats ATS in depth);
//! * **disjoint blocks** — cycles confined to disjoint sub-blocks of the
//!   grid (both algorithms comparable);
//! * **overlapping blocks** — cycles spanning overlapping blocks (ATS
//!   better);
//! * **long skinny cycles** in orthogonal directions — the adversarial case
//!   called out in §V where the locality-aware scheme cannot optimize both
//!   directions at once.
//!
//! All generators are deterministic given a seed.

use crate::partial::{Completion, PartialPermutation};
use crate::permutation::Permutation;
use qroute_topology::Grid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Uniform random permutation of all `n` vertices (Fisher–Yates).
pub fn random(n: usize, seed: u64) -> Permutation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map: Vec<usize> = (0..n).collect();
    map.shuffle(&mut rng);
    Permutation::from_vec_unchecked(map)
}

/// Random permutation whose cycles are confined to disjoint `bh × bw`
/// blocks tiling the grid (ragged boundary blocks are allowed).
///
/// Each tile's vertices are shuffled independently, so no token ever leaves
/// its tile — the "cycles … contained within small regions" workload.
pub fn block_local(grid: Grid, bh: usize, bw: usize, seed: u64) -> Permutation {
    assert!(bh >= 1 && bw >= 1, "block dimensions must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map: Vec<usize> = (0..grid.len()).collect();
    let mut block = Vec::with_capacity(bh * bw);
    let mut i0 = 0;
    while i0 < grid.rows() {
        let mut j0 = 0;
        while j0 < grid.cols() {
            block.clear();
            for i in i0..(i0 + bh).min(grid.rows()) {
                for j in j0..(j0 + bw).min(grid.cols()) {
                    block.push(grid.index(i, j));
                }
            }
            let mut images = block.clone();
            images.shuffle(&mut rng);
            for (&src, &dst) in block.iter().zip(&images) {
                map[src] = dst;
            }
            j0 += bw;
        }
        i0 += bh;
    }
    Permutation::from_vec_unchecked(map)
}

/// Random permutation built from *overlapping* blocks: `bh × bw` windows
/// placed every `(sh, sw)` rows/columns (strides smaller than the block
/// size make consecutive windows overlap). The permutations of successive
/// windows are composed, so cycles leak across window boundaries — the
/// regime where §V reports ATS ahead of the locality-aware router.
pub fn overlapping_blocks(
    grid: Grid,
    bh: usize,
    bw: usize,
    sh: usize,
    sw: usize,
    seed: u64,
) -> Permutation {
    assert!(bh >= 1 && bw >= 1, "block dimensions must be positive");
    assert!(sh >= 1 && sw >= 1, "strides must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // `map` is maintained as position -> token-destination; composing a
    // window shuffle means permuting the *current images* of the window's
    // positions.
    let mut map: Vec<usize> = (0..grid.len()).collect();
    let mut window = Vec::with_capacity(bh * bw);
    let mut i0 = 0;
    loop {
        let mut j0 = 0;
        loop {
            window.clear();
            for i in i0..(i0 + bh).min(grid.rows()) {
                for j in j0..(j0 + bw).min(grid.cols()) {
                    window.push(grid.index(i, j));
                }
            }
            // Shuffle images currently attached to the window positions.
            let mut imgs: Vec<usize> = window.iter().map(|&v| map[v]).collect();
            imgs.shuffle(&mut rng);
            for (&v, &img) in window.iter().zip(&imgs) {
                map[v] = img;
            }
            if j0 + bw >= grid.cols() {
                break;
            }
            j0 += sw;
        }
        if i0 + bh >= grid.rows() {
            break;
        }
        i0 += sh;
    }
    Permutation::from_vec_unchecked(map)
}

/// Long, skinny cycles stretching in *orthogonal* directions: cyclic shifts
/// along entire rows (for even-indexed rows) and entire columns (for
/// odd-indexed columns not touched by a shifted row... see below).
///
/// Concretely: rows `0, 2, 4, …` are cyclically shifted right by one; of
/// the remaining vertices, columns `1, 3, 5, …` restricted to odd rows are
/// cyclically shifted down by one. This interleaves horizontal and vertical
/// cycles of length `Θ(n)` and `Θ(m)` — the adversarial §V workload: a
/// single staging row cannot serve both cycle orientations.
pub fn skinny_cycles(grid: Grid, seed: u64) -> Permutation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    // Horizontal cycles on even rows.
    for i in (0..grid.rows()).step_by(2) {
        if grid.cols() >= 2 {
            cycles.push(grid.row(i));
        }
    }
    // Vertical cycles on odd rows restricted to alternate columns.
    for j in (1..grid.cols()).step_by(2) {
        let col: Vec<usize> = (1..grid.rows())
            .step_by(2)
            .map(|i| grid.index(i, j))
            .collect();
        if col.len() >= 2 {
            cycles.push(col);
        }
    }
    // Randomize cycle phase so different seeds differ.
    for c in cycles.iter_mut() {
        let k = rng.gen_range(0..c.len());
        c.rotate_left(k);
    }
    Permutation::from_cycles(grid.len(), &cycles)
}

/// Cyclic shift of the whole grid by `(dr, dc)` with wraparound — a
/// structured global permutation with uniform displacement, useful for
/// calibrating depth lower bounds.
pub fn torus_shift(grid: Grid, dr: usize, dc: usize) -> Permutation {
    let mut map = vec![0usize; grid.len()];
    for i in 0..grid.rows() {
        for j in 0..grid.cols() {
            let ti = (i + dr) % grid.rows();
            let tj = (j + dc) % grid.cols();
            map[grid.index(i, j)] = grid.index(ti, tj);
        }
    }
    Permutation::from_vec_unchecked(map)
}

/// The grid "transposition" permutation on a square grid:
/// `(i, j) → (j, i)`. Maximally non-local along the anti-diagonal.
///
/// # Panics
/// Panics when the grid is not square.
pub fn grid_transposition(grid: Grid) -> Permutation {
    assert_eq!(
        grid.rows(),
        grid.cols(),
        "grid transposition needs a square grid"
    );
    let mut map = vec![0usize; grid.len()];
    for i in 0..grid.rows() {
        for j in 0..grid.cols() {
            map[grid.index(i, j)] = grid.index(j, i);
        }
    }
    Permutation::from_vec_unchecked(map)
}

/// Full reversal `v → n-1-v` of the row-major order — on a grid this sends
/// `(i, j)` to `(m-1-i, n-1-j)`, the worst case for total displacement.
pub fn reversal(n: usize) -> Permutation {
    Permutation::from_vec_unchecked((0..n).rev().collect())
}

/// A random permutation with the given cycle type: `cycle_lengths[i]`
/// cycles are formed over a uniformly random arrangement of points (the
/// lengths must sum to at most `n`; remaining points are fixed).
///
/// Useful for controlled studies of how cycle structure drives routing
/// depth (ATS pays per cycle length; the 3-phase scheme does not).
///
/// # Panics
/// Panics when lengths sum beyond `n` or any length is zero.
pub fn with_cycle_type(n: usize, cycle_lengths: &[usize], seed: u64) -> Permutation {
    let total: usize = cycle_lengths.iter().sum();
    assert!(total <= n, "cycle lengths exceed the domain");
    assert!(
        cycle_lengths.iter().all(|&l| l >= 1),
        "cycles must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(&mut rng);
    let mut cycles = Vec::with_capacity(cycle_lengths.len());
    let mut cursor = 0;
    for &len in cycle_lengths {
        cycles.push(verts[cursor..cursor + len].to_vec());
        cursor += len;
    }
    Permutation::from_cycles(n, &cycles)
}

/// A random permutation that moves exactly `k` tokens (a uniformly chosen
/// random derangement-ish shuffle on a random `k`-subset; the remaining
/// `n - k` tokens are fixed). Useful for sparse-routing workloads.
pub fn sparse_random(n: usize, k: usize, seed: u64) -> Permutation {
    assert!(k <= n, "cannot move more tokens than exist");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(&mut rng);
    let chosen = &verts[..k];
    let mut images: Vec<usize> = chosen.to_vec();
    // Shuffle until no chosen point is fixed (expected O(1) retries), so
    // support size is exactly k (for k >= 2).
    if k >= 2 {
        loop {
            images.shuffle(&mut rng);
            if chosen.iter().zip(&images).all(|(a, b)| a != b) {
                break;
            }
        }
    }
    let mut map: Vec<usize> = (0..n).collect();
    for (&s, &d) in chosen.iter().zip(&images) {
        map[s] = d;
    }
    Permutation::from_vec_unchecked(map)
}

/// A sparse *partial-permutation* workload: up to `pairs` disjoint
/// 2-cycles between vertices at L1 distance `1..=radius` on the grid;
/// every other token is a don't-care, completed as a fixed point
/// ([`Completion::StayInPlace`]). This is the regime where per-token
/// search (the pathfinder router) beats the matching-based routers,
/// whose sweeps pay `Θ(side)` regardless of how few tokens move.
///
/// Pair placement is seeded and deterministic: sources are visited in a
/// shuffled order and each picks a uniformly random free partner within
/// the radius. Fewer than `pairs` pairs are produced only when the grid
/// runs out of free partners.
///
/// # Panics
/// Panics when `radius` is zero.
pub fn sparse_pairs(grid: Grid, pairs: usize, radius: usize, seed: u64) -> Permutation {
    assert!(radius >= 1, "radius must be positive");
    let n = grid.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut used = vec![false; n];
    let mut partial = PartialPermutation::new(n);
    let mut made = 0;
    for &src in &order {
        if made == pairs {
            break;
        }
        if used[src] {
            continue;
        }
        let candidates: Vec<usize> = (0..n)
            .filter(|&v| !used[v] && v != src && grid.dist(src, v) <= radius)
            .collect();
        let Some(&dst) = candidates.get(rng.gen_range(0..candidates.len().max(1))) else {
            continue;
        };
        used[src] = true;
        used[dst] = true;
        partial.pin(src, dst).expect("src and dst are fresh");
        partial.pin(dst, src).expect("src and dst are fresh");
        made += 1;
    }
    partial.complete(&Completion::StayInPlace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn random_is_seeded_and_valid() {
        let a = random(64, 7);
        let b = random(64, 7);
        let c = random(64, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn block_local_never_leaves_block() {
        let grid = Grid::new(8, 8);
        let p = block_local(grid, 4, 4, 3);
        for v in 0..grid.len() {
            let (i, j) = grid.coords(v);
            let (ti, tj) = grid.coords(p.apply(v));
            assert_eq!(i / 4, ti / 4, "row block violated for {v}");
            assert_eq!(j / 4, tj / 4, "col block violated for {v}");
        }
    }

    #[test]
    fn block_local_ragged_boundaries() {
        let grid = Grid::new(5, 7);
        let p = block_local(grid, 3, 3, 11);
        // Validity is the key property for ragged tiles.
        assert_eq!(p.len(), 35);
        for v in 0..35 {
            let d = grid.dist(v, p.apply(v));
            assert!(d <= 4, "token moved {d} > block diameter");
        }
    }

    #[test]
    fn overlapping_blocks_leak_across_tiles() {
        let grid = Grid::new(8, 8);
        let p = overlapping_blocks(grid, 4, 4, 2, 2, 5);
        // Some token should travel farther than a single 4x4 block diameter
        // (6); with overlap the composition stretches cycles. This is a
        // statistical property — check across a few seeds.
        let stretched = (0..10u64).any(|s| {
            let p = overlapping_blocks(grid, 4, 4, 2, 2, s);
            (0..p.len()).any(|v| grid.dist(v, p.apply(v)) > 6)
        });
        assert!(stretched, "overlapping blocks never leaked");
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn skinny_cycles_have_orthogonal_long_cycles() {
        let grid = Grid::new(9, 9);
        let p = skinny_cycles(grid, 1);
        let cycles = p.cycles(false);
        // Horizontal row cycles of length 9 exist.
        assert!(cycles.iter().any(|c| {
            c.len() == 9 && c.iter().all(|&v| grid.coords(v).0 == grid.coords(c[0]).0)
        }));
        // Vertical cycles exist too.
        assert!(cycles.iter().any(|c| {
            c.len() >= 2
                && c.iter().all(|&v| grid.coords(v).1 == grid.coords(c[0]).1)
                && c.iter().any(|&v| grid.coords(v).0 != grid.coords(c[0]).0)
        }));
    }

    #[test]
    fn torus_shift_displacement_uniform() {
        let grid = Grid::new(4, 6);
        let p = torus_shift(grid, 1, 2);
        for v in 0..grid.len() {
            let (i, j) = grid.coords(v);
            assert_eq!(p.apply(v), grid.index((i + 1) % 4, (j + 2) % 6));
        }
        assert!(torus_shift(grid, 0, 0).is_identity());
    }

    #[test]
    fn transposition_is_involution() {
        let grid = Grid::new(5, 5);
        let p = grid_transposition(grid);
        assert!(p.compose(&p).is_identity());
        assert_eq!(p.apply(grid.index(2, 2)), grid.index(2, 2));
    }

    #[test]
    fn reversal_displacement() {
        let p = reversal(10);
        assert_eq!(p.apply(0), 9);
        assert_eq!(p.apply(9), 0);
        assert!(p.compose(&p).is_identity());
    }

    #[test]
    fn sparse_random_support() {
        let p = sparse_random(50, 10, 3);
        assert_eq!(p.support_size(), 10);
        let q = sparse_random(50, 0, 3);
        assert!(q.is_identity());
        let r = sparse_random(5, 5, 9);
        assert_eq!(r.support_size(), 5);
    }

    #[test]
    fn sparse_pairs_are_disjoint_local_two_cycles() {
        let grid = Grid::new(16, 16);
        let p = sparse_pairs(grid, 16, 8, 3);
        assert_eq!(p.support_size(), 32, "16 disjoint pairs move 32 tokens");
        assert!(p.compose(&p).is_identity(), "2-cycles square to identity");
        for v in 0..p.len() {
            let d = grid.dist(v, p.apply(v));
            assert!(d <= 8, "pair distance {d} exceeds the radius");
        }
        // Seeded determinism.
        assert_eq!(p, sparse_pairs(grid, 16, 8, 3));
        assert_ne!(p, sparse_pairs(grid, 16, 8, 4));
        // Degenerate corners: no pairs, and a grid too small to pair up
        // to the request, both stay valid.
        assert!(sparse_pairs(grid, 0, 4, 0).is_identity());
        let tiny = sparse_pairs(Grid::new(1, 2), 5, 1, 0);
        assert_eq!(tiny.support_size(), 2);
    }

    #[test]
    fn cycle_type_is_respected() {
        let p = with_cycle_type(20, &[3, 5, 2], 7);
        let mut lengths: Vec<usize> = p.cycles(false).iter().map(Vec::len).collect();
        lengths.sort_unstable();
        assert_eq!(lengths, vec![2, 3, 5]);
        assert_eq!(p.support_size(), 10);
        // Fixed-point-only type.
        assert!(with_cycle_type(5, &[], 0).is_identity());
        assert!(with_cycle_type(5, &[1, 1], 0).is_identity());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn cycle_type_validates_total() {
        let _ = with_cycle_type(4, &[3, 3], 0);
    }

    #[test]
    fn block_local_is_more_local_than_random() {
        let grid = Grid::new(16, 16);
        let pb = block_local(grid, 4, 4, 42);
        let pr = random(grid.len(), 42);
        assert!(
            metrics::total_displacement(grid, &pb) < metrics::total_displacement(grid, &pr),
            "block-local should have smaller total displacement"
        );
    }
}
