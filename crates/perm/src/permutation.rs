//! Dense permutations on `0..n`.

use std::fmt;

/// Errors raised when validating permutation data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermError {
    /// An image was `>= n`.
    ImageOutOfRange {
        /// The domain point.
        src: usize,
        /// Its out-of-range image.
        img: usize,
        /// Size of the domain.
        n: usize,
    },
    /// Two domain points mapped to the same image.
    NotInjective {
        /// The repeated image.
        img: usize,
    },
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermError::ImageOutOfRange { src, img, n } => {
                write!(f, "π({src}) = {img} out of range for n = {n}")
            }
            PermError::NotInjective { img } => {
                write!(f, "image {img} is hit twice; not a permutation")
            }
        }
    }
}

impl std::error::Error for PermError {}

/// A permutation `π` of `0..n`, stored as the image table `map[v] = π(v)`.
///
/// In routing terms: the token (qubit) currently at vertex `v` must end at
/// vertex `π(v)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    map: Vec<usize>,
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation({:?})", self.map)
    }
}

impl Permutation {
    /// The identity on `0..n`.
    pub fn identity(n: usize) -> Permutation {
        Permutation { map: (0..n).collect() }
    }

    /// Validate an image table and wrap it.
    pub fn from_vec(map: Vec<usize>) -> Result<Permutation, PermError> {
        let n = map.len();
        let mut seen = vec![false; n];
        for (src, &img) in map.iter().enumerate() {
            if img >= n {
                return Err(PermError::ImageOutOfRange { src, img, n });
            }
            if seen[img] {
                return Err(PermError::NotInjective { img });
            }
            seen[img] = true;
        }
        Ok(Permutation { map })
    }

    /// Build from an image table without validation.
    ///
    /// # Panics
    /// Panics (in debug builds) if the table is not a permutation.
    pub fn from_vec_unchecked(map: Vec<usize>) -> Permutation {
        debug_assert!(Permutation::from_vec(map.clone()).is_ok());
        Permutation { map }
    }

    /// Domain size `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Image `π(v)`.
    #[inline]
    pub fn apply(&self, v: usize) -> usize {
        self.map[v]
    }

    /// The underlying image table.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// `true` iff `π` is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &x)| i == x)
    }

    /// The inverse permutation `π⁻¹`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (v, &img) in self.map.iter().enumerate() {
            inv[img] = v;
        }
        Permutation { map: inv }
    }

    /// Composition `(self ∘ other)(v) = self(other(v))`.
    ///
    /// # Panics
    /// Panics when the two permutations have different sizes.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "composing permutations of different sizes"
        );
        Permutation { map: other.map.iter().map(|&v| self.map[v]).collect() }
    }

    /// Apply a transposition `(a b)` on the *positions* of the mapping:
    /// afterwards the token that was at `a` is at `b` and vice versa.
    ///
    /// Concretely this swaps the images of `a` and `b`.
    pub fn swap_images(&mut self, a: usize, b: usize) {
        self.map.swap(a, b);
    }

    /// Cycle decomposition; each cycle is listed starting from its smallest
    /// element, cycles sorted by that element. Fixed points are included as
    /// 1-cycles only when `include_fixed` is set.
    pub fn cycles(&self, include_fixed: bool) -> Vec<Vec<usize>> {
        let n = self.map.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut cycle = vec![start];
            seen[start] = true;
            let mut cur = self.map[start];
            while cur != start {
                seen[cur] = true;
                cycle.push(cur);
                cur = self.map[cur];
            }
            if cycle.len() > 1 || include_fixed {
                out.push(cycle);
            }
        }
        out
    }

    /// Number of non-fixed points.
    pub fn support_size(&self) -> usize {
        self.map
            .iter()
            .enumerate()
            .filter(|&(i, &x)| i != x)
            .count()
    }

    /// Build a permutation from a list of cycles over `0..n`; unmentioned
    /// points are fixed.
    ///
    /// # Panics
    /// Panics if a point occurs twice or is out of range.
    pub fn from_cycles(n: usize, cycles: &[Vec<usize>]) -> Permutation {
        let mut map: Vec<usize> = (0..n).collect();
        let mut used = vec![false; n];
        for cycle in cycles {
            for &v in cycle {
                assert!(v < n, "cycle element {v} out of range");
                assert!(!used[v], "cycle element {v} repeated");
                used[v] = true;
            }
            for k in 0..cycle.len() {
                map[cycle[k]] = cycle[(k + 1) % cycle.len()];
            }
        }
        Permutation { map }
    }

    /// Conjugate by a relabeling `ρ`: returns `ρ ∘ π ∘ ρ⁻¹`, the same
    /// permutation expressed in relabeled coordinates. Used to transport a
    /// permutation from a grid to its transpose.
    pub fn relabel(&self, rho: &Permutation) -> Permutation {
        assert_eq!(self.len(), rho.len());
        let mut map = vec![0usize; self.len()];
        for v in 0..self.len() {
            map[rho.apply(v)] = rho.apply(self.apply(v));
        }
        Permutation { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.support_size(), 0);
        assert_eq!(p.inverse(), p);
        assert!(p.cycles(false).is_empty());
        assert_eq!(p.cycles(true).len(), 5);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Permutation::from_vec(vec![1, 0, 2]).is_ok());
        assert_eq!(
            Permutation::from_vec(vec![0, 3, 1]),
            Err(PermError::ImageOutOfRange { src: 1, img: 3, n: 3 })
        );
        assert_eq!(
            Permutation::from_vec(vec![0, 1, 1]),
            Err(PermError::NotInjective { img: 1 })
        );
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]).unwrap();
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn compose_order() {
        // self(other(v)): other sends 0->1, self sends 1->2, so composite 0->2.
        let other = Permutation::from_vec(vec![1, 0, 2]).unwrap();
        let selfp = Permutation::from_vec(vec![0, 2, 1]).unwrap();
        let c = selfp.compose(&other);
        assert_eq!(c.apply(0), 2);
    }

    #[test]
    fn cycle_decomposition_round_trip() {
        let p = Permutation::from_vec(vec![1, 2, 0, 4, 3, 5]).unwrap();
        let cycles = p.cycles(false);
        assert_eq!(cycles, vec![vec![0, 1, 2], vec![3, 4]]);
        let q = Permutation::from_cycles(6, &cycles);
        assert_eq!(p, q);
    }

    #[test]
    fn from_cycles_fixed_points() {
        let p = Permutation::from_cycles(4, &[vec![1, 3]]);
        assert_eq!(p.apply(0), 0);
        assert_eq!(p.apply(1), 3);
        assert_eq!(p.apply(3), 1);
        assert_eq!(p.support_size(), 2);
    }

    #[test]
    #[should_panic]
    fn from_cycles_rejects_repeats() {
        let _ = Permutation::from_cycles(4, &[vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn swap_images_models_token_swap() {
        // Tokens destined: at 0 -> 2, at 1 -> 0, at 2 -> 1.
        let mut p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        // Swap tokens at positions 0 and 1: now position 0 holds the token
        // destined to 0, position 1 holds the token destined to 2.
        p.swap_images(0, 1);
        assert_eq!(p.as_slice(), &[0, 2, 1]);
    }

    #[test]
    fn relabel_conjugation() {
        let p = Permutation::from_vec(vec![1, 2, 0]).unwrap(); // cycle (0 1 2)
        let rho = Permutation::from_vec(vec![2, 1, 0]).unwrap(); // reverse
        let q = p.relabel(&rho);
        // q(rho(v)) = rho(p(v)): q(2)=rho(1)=1, q(1)=rho(2)=0, q(0)=rho(0)=2.
        assert_eq!(q.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }
}
