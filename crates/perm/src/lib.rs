//! # qroute-perm
//!
//! Permutations over physical qubits, partial permutations with completion
//! strategies, the workload generators used in the paper's evaluation (§V),
//! and locality metrics.
//!
//! The routing problem takes a permutation `π` on the vertices of the
//! coupling graph: the qubit currently at vertex `v` must be moved to
//! `π(v)`. Transpilers usually only constrain a subset of qubits (the
//! *don't-care* qubits may land anywhere), which we model with
//! [`PartialPermutation`] and extend to a full [`Permutation`] before
//! routing, exactly as assumed in §II of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod metrics;
pub mod partial;
pub mod permutation;

pub use partial::PartialPermutation;
pub use permutation::{PermError, Permutation};
