//! Partial permutations (`f : S → R` with `S, R ⊆ V`) and their completion
//! to full permutations.
//!
//! §II of the paper: "Oftentimes, we do not care about the location of some
//! qubits. In such a case, the destinations are given by a bijection
//! `f : S → R` … We can extend `f` to a permutation by selecting
//! destinations for the don't-care qubits. Here we assume this extension has
//! already been determined by the transpiler." This module is that
//! transpiler piece: it owns the extension policies.

use crate::permutation::{PermError, Permutation};
use qroute_topology::Grid;

/// A partial permutation: `dest[v] = Some(w)` pins the token at `v` to end
/// at `w`; `None` marks a don't-care token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialPermutation {
    dest: Vec<Option<usize>>,
}

/// Strategy used to place don't-care tokens when completing a partial
/// permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Keep every don't-care token in place when its vertex is a free
    /// destination, then fill the leftovers in index order. Cheap and good
    /// when few tokens are pinned.
    StayInPlace,
    /// Assign each don't-care token to the free destination nearest to it
    /// in L1 distance on the given grid (greedy, token order by increasing
    /// id). Produces more local extensions — the right default for the
    /// locality-aware router.
    NearestFree(Grid),
}

impl PartialPermutation {
    /// An all-don't-care partial permutation on `n` points.
    pub fn new(n: usize) -> PartialPermutation {
        PartialPermutation { dest: vec![None; n] }
    }

    /// Build from explicit pinned pairs `(src, dst)`.
    pub fn from_pairs(
        n: usize,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<PartialPermutation, PermError> {
        let mut pp = PartialPermutation::new(n);
        for (s, d) in pairs {
            pp.pin(s, d)?;
        }
        Ok(pp)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.dest.len()
    }

    /// `true` when there are no points at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dest.is_empty()
    }

    /// Pin the token at `src` to destination `dst`.
    ///
    /// Fails if out of range or if `dst` is already claimed; re-pinning the
    /// same `src` overwrites its previous destination.
    pub fn pin(&mut self, src: usize, dst: usize) -> Result<(), PermError> {
        let n = self.dest.len();
        if src >= n || dst >= n {
            return Err(PermError::ImageOutOfRange { src, img: dst, n });
        }
        if self
            .dest
            .iter()
            .enumerate()
            .any(|(s, &d)| s != src && d == Some(dst))
        {
            return Err(PermError::NotInjective { img: dst });
        }
        self.dest[src] = Some(dst);
        Ok(())
    }

    /// Destination of the token at `v`, if pinned.
    #[inline]
    pub fn get(&self, v: usize) -> Option<usize> {
        self.dest[v]
    }

    /// Number of pinned tokens.
    pub fn num_pinned(&self) -> usize {
        self.dest.iter().filter(|d| d.is_some()).count()
    }

    /// Complete to a full [`Permutation`] with the given policy.
    pub fn complete(&self, policy: &Completion) -> Permutation {
        let n = self.dest.len();
        let mut map: Vec<Option<usize>> = self.dest.clone();
        let mut taken = vec![false; n];
        for d in map.iter().flatten() {
            taken[*d] = true;
        }

        match policy {
            Completion::StayInPlace => {
                // First pass: fix in place whatever can stay.
                for v in 0..n {
                    if map[v].is_none() && !taken[v] {
                        map[v] = Some(v);
                        taken[v] = true;
                    }
                }
                // Second pass: pour the rest into free slots in order.
                let mut free = (0..n).filter(|&d| !taken[d]);
                for slot in map.iter_mut() {
                    if slot.is_none() {
                        *slot = Some(free.next().expect("free destination must exist"));
                    }
                }
            }
            Completion::NearestFree(grid) => {
                assert_eq!(grid.len(), n, "grid size must match permutation size");
                for (v, slot) in map.iter_mut().enumerate() {
                    if slot.is_some() {
                        continue;
                    }
                    let d = (0..n)
                        .filter(|&d| !taken[d])
                        .min_by_key(|&d| (grid.dist(v, d), d))
                        .expect("free destination must exist");
                    *slot = Some(d);
                    taken[d] = true;
                }
            }
        }
        Permutation::from_vec(map.into_iter().map(|d| d.expect("all assigned")).collect())
            .expect("completion produces a valid permutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_completes_to_identity() {
        let pp = PartialPermutation::new(6);
        assert!(pp.complete(&Completion::StayInPlace).is_identity());
    }

    #[test]
    fn pinned_pairs_respected() {
        let pp = PartialPermutation::from_pairs(5, [(0, 4), (3, 0)]).unwrap();
        let p = pp.complete(&Completion::StayInPlace);
        assert_eq!(p.apply(0), 4);
        assert_eq!(p.apply(3), 0);
    }

    #[test]
    fn stay_in_place_keeps_dont_cares_when_possible() {
        let pp = PartialPermutation::from_pairs(5, [(0, 4)]).unwrap();
        let p = pp.complete(&Completion::StayInPlace);
        // 1, 2, 3 stay; token at 4 must take the leftover slot 0.
        assert_eq!(p.apply(1), 1);
        assert_eq!(p.apply(2), 2);
        assert_eq!(p.apply(3), 3);
        assert_eq!(p.apply(4), 0);
    }

    #[test]
    fn nearest_free_is_local() {
        let grid = Grid::new(2, 3);
        // Pin the token at (0,0) to (0,1); everything else should stay put
        // except the displaced token at (0,1), which should go to the free
        // slot nearest to it — (0,0), at distance 1.
        let pp = PartialPermutation::from_pairs(6, [(grid.index(0, 0), grid.index(0, 1))]).unwrap();
        let p = pp.complete(&Completion::NearestFree(grid));
        assert_eq!(p.apply(grid.index(0, 1)), grid.index(0, 0));
        assert_eq!(p.apply(grid.index(1, 2)), grid.index(1, 2));
    }

    #[test]
    fn pin_rejects_conflicts() {
        let mut pp = PartialPermutation::new(4);
        pp.pin(0, 2).unwrap();
        assert_eq!(pp.pin(1, 2), Err(PermError::NotInjective { img: 2 }));
        // Re-pinning the same source is allowed.
        pp.pin(0, 3).unwrap();
        pp.pin(1, 2).unwrap();
        assert_eq!(pp.num_pinned(), 2);
    }

    #[test]
    fn pin_rejects_out_of_range() {
        let mut pp = PartialPermutation::new(3);
        assert!(pp.pin(0, 9).is_err());
        assert!(pp.pin(9, 0).is_err());
    }

    #[test]
    fn completion_is_always_a_permutation() {
        // Exhaustively check a saturated partial permutation.
        let pp = PartialPermutation::from_pairs(4, [(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        let p = pp.complete(&Completion::StayInPlace);
        assert_eq!(p.as_slice(), &[1, 0, 3, 2]);
    }
}
