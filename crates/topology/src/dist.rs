//! Shortest-path distances via breadth-first search.
//!
//! The approximate token swapping baseline needs all-pairs shortest paths on
//! the coupling graph; locality metrics need single-source distances. Both
//! are plain BFS since coupling graphs are unweighted.

use crate::graph::Graph;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `src`. Unreachable vertices get
/// [`UNREACHABLE`].
pub fn bfs(graph: &Graph, src: usize) -> Vec<u32> {
    let mut dist = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    bfs_into(graph, src, &mut dist, &mut queue);
    dist
}

/// [`bfs`] with caller-owned scratch buffers, for loops that run many BFS
/// passes (locality metrics, lazy oracles) without reallocating per
/// source. `dist` is resized and overwritten; `queue` is drained before
/// use.
pub fn bfs_into(
    graph: &Graph,
    src: usize,
    dist: &mut Vec<u32>,
    queue: &mut std::collections::VecDeque<usize>,
) {
    let n = graph.len();
    assert!(src < n, "BFS source out of range");
    dist.clear();
    dist.resize(n, UNREACHABLE);
    queue.clear();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v];
        for w in graph.neighbors(v) {
            if dist[w] == UNREACHABLE {
                dist[w] = dv + 1;
                queue.push_back(w);
            }
        }
    }
}

/// All-pairs shortest path matrix (`n` BFS runs, O(n·(n+m))).
pub fn all_pairs(graph: &Graph) -> Vec<Vec<u32>> {
    (0..graph.len()).map(|v| bfs(graph, v)).collect()
}

/// One arbitrary shortest path from `src` to `dst` (inclusive of both), or
/// `None` if unreachable. Ties broken toward lower vertex ids, making the
/// output deterministic.
pub fn shortest_path(graph: &Graph, src: usize, dst: usize) -> Option<Vec<usize>> {
    let dist = bfs(graph, dst);
    if dist[src] == UNREACHABLE {
        return None;
    }
    let mut path = Vec::with_capacity(dist[src] as usize + 1);
    let mut cur = src;
    path.push(cur);
    while cur != dst {
        let next = graph
            .neighbors(cur)
            .find(|&w| dist[w] + 1 == dist[cur])
            .expect("BFS predecessor must exist on a shortest path");
        path.push(next);
        cur = next;
    }
    Some(path)
}

/// Eccentricity-based graph diameter (max finite pairwise distance).
/// Returns 0 for graphs with fewer than two vertices.
pub fn diameter(graph: &Graph) -> usize {
    let mut best = 0u32;
    for v in 0..graph.len() {
        for d in bfs(graph, v) {
            if d != UNREACHABLE && d > best {
                best = d;
            }
        }
    }
    best as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::path::Path;

    #[test]
    fn bfs_on_path() {
        let g = Path::new(5).to_graph();
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_disconnected() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = Grid::new(3, 3).to_graph();
        let apsp = all_pairs(&g);
        for (u, row) in apsp.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, apsp[v][u]);
            }
        }
    }

    #[test]
    fn triangle_inequality_on_grid() {
        let g = Grid::new(3, 4).to_graph();
        let apsp = all_pairs(&g);
        let n = g.len();
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    assert!(apsp[u][w] <= apsp[u][v] + apsp[v][w]);
                }
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let grid = Grid::new(4, 4);
        let g = grid.to_graph();
        let p = shortest_path(&g, grid.index(0, 0), grid.index(3, 2)).unwrap();
        assert_eq!(p.first(), Some(&grid.index(0, 0)));
        assert_eq!(p.last(), Some(&grid.index(3, 2)));
        assert_eq!(p.len(), grid.dist(grid.index(0, 0), grid.index(3, 2)) + 1);
        for pair in p.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert!(shortest_path(&g, 0, 2).is_none());
        assert_eq!(shortest_path(&g, 0, 0).unwrap(), vec![0]);
    }

    #[test]
    fn grid_diameter() {
        let g = Grid::new(4, 5).to_graph();
        assert_eq!(diameter(&g), 3 + 4);
    }
}
