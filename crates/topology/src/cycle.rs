//! The cycle graph `C_n` — the second 1-D factor we support for Cartesian
//! products (cylinders `P □ C` and tori `C □ C` are "grid-like"
//! architectures in the sense of §IV of the paper).

use crate::graph::Graph;

/// The cycle graph on `n >= 3` vertices `0 — 1 — … — n-1 — 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cycle {
    n: usize,
}

impl Cycle {
    /// Create `C_n`, `n >= 3`.
    ///
    /// # Panics
    /// Panics when `n < 3` (smaller "cycles" would be multigraphs).
    pub fn new(n: usize) -> Cycle {
        assert!(n >= 3, "cycle must have at least three vertices");
        Cycle { n }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Cycles are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Graph distance `min(|u-v|, n - |u-v|)`.
    #[inline]
    pub fn dist(&self, u: usize, v: usize) -> usize {
        let d = u.abs_diff(v);
        d.min(self.n - d)
    }

    /// Materialize as a generic [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let edges = (0..self.n).map(|i| (i, (i + 1) % self.n));
        Graph::from_edges(self.n, edges).expect("cycle edges are always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_structure() {
        let c = Cycle::new(6);
        let g = c.to_graph();
        assert_eq!(g.num_edges(), 6);
        for v in 0..6 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn wraparound_distance() {
        let c = Cycle::new(8);
        assert_eq!(c.dist(0, 7), 1);
        assert_eq!(c.dist(0, 4), 4);
        assert_eq!(c.dist(1, 6), 3);
    }

    #[test]
    fn distance_matches_bfs() {
        use crate::oracle::{CycleOracle, DistanceOracle};
        let c = Cycle::new(7);
        let g = c.to_graph();
        let oracle = CycleOracle::new(c);
        // `all_pairs` is the test-only reference; routing hot paths query
        // the oracle instead of materializing this table.
        let apsp = crate::dist::all_pairs(&g);
        for (u, row) in apsp.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(c.dist(u, v), duv as usize);
                assert_eq!(oracle.dist(u, v), duv);
            }
        }
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        let _ = Cycle::new(2);
    }
}
