//! "Grid-like" architectures beyond the perfect grid.
//!
//! The paper motivates the grid by noting that most planar superconducting
//! architectures are *close to* a grid. This module provides two such
//! families for stress-testing routers:
//!
//! * [`grid_with_defects`] — a grid with a set of vertices removed (dead
//!   qubits), as happens on real devices;
//! * [`brick_wall`] — a degree-3 "brick wall" lattice reminiscent of IBM's
//!   heavy-hex family: a grid where alternating vertical links are removed.
//!
//! These graphs are *not* Cartesian products, so the 3-phase router does not
//! apply directly; they exercise the general-graph token-swapping baseline
//! and the transpiler.

use crate::graph::Graph;
use crate::grid::Grid;

/// An `m × n` grid with `defects` (linear vertex ids) removed.
///
/// Returns the surviving graph together with a mapping from new (compacted)
/// vertex ids to the original grid ids. The graph may be disconnected if the
/// defects cut it; callers should check [`Graph::is_connected`].
///
/// # Panics
/// Panics when a defect id is out of range.
pub fn grid_with_defects(grid: Grid, defects: &[usize]) -> (Graph, Vec<usize>) {
    let n = grid.len();
    let mut dead = vec![false; n];
    for &d in defects {
        assert!(d < n, "defect {d} out of range for grid with {n} vertices");
        dead[d] = true;
    }
    let mut new_id = vec![usize::MAX; n];
    let mut old_id = Vec::new();
    for v in 0..n {
        if !dead[v] {
            new_id[v] = old_id.len();
            old_id.push(v);
        }
    }
    let mut edges = Vec::new();
    for &(u, v) in grid.to_graph().edges() {
        if !dead[u] && !dead[v] {
            edges.push((new_id[u], new_id[v]));
        }
    }
    let g = Graph::from_edges(old_id.len(), edges).expect("defect grid edges valid");
    (g, old_id)
}

/// A degree-≤3 brick-wall lattice on an `m × n` vertex grid: all horizontal
/// edges are kept, and the vertical edge below `(i, j)` is kept only when
/// `(i + j) % 2 == 0`, producing the staggered "brick" pattern.
///
/// Connected for all `m, n >= 1` (every row is a path and consecutive rows
/// share at least one rung when `n >= 1`).
pub fn brick_wall(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let grid = Grid::new(rows, cols);
    let mut edges = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            let v = grid.index(i, j);
            if j + 1 < cols {
                edges.push((v, grid.index(i, j + 1)));
            }
            if i + 1 < rows && (i + j) % 2 == 0 {
                edges.push((v, grid.index(i + 1, j)));
            }
        }
    }
    Graph::from_edges(grid.len(), edges).expect("brick wall edges valid")
}

/// An IBM-style *heavy-hex* lattice with `rows` rows of `cols` data
/// vertices: horizontal rows are paths, and vertical "bridge" vertices
/// connect adjacent rows at every fourth column, staggered by two per row
/// pair (degree ≤ 3 everywhere — the defining property of heavy-hex).
///
/// Returns the graph; vertex ids `0..rows*cols` are the row vertices in
/// row-major order, followed by the bridge vertices.
pub fn heavy_hex(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let grid = Grid::new(rows, cols);
    let mut edges = Vec::new();
    for i in 0..rows {
        for j in 0..cols.saturating_sub(1) {
            edges.push((grid.index(i, j), grid.index(i, j + 1)));
        }
    }
    let mut next = rows * cols;
    let mut total = rows * cols;
    for i in 0..rows.saturating_sub(1) {
        let offset = if i % 2 == 0 { 0 } else { 2 };
        let mut j = offset;
        let mut connected = false;
        while j < cols {
            let bridge = next;
            next += 1;
            total += 1;
            edges.push((grid.index(i, j), bridge));
            edges.push((bridge, grid.index(i + 1, j)));
            connected = true;
            j += 4;
        }
        if !connected {
            // Narrow lattices: guarantee connectivity with one bridge at
            // column 0.
            let bridge = next;
            next += 1;
            total += 1;
            edges.push((grid.index(i, 0), bridge));
            edges.push((bridge, grid.index(i + 1, 0)));
        }
    }
    Graph::from_edges(total, edges).expect("heavy hex edges valid")
}

/// Render a graph in Graphviz DOT format (undirected), for eyeballing
/// architectures.
pub fn to_dot(graph: &Graph, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = format!("graph {name} {{\n");
    for v in 0..graph.len() {
        let _ = writeln!(out, "  {v};");
    }
    for &(u, v) in graph.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hex_degree_and_connectivity() {
        for (m, n) in [(2, 5), (3, 9), (4, 13), (2, 2), (3, 1)] {
            let g = heavy_hex(m, n);
            assert!(g.is_connected(), "heavy hex {m}x{n} disconnected");
            assert!(g.max_degree() <= 3, "heavy hex {m}x{n} has degree > 3");
            assert!(g.len() >= m * n);
        }
    }

    #[test]
    fn heavy_hex_single_row_is_path() {
        let g = heavy_hex(1, 6);
        assert_eq!(g.len(), 6);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn dot_output_structure() {
        let g = Grid::new(2, 2).to_graph();
        let dot = to_dot(&g, "grid");
        assert!(dot.starts_with("graph grid {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -- ").count(), 4);
    }

    #[test]
    fn defect_grid_removes_vertices_and_edges() {
        let grid = Grid::new(3, 3);
        let center = grid.index(1, 1);
        let (g, old) = grid_with_defects(grid, &[center]);
        assert_eq!(g.len(), 8);
        assert!(!old.contains(&center));
        // The center had degree 4; removing it drops 4 edges from 12.
        assert_eq!(g.num_edges(), 8);
        assert!(g.is_connected());
    }

    #[test]
    fn defect_grid_can_disconnect() {
        let grid = Grid::new(1, 3);
        let (g, _) = grid_with_defects(grid, &[1]);
        assert_eq!(g.len(), 2);
        assert!(!g.is_connected());
    }

    #[test]
    fn no_defects_is_identity() {
        let grid = Grid::new(2, 2);
        let (g, old) = grid_with_defects(grid, &[]);
        assert_eq!(g.len(), 4);
        assert_eq!(old, vec![0, 1, 2, 3]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn duplicate_defects_are_fine() {
        let grid = Grid::new(2, 2);
        let (g, _) = grid_with_defects(grid, &[0, 0]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn brick_wall_is_connected_and_sparse() {
        for (m, n) in [(1, 1), (2, 2), (3, 5), (5, 4), (6, 6)] {
            let g = brick_wall(m, n);
            assert!(g.is_connected(), "brick wall {m}x{n} disconnected");
            assert!(g.max_degree() <= 3, "brick wall {m}x{n} has degree > 3");
            let full = Grid::new(m, n).to_graph();
            assert!(g.num_edges() <= full.num_edges());
        }
    }
}
