//! A first-class description of a routing architecture.
//!
//! The paper's routers are defined on the pristine `m × n` grid, but real
//! hardware is messier: IBM-style heavy-hex lattices, brick-wall
//! couplers, tori, and — above all — grids with *defects* (dead qubits
//! and dead couplers, the default situation on shipped devices). This
//! module packages each supported architecture as a [`Topology`] value
//! that can produce
//!
//! * its coupling [`Graph`] ([`Topology::graph`]),
//! * its best [`DistanceOracle`] ([`Topology::oracle`]) — closed-form
//!   where one exists (grids, tori), a lazy BFS cache otherwise,
//! * a compacted routing frame with dead vertices removed
//!   ([`Topology::routing_frame`]), which token-swapping routers use so
//!   their spanning-tree fallbacks never see isolated dead vertices.
//!
//! Vertex ids are **stable**: a defective grid keeps all `m · n`
//! row-major grid ids, with dead vertices present but isolated (degree
//! 0). Permutations over a defective grid are full-length and must fix
//! every dead vertex — [`Topology::permutation_fits`] checks this.

use crate::cycle::Cycle;
use crate::graph::Graph;
use crate::grid::Grid;
use crate::gridlike;
use crate::oracle::{CycleOracle, DistanceOracle, GridOracle, LazyBfsOracle, ProductOracle};
use crate::product::Product;

/// A routing architecture: the grid the paper targets, or one of the
/// "grid-like" families real hardware ships.
///
/// Construct via [`Topology::grid`], [`Topology::grid_with_defects`],
/// [`Topology::heavy_hex`], [`Topology::brick_wall`] or
/// [`Topology::torus`]; the constructors validate and normalize their
/// inputs so equal topologies compare equal (defect lists are sorted,
/// dead edges are stored `(min, max)` and deduplicated).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A full `m × n` grid (square or rectangular) — every router
    /// supports this.
    Grid(Grid),
    /// A grid with dead vertices and/or dead edges. All `m · n` grid ids
    /// survive; dead vertices are isolated in [`Topology::graph`].
    GridWithDefects {
        /// The underlying full grid.
        grid: Grid,
        /// Dead vertex ids, sorted and duplicate-free.
        dead_vertices: Vec<usize>,
        /// Dead coupling edges as `(min, max)` grid-edge pairs, sorted,
        /// deduplicated, and not incident to a dead vertex (such edges
        /// are already gone and are normalized away).
        dead_edges: Vec<(usize, usize)>,
    },
    /// An IBM-style heavy-hex lattice with `rows × cols` data vertices
    /// plus bridge vertices (see [`gridlike::heavy_hex`]).
    HeavyHex {
        /// Rows of data vertices.
        rows: usize,
        /// Columns of data vertices.
        cols: usize,
    },
    /// A degree-≤3 brick-wall lattice on `rows × cols` vertices (see
    /// [`gridlike::brick_wall`]).
    BrickWall {
        /// Vertex rows.
        rows: usize,
        /// Vertex columns.
        cols: usize,
    },
    /// The torus `C_rows □ C_cols` with row-major pair ids (both factors
    /// need at least three vertices).
    Torus {
        /// First cycle factor length.
        rows: usize,
        /// Second cycle factor length.
        cols: usize,
    },
}

/// Why a [`Topology`] could not be constructed or routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A defect id is not a vertex of the grid.
    DefectOutOfRange {
        /// The offending id.
        defect: usize,
        /// The grid's vertex count.
        len: usize,
    },
    /// The same defect id was listed twice.
    DuplicateDefect(usize),
    /// A dead edge names a pair that is not a coupling edge of the grid.
    DeadEdgeNotCoupled(usize, usize),
    /// Every vertex is dead — there is nothing left to route on.
    EmptyResidual,
    /// The alive part of the topology is not connected, so permutations
    /// moving tokens across components cannot be routed.
    Disconnected,
    /// A torus factor has fewer than three vertices.
    TorusTooSmall {
        /// Requested rows.
        rows: usize,
        /// Requested cols.
        cols: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DefectOutOfRange { defect, len } => {
                write!(
                    f,
                    "defect {defect} out of range for a grid with {len} vertices"
                )
            }
            TopologyError::DuplicateDefect(v) => write!(f, "duplicate defect {v}"),
            TopologyError::DeadEdgeNotCoupled(u, v) => {
                write!(f, "dead edge ({u}, {v}) is not a coupling edge of the grid")
            }
            TopologyError::EmptyResidual => write!(f, "defects leave no alive vertex"),
            TopologyError::Disconnected => {
                write!(
                    f,
                    "defect pattern disconnects the alive part of the topology"
                )
            }
            TopologyError::TorusTooSmall { rows, cols } => {
                write!(
                    f,
                    "torus factors need at least 3 vertices (got {rows}x{cols})"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A compacted view of a topology for routers that cannot tolerate
/// isolated dead vertices (spanning-tree construction, ATS fallbacks).
#[derive(Debug, Clone)]
pub struct RoutingFrame {
    /// The routing graph over alive vertices only.
    pub graph: Graph,
    /// Frame vertex id → topology vertex id, or `None` when no
    /// compaction happened (the ids coincide).
    pub to_topology: Option<Vec<usize>>,
}

impl RoutingFrame {
    /// Map a frame vertex id back to the topology's id space.
    #[inline]
    pub fn to_topology_id(&self, v: usize) -> usize {
        match &self.to_topology {
            Some(map) => map[v],
            None => v,
        }
    }
}

/// The best [`DistanceOracle`] for a topology's graph: closed-form for
/// grids and tori, a [`LazyBfsOracle`] for everything else (defective
/// grids, heavy-hex, brick walls).
#[derive(Debug)]
pub enum TopologyOracle<'g> {
    /// Closed-form Manhattan distances.
    Grid(GridOracle),
    /// Closed-form torus distances (sum of wraparound factors).
    Torus(ProductOracle<CycleOracle, CycleOracle>),
    /// Lazy per-source BFS over the supplied graph.
    Bfs(LazyBfsOracle<'g>),
}

impl DistanceOracle for TopologyOracle<'_> {
    fn len(&self) -> usize {
        match self {
            TopologyOracle::Grid(o) => o.len(),
            TopologyOracle::Torus(o) => o.len(),
            TopologyOracle::Bfs(o) => o.len(),
        }
    }

    #[inline]
    fn dist(&self, u: usize, v: usize) -> u32 {
        match self {
            TopologyOracle::Grid(o) => o.dist(u, v),
            TopologyOracle::Torus(o) => o.dist(u, v),
            TopologyOracle::Bfs(o) => o.dist(u, v),
        }
    }
}

impl Topology {
    /// A full `rows × cols` grid.
    ///
    /// # Panics
    /// Panics when either dimension is zero (as [`Grid::new`] does).
    pub fn grid(rows: usize, cols: usize) -> Topology {
        Topology::Grid(Grid::new(rows, cols))
    }

    /// A grid with dead vertices and dead edges.
    ///
    /// Validates that every defect id is in range and listed once, and
    /// that every dead edge is an actual grid edge; rejects patterns
    /// that kill every vertex. Dead edges incident to a dead vertex are
    /// normalized away (they are already absent), and an empty defect
    /// pattern normalizes to [`Topology::Grid`] — so "defective" inputs
    /// that are really pristine grids share keys and router support with
    /// plain grid instances.
    pub fn grid_with_defects(
        grid: Grid,
        defects: &[usize],
        dead_edges: &[(usize, usize)],
    ) -> Result<Topology, TopologyError> {
        let n = grid.len();
        let mut dead = vec![false; n];
        let mut dead_vertices = Vec::with_capacity(defects.len());
        for &d in defects {
            if d >= n {
                return Err(TopologyError::DefectOutOfRange { defect: d, len: n });
            }
            if dead[d] {
                return Err(TopologyError::DuplicateDefect(d));
            }
            dead[d] = true;
            dead_vertices.push(d);
        }
        if dead_vertices.len() == n {
            return Err(TopologyError::EmptyResidual);
        }
        dead_vertices.sort_unstable();
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(dead_edges.len());
        for &(a, b) in dead_edges {
            let (u, v) = (a.min(b), a.max(b));
            let coupled = u < n && v < n && grid.dist(u, v) == 1;
            if !coupled {
                return Err(TopologyError::DeadEdgeNotCoupled(a, b));
            }
            if !dead[u] && !dead[v] {
                edges.push((u, v));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        if dead_vertices.is_empty() && edges.is_empty() {
            return Ok(Topology::Grid(grid));
        }
        Ok(Topology::GridWithDefects { grid, dead_vertices, dead_edges: edges })
    }

    /// A heavy-hex lattice with `rows × cols` data vertices.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn heavy_hex(rows: usize, cols: usize) -> Topology {
        assert!(
            rows >= 1 && cols >= 1,
            "heavy-hex dimensions must be positive"
        );
        Topology::HeavyHex { rows, cols }
    }

    /// A brick-wall lattice on `rows × cols` vertices.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn brick_wall(rows: usize, cols: usize) -> Topology {
        assert!(
            rows >= 1 && cols >= 1,
            "brick-wall dimensions must be positive"
        );
        Topology::BrickWall { rows, cols }
    }

    /// The torus `C_rows □ C_cols`; both factors need at least three
    /// vertices.
    pub fn torus(rows: usize, cols: usize) -> Result<Topology, TopologyError> {
        if rows < 3 || cols < 3 {
            return Err(TopologyError::TorusTooSmall { rows, cols });
        }
        Ok(Topology::Torus { rows, cols })
    }

    /// The stable kind label — also the `--kind` / JSONL `"kind"`
    /// vocabulary of the CLI and the routing service.
    pub fn kind(&self) -> &'static str {
        match self {
            Topology::Grid(_) => "grid",
            Topology::GridWithDefects { .. } => "defect",
            Topology::HeavyHex { .. } => "heavy-hex",
            Topology::BrickWall { .. } => "brick",
            Topology::Torus { .. } => "torus",
        }
    }

    /// Number of vertices (including isolated dead vertices of a
    /// defective grid — ids are stable, see the module docs).
    pub fn len(&self) -> usize {
        match self {
            Topology::Grid(grid) => grid.len(),
            Topology::GridWithDefects { grid, .. } => grid.len(),
            Topology::HeavyHex { rows, cols } => heavy_hex_len(*rows, *cols),
            Topology::BrickWall { rows, cols } => rows * cols,
            Topology::Torus { rows, cols } => rows * cols,
        }
    }

    /// Topologies are never empty (constructors reject emptied grids).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying full grid when this topology *is* one (the only
    /// case the matching-based routers support).
    pub fn as_grid(&self) -> Option<Grid> {
        match self {
            Topology::Grid(grid) => Some(*grid),
            _ => None,
        }
    }

    /// Dead vertex ids (empty for defect-free topologies).
    pub fn dead_vertices(&self) -> &[usize] {
        match self {
            Topology::GridWithDefects { dead_vertices, .. } => dead_vertices,
            _ => &[],
        }
    }

    /// Dead coupling edges (empty for defect-free topologies).
    pub fn dead_edges(&self) -> &[(usize, usize)] {
        match self {
            Topology::GridWithDefects { dead_edges, .. } => dead_edges,
            _ => &[],
        }
    }

    /// `true` when vertex `v` carries a live qubit.
    pub fn is_alive(&self, v: usize) -> bool {
        !self.dead_vertices().contains(&v)
    }

    /// Materialize the coupling graph. Dead vertices of a defective grid
    /// are present but isolated, so vertex ids match the topology's.
    pub fn graph(&self) -> Graph {
        match self {
            Topology::Grid(grid) => grid.to_graph(),
            Topology::GridWithDefects { grid, dead_vertices, dead_edges } => {
                let n = grid.len();
                let mut dead = vec![false; n];
                for &d in dead_vertices {
                    dead[d] = true;
                }
                let edges: Vec<(usize, usize)> = grid
                    .to_graph()
                    .edges()
                    .iter()
                    .copied()
                    .filter(|&(u, v)| {
                        !dead[u] && !dead[v] && !dead_edges.contains(&(u.min(v), u.max(v)))
                    })
                    .collect();
                Graph::from_edges(n, edges).expect("filtered grid edges are valid")
            }
            Topology::HeavyHex { rows, cols } => gridlike::heavy_hex(*rows, *cols),
            Topology::BrickWall { rows, cols } => gridlike::brick_wall(*rows, *cols),
            Topology::Torus { rows, cols } => {
                Product::new(Cycle::new(*rows).to_graph(), Cycle::new(*cols).to_graph()).to_graph()
            }
        }
    }

    /// The compacted routing frame: the graph over alive vertices only,
    /// with a map back to topology ids when compaction happened.
    /// Defect-free topologies return their full graph unmapped.
    pub fn routing_frame(&self) -> RoutingFrame {
        match self {
            Topology::GridWithDefects { grid, dead_vertices, dead_edges } => {
                let n = grid.len();
                let mut dead = vec![false; n];
                for &d in dead_vertices {
                    dead[d] = true;
                }
                let mut new_id = vec![usize::MAX; n];
                let mut to_topology = Vec::with_capacity(n - dead_vertices.len());
                for v in 0..n {
                    if !dead[v] {
                        new_id[v] = to_topology.len();
                        to_topology.push(v);
                    }
                }
                let edges: Vec<(usize, usize)> = grid
                    .to_graph()
                    .edges()
                    .iter()
                    .copied()
                    .filter(|&(u, v)| {
                        !dead[u] && !dead[v] && !dead_edges.contains(&(u.min(v), u.max(v)))
                    })
                    .map(|(u, v)| (new_id[u], new_id[v]))
                    .collect();
                let graph = Graph::from_edges(to_topology.len(), edges)
                    .expect("compacted defect-grid edges are valid");
                RoutingFrame { graph, to_topology: Some(to_topology) }
            }
            _ => RoutingFrame { graph: self.graph(), to_topology: None },
        }
    }

    /// The best distance oracle for `graph`: closed-form for full grids
    /// and tori, lazy BFS otherwise.
    ///
    /// `graph` must be [`Topology::graph`] for the closed-form kinds; the
    /// BFS-backed kinds (defective grids, heavy-hex, brick walls) accept
    /// either the full graph or a [`RoutingFrame`] graph — the oracle
    /// simply answers for whichever graph it is handed.
    pub fn oracle<'g>(&self, graph: &'g Graph) -> TopologyOracle<'g> {
        match self {
            Topology::Grid(grid) => {
                debug_assert_eq!(graph.len(), grid.len());
                TopologyOracle::Grid(GridOracle::new(*grid))
            }
            Topology::Torus { rows, cols } => {
                debug_assert_eq!(graph.len(), rows * cols);
                TopologyOracle::Torus(ProductOracle::new(
                    CycleOracle::new(Cycle::new(*rows)),
                    CycleOracle::new(Cycle::new(*cols)),
                ))
            }
            _ => TopologyOracle::Bfs(LazyBfsOracle::new(graph)),
        }
    }

    /// Check that the alive part of the topology is connected (a
    /// prerequisite for routing arbitrary alive-vertex permutations).
    /// Grids, heavy-hex, brick walls and tori are connected by
    /// construction; defective grids can be cut by their defect pattern.
    pub fn validate_routable(&self) -> Result<(), TopologyError> {
        match self {
            Topology::GridWithDefects { .. } => {
                let frame = self.routing_frame();
                if frame.graph.is_empty() {
                    return Err(TopologyError::EmptyResidual);
                }
                if !frame.graph.is_connected() {
                    return Err(TopologyError::Disconnected);
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Check that `table` (a permutation image table over the topology's
    /// ids) is the right length and fixes every dead vertex. Returns a
    /// human-readable reason when it does not.
    pub fn permutation_fits(&self, table: &[usize]) -> Result<(), String> {
        if table.len() != self.len() {
            return Err(format!(
                "permutation has {} entries; {} has {} vertices",
                table.len(),
                self,
                self.len()
            ));
        }
        for &d in self.dead_vertices() {
            if table[d] != d {
                return Err(format!("permutation moves dead vertex {d}"));
            }
        }
        Ok(())
    }
}

impl From<Grid> for Topology {
    fn from(grid: Grid) -> Topology {
        Topology::Grid(grid)
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::Grid(grid) => write!(f, "grid({}x{})", grid.rows(), grid.cols()),
            Topology::GridWithDefects { grid, dead_vertices, dead_edges } => write!(
                f,
                "defect({}x{}, {} dead vertices, {} dead edges)",
                grid.rows(),
                grid.cols(),
                dead_vertices.len(),
                dead_edges.len()
            ),
            Topology::HeavyHex { rows, cols } => write!(f, "heavy-hex({rows}x{cols})"),
            Topology::BrickWall { rows, cols } => write!(f, "brick({rows}x{cols})"),
            Topology::Torus { rows, cols } => write!(f, "torus({rows}x{cols})"),
        }
    }
}

/// Vertex count of [`gridlike::heavy_hex`] without building the graph
/// (mirrors its bridge-placement loop).
fn heavy_hex_len(rows: usize, cols: usize) -> usize {
    let mut total = rows * cols;
    for i in 0..rows.saturating_sub(1) {
        let offset = if i % 2 == 0 { 0 } else { 2 };
        let bridges = if cols > offset {
            (cols - offset).div_ceil(4)
        } else {
            0
        };
        total += bridges.max(1);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist;
    use crate::oracle::ApspOracle;

    #[test]
    fn defect_constructor_validates_and_normalizes() {
        let grid = Grid::new(3, 3);
        let err = Topology::grid_with_defects(grid, &[9], &[]).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::DefectOutOfRange { defect: 9, .. }
        ));
        let err = Topology::grid_with_defects(grid, &[4, 4], &[]).unwrap_err();
        assert_eq!(err, TopologyError::DuplicateDefect(4));
        let err = Topology::grid_with_defects(grid, &[], &[(0, 2)]).unwrap_err();
        assert_eq!(err, TopologyError::DeadEdgeNotCoupled(0, 2));
        let err = Topology::grid_with_defects(Grid::new(1, 2), &[0, 1], &[]).unwrap_err();
        assert_eq!(err, TopologyError::EmptyResidual);
        // Empty patterns normalize to the plain grid …
        let t = Topology::grid_with_defects(grid, &[], &[]).unwrap();
        assert_eq!(t, Topology::Grid(grid));
        // … including when the only dead edge touches a dead vertex.
        let t = Topology::grid_with_defects(grid, &[0], &[(0, 1)]).unwrap();
        assert_eq!(t.dead_edges(), &[] as &[(usize, usize)]);
        assert_eq!(t.dead_vertices(), &[0]);
        // Dead-edge order is normalized and duplicates collapse.
        let t = Topology::grid_with_defects(grid, &[], &[(4, 1), (1, 4), (4, 3)]).unwrap();
        assert_eq!(t.dead_edges(), &[(1, 4), (3, 4)]);
    }

    #[test]
    fn defect_graph_keeps_stable_ids() {
        let grid = Grid::new(3, 3);
        let t = Topology::grid_with_defects(grid, &[4], &[(0, 1)]).unwrap();
        let g = t.graph();
        assert_eq!(g.len(), 9, "dead vertices stay as isolated ids");
        assert_eq!(g.degree(4), 0);
        assert!(!g.has_edge(0, 1), "dead edge removed");
        assert!(g.has_edge(0, 3));
        // Frame compacts the dead vertex away.
        let frame = t.routing_frame();
        assert_eq!(frame.graph.len(), 8);
        assert!(frame.graph.is_connected());
        let map = frame.to_topology.as_ref().unwrap();
        assert_eq!(map.len(), 8);
        assert!(!map.contains(&4));
        assert_eq!(frame.to_topology_id(0), 0);
    }

    #[test]
    fn lens_match_graphs_across_kinds() {
        let kinds = [
            Topology::grid(3, 5),
            Topology::grid_with_defects(Grid::new(4, 4), &[5, 10], &[]).unwrap(),
            Topology::heavy_hex(3, 9),
            Topology::heavy_hex(2, 2),
            Topology::heavy_hex(4, 13),
            Topology::brick_wall(3, 4),
            Topology::torus(3, 5).unwrap(),
        ];
        for t in kinds {
            assert_eq!(t.len(), t.graph().len(), "{t}");
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn torus_rejects_small_factors() {
        assert!(Topology::torus(2, 5).is_err());
        assert!(Topology::torus(5, 1).is_err());
        assert!(Topology::torus(3, 3).is_ok());
    }

    #[test]
    fn oracles_match_bfs_reference() {
        let kinds = [
            Topology::grid(3, 4),
            Topology::grid_with_defects(Grid::new(4, 4), &[5], &[(0, 1)]).unwrap(),
            Topology::heavy_hex(2, 5),
            Topology::brick_wall(3, 5),
            Topology::torus(3, 4).unwrap(),
        ];
        for t in kinds {
            let graph = t.graph();
            let oracle = t.oracle(&graph);
            let reference = ApspOracle::new(&graph);
            assert_eq!(oracle.len(), graph.len(), "{t}");
            for u in 0..graph.len() {
                for v in 0..graph.len() {
                    assert_eq!(oracle.dist(u, v), reference.dist(u, v), "{t} u={u} v={v}");
                }
            }
        }
    }

    #[test]
    fn validate_routable_flags_cuts() {
        // A dead column cuts a 1-wide corridor.
        let grid = Grid::new(1, 3);
        let t = Topology::grid_with_defects(grid, &[1], &[]).unwrap();
        assert_eq!(t.validate_routable(), Err(TopologyError::Disconnected));
        // A dead edge alone can cut a path graph too.
        let t = Topology::grid_with_defects(grid, &[], &[(0, 1)]).unwrap();
        assert_eq!(t.validate_routable(), Err(TopologyError::Disconnected));
        // Scattered interior defects keep an 8x8 connected.
        let grid = Grid::new(8, 8);
        let t = Topology::grid_with_defects(grid, &[9, 13, 41, 45], &[]).unwrap();
        assert_eq!(t.validate_routable(), Ok(()));
        assert_eq!(Topology::heavy_hex(3, 9).validate_routable(), Ok(()));
    }

    #[test]
    fn permutation_fits_checks_length_and_dead_fixing() {
        let t = Topology::grid_with_defects(Grid::new(2, 2), &[3], &[]).unwrap();
        assert!(t.permutation_fits(&[0, 1, 2, 3]).is_ok());
        assert!(t
            .permutation_fits(&[0, 1, 2])
            .unwrap_err()
            .contains("entries"));
        assert!(t
            .permutation_fits(&[0, 3, 2, 1])
            .unwrap_err()
            .contains("dead vertex 3"));
    }

    #[test]
    fn heavy_hex_len_matches_builder() {
        for rows in 1..5 {
            for cols in 1..14 {
                assert_eq!(
                    heavy_hex_len(rows, cols),
                    gridlike::heavy_hex(rows, cols).len(),
                    "{rows}x{cols}"
                );
            }
        }
    }

    #[test]
    fn display_and_kind_are_stable() {
        let t = Topology::grid_with_defects(Grid::new(4, 4), &[5], &[(0, 1)]).unwrap();
        assert_eq!(t.to_string(), "defect(4x4, 1 dead vertices, 1 dead edges)");
        assert_eq!(t.kind(), "defect");
        assert_eq!(Topology::grid(2, 3).kind(), "grid");
        assert_eq!(Topology::heavy_hex(2, 2).kind(), "heavy-hex");
        assert_eq!(Topology::brick_wall(2, 2).kind(), "brick");
        assert_eq!(Topology::torus(3, 3).unwrap().kind(), "torus");
    }

    #[test]
    fn unreachable_pairs_stay_unreachable_through_the_oracle() {
        // Defect graph with an isolated dead vertex: its distance to
        // anything alive is UNREACHABLE, to itself 0.
        let t = Topology::grid_with_defects(Grid::new(2, 2), &[0], &[]).unwrap();
        let graph = t.graph();
        let oracle = t.oracle(&graph);
        assert_eq!(oracle.dist(0, 1), dist::UNREACHABLE);
        assert_eq!(oracle.dist(0, 0), 0);
    }
}
