//! Distance oracles — O(1) closed-form or lazily cached shortest-path
//! distances, replacing materialized all-pairs tables on router hot paths.
//!
//! The approximate-token-swapping baseline and the locality metrics need
//! *many* point-to-point distance queries, historically served by
//! [`crate::dist::all_pairs`] — an `O(n²)`-memory, `O(n·m)`-time BFS
//! table. On the topologies this workspace actually routes, that table is
//! pure waste:
//!
//! * grid distance is closed-form Manhattan ([`GridOracle`], `O(1)` per
//!   query, zero setup, zero memory);
//! * cycle distance is closed-form wraparound ([`CycleOracle`]);
//! * Cartesian-product distance is the sum of factor distances
//!   ([`ProductOracle`]), so cylinders and tori inherit the closed forms
//!   of their factors;
//! * arbitrary graphs (grid-like lattices with defects, brick walls) get
//!   a *lazy* per-source BFS cache ([`LazyBfsOracle`]): a source row is
//!   computed on first query and reused, so a router that only ever asks
//!   about a few destinations never pays for the full table.
//!
//! [`ApspOracle`] wraps the eagerly materialized table behind the same
//! interface; it exists as the reference implementation for tests and the
//! before/after microbenchmarks, not for production routing.
//!
//! All oracles answer through the [`DistanceOracle`] trait, which takes
//! `&self` — lazily caching implementations use interior mutability, so a
//! single oracle can serve an entire routing pass without threading
//! `&mut` through the hot loops.

use crate::cycle::Cycle;
use crate::dist::{self, UNREACHABLE};
use crate::graph::Graph;
use crate::grid::Grid;
use std::cell::RefCell;

/// Point-to-point shortest-path distances on a fixed vertex set.
///
/// Distances are in hops (unweighted graphs); unreachable pairs answer
/// [`UNREACHABLE`]. Implementations must agree with BFS on the underlying
/// graph — the property tests pin every oracle in this module against
/// [`crate::dist::all_pairs`].
pub trait DistanceOracle {
    /// Number of vertices the oracle answers for.
    fn len(&self) -> usize;

    /// `true` when the vertex set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shortest-path distance between `u` and `v` (symmetric), or
    /// [`UNREACHABLE`] when no path exists.
    ///
    /// # Panics
    /// May panic when `u` or `v` is out of range.
    fn dist(&self, u: usize, v: usize) -> u32;
}

/// `O(1)` Manhattan distances on a [`Grid`] — the grid graph's shortest
/// path distance *is* the L1 distance, no search needed.
///
/// Construction precomputes one packed `(row, col)` word per vertex, so
/// `dist` is two loads plus arithmetic — no division on the hot path.
/// The cache is `4n` bytes — at side 64 that is 16 KiB, versus the
/// 64 MiB APSP table it replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridOracle {
    grid: Grid,
    /// `row << 16 | col` per vertex.
    coords: Box<[u32]>,
}

impl GridOracle {
    /// Oracle for `grid`.
    ///
    /// # Panics
    /// Panics when either grid dimension is `2¹⁶` or larger (the packed
    /// coordinate cache stores 16-bit rows and columns — 4 billion
    /// qubits per grid is comfortably beyond any routing target).
    pub fn new(grid: Grid) -> GridOracle {
        assert!(
            grid.rows() < (1 << 16) && grid.cols() < (1 << 16),
            "grid dimensions must fit 16-bit packed coordinates"
        );
        let coords = (0..grid.len())
            .map(|v| {
                let (r, c) = grid.coords(v);
                ((r as u32) << 16) | c as u32
            })
            .collect();
        GridOracle { grid, coords }
    }

    /// The underlying grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }
}

impl DistanceOracle for GridOracle {
    fn len(&self) -> usize {
        self.grid.len()
    }

    #[inline]
    fn dist(&self, u: usize, v: usize) -> u32 {
        let (cu, cv) = (self.coords[u], self.coords[v]);
        (cu >> 16).abs_diff(cv >> 16) + (cu & 0xFFFF).abs_diff(cv & 0xFFFF)
    }
}

/// `O(1)` wraparound distances on a [`Cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleOracle {
    cycle: Cycle,
}

impl CycleOracle {
    /// Oracle for `cycle`.
    pub fn new(cycle: Cycle) -> CycleOracle {
        CycleOracle { cycle }
    }
}

impl DistanceOracle for CycleOracle {
    fn len(&self) -> usize {
        self.cycle.len()
    }

    #[inline]
    fn dist(&self, u: usize, v: usize) -> u32 {
        self.cycle.dist(u, v) as u32
    }
}

/// Distances on a Cartesian product `G1 □ G2` as the sum of factor
/// distances, with the row-major pair indexing of [`crate::Product`]
/// (`(u, v)` has id `u * len2 + v`). Cylinders and tori — products of
/// paths and cycles — stay closed-form all the way down.
#[derive(Debug, Clone, Copy)]
pub struct ProductOracle<A, B> {
    f1: A,
    f2: B,
}

impl<A: DistanceOracle, B: DistanceOracle> ProductOracle<A, B> {
    /// Oracle for the product of the factors answered by `f1` and `f2`.
    pub fn new(f1: A, f2: B) -> ProductOracle<A, B> {
        ProductOracle { f1, f2 }
    }
}

impl<A: DistanceOracle, B: DistanceOracle> DistanceOracle for ProductOracle<A, B> {
    fn len(&self) -> usize {
        self.f1.len() * self.f2.len()
    }

    #[inline]
    fn dist(&self, u: usize, v: usize) -> u32 {
        let n2 = self.f2.len();
        let d1 = self.f1.dist(u / n2, v / n2);
        let d2 = self.f2.dist(u % n2, v % n2);
        if d1 == UNREACHABLE || d2 == UNREACHABLE {
            UNREACHABLE
        } else {
            d1 + d2
        }
    }
}

/// Lazy per-source BFS cache for arbitrary graphs.
///
/// The first query touching a source runs one BFS and keeps its distance
/// row; later queries against a cached row are `O(1)` lookups. Because
/// distances are symmetric, a query `dist(u, v)` is served by *either*
/// endpoint's row, and only falls back to a fresh BFS from `v` when
/// neither exists — so query patterns with a repeated endpoint (the ATS
/// walk repeatedly asks about one token's destination) cost one BFS per
/// distinct hot vertex, not `n` BFS up front. Worst-case memory matches
/// the full table only when all `n` sources actually get queried.
#[derive(Debug)]
pub struct LazyBfsOracle<'g> {
    graph: &'g Graph,
    rows: RefCell<Vec<Option<Box<[u32]>>>>,
}

impl<'g> LazyBfsOracle<'g> {
    /// Oracle over `graph`, with an empty cache.
    pub fn new(graph: &'g Graph) -> LazyBfsOracle<'g> {
        LazyBfsOracle { graph, rows: RefCell::new(vec![None; graph.len()]) }
    }

    /// Number of BFS rows computed so far (diagnostic; tests assert
    /// laziness with it).
    pub fn cached_sources(&self) -> usize {
        self.rows.borrow().iter().filter(|r| r.is_some()).count()
    }
}

impl DistanceOracle for LazyBfsOracle<'_> {
    fn len(&self) -> usize {
        self.graph.len()
    }

    fn dist(&self, u: usize, v: usize) -> u32 {
        if u == v {
            return 0;
        }
        let mut rows = self.rows.borrow_mut();
        if let Some(row) = &rows[v] {
            return row[u];
        }
        if let Some(row) = &rows[u] {
            return row[v];
        }
        let row: Box<[u32]> = dist::bfs(self.graph, v).into_boxed_slice();
        let d = row[u];
        rows[v] = Some(row);
        d
    }
}

/// Eagerly materialized all-pairs table behind the oracle interface.
///
/// This is the *old* hot-path representation (`n × n × u32`), kept as the
/// reference oracle for property tests and the before/after criterion
/// benchmarks. Don't put it on a routing hot path: at side 64 the table
/// alone is 4096² × 4 B = 64 MiB.
#[derive(Debug, Clone)]
pub struct ApspOracle {
    table: Vec<Vec<u32>>,
}

impl ApspOracle {
    /// Run full APSP (`n` BFS passes) on `graph` and cache the table.
    pub fn new(graph: &Graph) -> ApspOracle {
        ApspOracle { table: dist::all_pairs(graph) }
    }
}

impl DistanceOracle for ApspOracle {
    fn len(&self) -> usize {
        self.table.len()
    }

    #[inline]
    fn dist(&self, u: usize, v: usize) -> u32 {
        self.table[u][v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    fn assert_matches_apsp(oracle: &impl DistanceOracle, graph: &Graph) {
        let apsp = dist::all_pairs(graph);
        assert_eq!(oracle.len(), graph.len());
        for (u, row) in apsp.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(oracle.dist(u, v), duv, "u={u} v={v}");
            }
        }
    }

    #[test]
    fn grid_oracle_matches_bfs() {
        for (m, n) in [(1, 1), (1, 7), (4, 5), (6, 6)] {
            let grid = Grid::new(m, n);
            assert_matches_apsp(&GridOracle::new(grid), &grid.to_graph());
        }
    }

    #[test]
    fn cycle_oracle_matches_bfs() {
        for n in [3, 4, 9] {
            let cycle = Cycle::new(n);
            assert_matches_apsp(&CycleOracle::new(cycle), &cycle.to_graph());
        }
    }

    #[test]
    fn product_oracle_matches_bfs_on_cylinder_and_torus() {
        use crate::product::Product;
        // Cylinder P4 x C5 and torus C3 x C4, matching Product's indexing.
        let p = Path::new(4);
        let c5 = Cycle::new(5);
        let cylinder = Product::new(p.to_graph(), c5.to_graph());
        let oracle = ProductOracle::new(GridOracle::new(Grid::new(1, 4)), CycleOracle::new(c5));
        assert_matches_apsp(&oracle, &cylinder.to_graph());

        let c3 = Cycle::new(3);
        let c4 = Cycle::new(4);
        let torus = Product::new(c3.to_graph(), c4.to_graph());
        let oracle = ProductOracle::new(CycleOracle::new(c3), CycleOracle::new(c4));
        assert_matches_apsp(&oracle, &torus.to_graph());
    }

    #[test]
    fn lazy_oracle_matches_bfs_and_handles_disconnection() {
        let g = crate::gridlike::brick_wall(3, 5);
        let oracle = LazyBfsOracle::new(&g);
        assert_matches_apsp(&oracle, &g);

        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let oracle = LazyBfsOracle::new(&disconnected);
        assert_eq!(oracle.dist(0, 1), 1);
        assert_eq!(oracle.dist(0, 2), UNREACHABLE);
        assert_eq!(oracle.dist(3, 2), 1);
    }

    #[test]
    fn lazy_oracle_is_lazy() {
        let g = Grid::new(8, 8).to_graph();
        let oracle = LazyBfsOracle::new(&g);
        assert_eq!(oracle.cached_sources(), 0);
        // Repeated queries against one destination cost one BFS.
        for u in 0..g.len() {
            let _ = oracle.dist(u, 17);
        }
        assert_eq!(oracle.cached_sources(), 1);
        // The symmetric lookup reuses the cached row instead of adding one.
        let _ = oracle.dist(17, 3);
        assert_eq!(oracle.cached_sources(), 1);
        // Self-distances never compute a row.
        let _ = oracle.dist(5, 5);
        assert_eq!(oracle.cached_sources(), 1);
    }

    #[test]
    fn apsp_oracle_matches_bfs() {
        let g = crate::gridlike::heavy_hex(3, 9);
        assert_matches_apsp(&ApspOracle::new(&g), &g);
    }
}
