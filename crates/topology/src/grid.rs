//! The `m × n` grid graph — the paper's target architecture.
//!
//! Vertices are identified with coordinate pairs `(row, col)` where
//! `row ∈ 0..m` and `col ∈ 0..n` (the paper uses 1-based `[m] × [n]`; we use
//! 0-based throughout). The linear vertex id of `(i, j)` is `i * n + j`,
//! i.e. row-major order.

use crate::graph::Graph;

/// An `m × n` grid graph with row-major vertex ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Create an `m × n` grid. Both dimensions must be at least 1.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Grid {
        assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
        Grid { rows, cols }
    }

    /// Number of rows `m`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `n`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of vertices `m * n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` iff the grid has exactly one vertex. Grids are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear id of coordinate `(row, col)`.
    ///
    /// # Panics
    /// Panics in debug builds when the coordinate is out of range.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Coordinate `(row, col)` of linear id `v`.
    #[inline]
    pub fn coords(&self, v: usize) -> (usize, usize) {
        debug_assert!(v < self.len());
        (v / self.cols, v % self.cols)
    }

    /// L1 (Manhattan) distance between two vertices — this *is* the graph
    /// distance on a grid.
    #[inline]
    pub fn dist(&self, u: usize, v: usize) -> usize {
        let (ur, uc) = self.coords(u);
        let (vr, vc) = self.coords(v);
        ur.abs_diff(vr) + uc.abs_diff(vc)
    }

    /// The transposed grid (`n × m`). Vertex `(i, j)` of `self` corresponds
    /// to vertex `(j, i)` of the transpose; see [`Grid::transpose_vertex`].
    #[inline]
    pub fn transpose(&self) -> Grid {
        Grid { rows: self.cols, cols: self.rows }
    }

    /// Map a vertex id of `self` to the corresponding vertex id of
    /// [`Grid::transpose`] under the automorphism `(i, j) → (j, i)`.
    #[inline]
    pub fn transpose_vertex(&self, v: usize) -> usize {
        let (i, j) = self.coords(v);
        self.transpose().index(j, i)
    }

    /// Materialize the grid as a generic [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut edges = Vec::with_capacity(2 * self.len());
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = self.index(i, j);
                if j + 1 < self.cols {
                    edges.push((v, self.index(i, j + 1)));
                }
                if i + 1 < self.rows {
                    edges.push((v, self.index(i + 1, j)));
                }
            }
        }
        Graph::from_edges(self.len(), edges).expect("grid edges are always valid")
    }

    /// The vertex ids of column `j`, top to bottom (a path of length `m`).
    pub fn column(&self, j: usize) -> Vec<usize> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self.index(i, j)).collect()
    }

    /// The vertex ids of row `i`, left to right (a path of length `n`).
    pub fn row(&self, i: usize) -> Vec<usize> {
        assert!(i < self.rows);
        (0..self.cols).map(|j| self.index(i, j)).collect()
    }

    /// Iterate over all vertex ids in row-major order.
    pub fn vertices(&self) -> impl Iterator<Item = usize> {
        0..self.len()
    }

    /// Neighbors of `v` on the grid (2–4 of them), without materializing a
    /// [`Graph`].
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        let (i, j) = self.coords(v);
        let mut out = [usize::MAX; 4];
        let mut k = 0;
        if i > 0 {
            out[k] = self.index(i - 1, j);
            k += 1;
        }
        if j > 0 {
            out[k] = self.index(i, j - 1);
            k += 1;
        }
        if j + 1 < self.cols {
            out[k] = self.index(i, j + 1);
            k += 1;
        }
        if i + 1 < self.rows {
            out[k] = self.index(i + 1, j);
            k += 1;
        }
        out.into_iter().take(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_round_trip() {
        let g = Grid::new(3, 5);
        for v in 0..g.len() {
            let (i, j) = g.coords(v);
            assert_eq!(g.index(i, j), v);
        }
    }

    #[test]
    fn grid_graph_edge_count() {
        // m*(n-1) horizontal + (m-1)*n vertical edges.
        let g = Grid::new(4, 7);
        let graph = g.to_graph();
        assert_eq!(graph.num_edges(), 4 * 6 + 3 * 7);
        assert!(graph.is_connected());
    }

    #[test]
    fn one_by_one_grid() {
        let g = Grid::new(1, 1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.to_graph().num_edges(), 0);
        assert_eq!(g.neighbors(0).count(), 0);
    }

    #[test]
    fn single_row_is_path() {
        let g = Grid::new(1, 6);
        let graph = g.to_graph();
        assert_eq!(graph.num_edges(), 5);
        assert_eq!(graph.degree(0), 1);
        assert_eq!(graph.degree(3), 2);
    }

    #[test]
    fn l1_distance_matches_bfs() {
        use crate::oracle::{DistanceOracle, GridOracle};
        let g = Grid::new(4, 5);
        let graph = g.to_graph();
        let oracle = GridOracle::new(g);
        // `all_pairs` is the test-only reference; routing hot paths query
        // the oracle instead of materializing this table.
        let apsp = crate::dist::all_pairs(&graph);
        for (u, row) in apsp.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(g.dist(u, v), duv as usize, "u={u} v={v}");
                assert_eq!(oracle.dist(u, v), duv, "oracle u={u} v={v}");
            }
        }
    }

    #[test]
    fn transpose_preserves_adjacency() {
        let g = Grid::new(3, 4);
        let gt = g.transpose();
        let graph = g.to_graph();
        let tgraph = gt.to_graph();
        for &(u, v) in graph.edges() {
            assert!(tgraph.has_edge(g.transpose_vertex(u), g.transpose_vertex(v)));
        }
        assert_eq!(gt.rows(), 4);
        assert_eq!(gt.cols(), 3);
    }

    #[test]
    fn transpose_vertex_involution() {
        let g = Grid::new(3, 4);
        let gt = g.transpose();
        for v in 0..g.len() {
            assert_eq!(gt.transpose_vertex(g.transpose_vertex(v)), v);
        }
    }

    #[test]
    fn rows_and_columns() {
        let g = Grid::new(2, 3);
        assert_eq!(g.row(0), vec![0, 1, 2]);
        assert_eq!(g.row(1), vec![3, 4, 5]);
        assert_eq!(g.column(0), vec![0, 3]);
        assert_eq!(g.column(2), vec![2, 5]);
    }

    #[test]
    fn inline_neighbors_match_graph() {
        let g = Grid::new(5, 4);
        let graph = g.to_graph();
        for v in 0..g.len() {
            let mut a: Vec<usize> = g.neighbors(v).collect();
            let b: Vec<usize> = graph.neighbors(v).collect();
            a.sort_unstable();
            assert_eq!(a, b, "v={v}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        let _ = Grid::new(0, 3);
    }
}
