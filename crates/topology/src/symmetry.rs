//! The dihedral symmetries of a grid — vertex maps for canonicalization.
//!
//! An `m × n` grid has eight candidate symmetries: the four flip
//! combinations (rows, columns, both, neither) compose with an optional
//! transposition. Flip-only elements are automorphisms of the grid; the
//! transposing elements are isomorphisms onto the `n × m` grid. The
//! routing service uses these maps to canonicalize `(grid, π)` instances
//! and to replay cached schedules back through the inverse symmetry, so
//! the whole group lives here next to [`Grid`].

use crate::grid::Grid;

/// One dihedral symmetry of a grid, parameterized as "flip, then maybe
/// transpose": coordinates are first reflected (`flip_rows`: `i ↦
/// rows-1-i`, `flip_cols`: `j ↦ cols-1-j`) and the result is then
/// transposed (`(i, j) ↦ (j, i)`) when `transpose` is set.
///
/// The eight `(transpose, flip_rows, flip_cols)` combinations enumerate
/// the full dihedral group of a rectangle (for square grids all eight are
/// distinct automorphisms; for `m ≠ n` the transposing half maps onto the
/// transposed grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GridSymmetry {
    /// Reflect row indices (`i ↦ rows-1-i`) before transposing.
    pub flip_rows: bool,
    /// Reflect column indices (`j ↦ cols-1-j`) before transposing.
    pub flip_cols: bool,
    /// Exchange the two axes after flipping.
    pub transpose: bool,
}

impl GridSymmetry {
    /// The identity symmetry.
    pub fn identity() -> GridSymmetry {
        GridSymmetry::default()
    }

    /// All eight elements, in a fixed deterministic order (identity
    /// first, non-transposing elements before transposing ones).
    pub fn all() -> [GridSymmetry; 8] {
        let mut out = [GridSymmetry::identity(); 8];
        let mut k = 0;
        for transpose in [false, true] {
            for flip_rows in [false, true] {
                for flip_cols in [false, true] {
                    out[k] = GridSymmetry { flip_rows, flip_cols, transpose };
                    k += 1;
                }
            }
        }
        out
    }

    /// The grid this symmetry maps `grid` onto (`grid` itself, or its
    /// transpose for transposing elements).
    pub fn target(&self, grid: Grid) -> Grid {
        if self.transpose {
            grid.transpose()
        } else {
            grid
        }
    }

    /// Map a vertex id of `grid` to the corresponding vertex id of
    /// [`GridSymmetry::target`].
    pub fn apply(&self, grid: Grid, v: usize) -> usize {
        let (mut i, mut j) = grid.coords(v);
        if self.flip_rows {
            i = grid.rows() - 1 - i;
        }
        if self.flip_cols {
            j = grid.cols() - 1 - j;
        }
        if self.transpose {
            self.target(grid).index(j, i)
        } else {
            grid.index(i, j)
        }
    }

    /// The inverse element: applying [`GridSymmetry::apply`] on `grid`
    /// and then the inverse on the target grid is the identity.
    ///
    /// Flips are involutions, so the inverse only has to undo the order:
    /// `(T ∘ F)⁻¹ = F ∘ T = T ∘ F'` where `F'` swaps the roles of the two
    /// flips (transposition conjugates row flips into column flips).
    pub fn inverse(&self) -> GridSymmetry {
        if self.transpose {
            GridSymmetry { flip_rows: self.flip_cols, flip_cols: self.flip_rows, transpose: true }
        } else {
            *self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_are_distinct() {
        let mut seen = GridSymmetry::all().to_vec();
        seen.dedup();
        assert_eq!(seen.len(), 8);
        assert_eq!(seen[0], GridSymmetry::identity());
    }

    #[test]
    fn apply_is_a_bijection_onto_the_target() {
        let grid = Grid::new(3, 5);
        for sym in GridSymmetry::all() {
            let target = sym.target(grid);
            assert_eq!(target.len(), grid.len());
            let mut hit = vec![false; grid.len()];
            for v in 0..grid.len() {
                let w = sym.apply(grid, v);
                assert!(!hit[w], "{sym:?} repeats image {w}");
                hit[w] = true;
            }
        }
    }

    #[test]
    fn inverse_round_trips_every_vertex() {
        for grid in [Grid::new(3, 5), Grid::new(4, 4), Grid::new(1, 6)] {
            for sym in GridSymmetry::all() {
                let inv = sym.inverse();
                let target = sym.target(grid);
                assert_eq!(inv.target(target), grid);
                for v in 0..grid.len() {
                    assert_eq!(
                        inv.apply(target, sym.apply(grid, v)),
                        v,
                        "{sym:?} on {grid:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn symmetries_preserve_adjacency() {
        let grid = Grid::new(4, 6);
        let graph = grid.to_graph();
        for sym in GridSymmetry::all() {
            let tgraph = sym.target(grid).to_graph();
            for &(u, v) in graph.edges() {
                assert!(
                    tgraph.has_edge(sym.apply(grid, u), sym.apply(grid, v)),
                    "{sym:?} broke edge ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn transpose_element_matches_grid_transpose_vertex() {
        let grid = Grid::new(3, 4);
        let sym = GridSymmetry { transpose: true, ..GridSymmetry::identity() };
        for v in 0..grid.len() {
            assert_eq!(sym.apply(grid, v), grid.transpose_vertex(v));
        }
    }

    #[test]
    fn symmetries_preserve_l1_distance() {
        let grid = Grid::new(5, 3);
        for sym in GridSymmetry::all() {
            let target = sym.target(grid);
            for u in 0..grid.len() {
                for v in 0..grid.len() {
                    assert_eq!(
                        grid.dist(u, v),
                        target.dist(sym.apply(grid, u), sym.apply(grid, v))
                    );
                }
            }
        }
    }
}
