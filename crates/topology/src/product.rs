//! Cartesian products `G1 □ G2`.
//!
//! Vertices of the product are pairs `(u, v)` with `u ∈ G1`, `v ∈ G2`;
//! `(u, v) ~ (u', v')` iff (`u = u'` and `v ~ v'` in `G2`) or (`v = v'` and
//! `u ~ u'` in `G1`). The `m × n` grid is `P_m □ P_n`; replacing either
//! factor with a cycle yields cylinders and tori. The paper's routing
//! algorithm generalizes to any product (§IV), treating copies of `G1` as
//! "columns" and copies of `G2` as "rows".

use crate::graph::Graph;

/// The Cartesian product of two graphs with row-major pair indexing:
/// vertex `(u, v)` has id `u * g2.len() + v`.
#[derive(Debug, Clone)]
pub struct Product {
    g1: Graph,
    g2: Graph,
}

impl Product {
    /// Form `g1 □ g2`.
    pub fn new(g1: Graph, g2: Graph) -> Product {
        Product { g1, g2 }
    }

    /// First factor (indexes "rows" of the product; copies of `g1` are the
    /// *columns*, in grid terminology).
    #[inline]
    pub fn factor1(&self) -> &Graph {
        &self.g1
    }

    /// Second factor.
    #[inline]
    pub fn factor2(&self) -> &Graph {
        &self.g2
    }

    /// Total number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.g1.len() * self.g2.len()
    }

    /// `true` iff either factor is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear id of pair `(u, v)`.
    #[inline]
    pub fn index(&self, u: usize, v: usize) -> usize {
        debug_assert!(u < self.g1.len() && v < self.g2.len());
        u * self.g2.len() + v
    }

    /// Pair `(u, v)` of linear id `x`.
    #[inline]
    pub fn coords(&self, x: usize) -> (usize, usize) {
        debug_assert!(x < self.len());
        (x / self.g2.len(), x % self.g2.len())
    }

    /// Materialize the product as a flat [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let n1 = self.g1.len();
        let n2 = self.g2.len();
        let mut edges = Vec::with_capacity(n1 * self.g2.num_edges() + n2 * self.g1.num_edges());
        for u in 0..n1 {
            for &(a, b) in self.g2.edges() {
                edges.push((self.index(u, a), self.index(u, b)));
            }
        }
        for v in 0..n2 {
            for &(a, b) in self.g1.edges() {
                edges.push((self.index(a, v), self.index(b, v)));
            }
        }
        Graph::from_edges(self.len(), edges).expect("product edges are always valid")
    }

    /// Vertex ids of the copy of `G1` at second-coordinate `v`
    /// (a "column" in grid terminology), ordered by first coordinate.
    pub fn g1_copy(&self, v: usize) -> Vec<usize> {
        (0..self.g1.len()).map(|u| self.index(u, v)).collect()
    }

    /// Vertex ids of the copy of `G2` at first-coordinate `u` (a "row"),
    /// ordered by second coordinate.
    pub fn g2_copy(&self, u: usize) -> Vec<usize> {
        (0..self.g2.len()).map(|v| self.index(u, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::path::Path;

    #[test]
    fn product_of_paths_is_grid() {
        let p = Product::new(Path::new(3).to_graph(), Path::new(4).to_graph());
        let from_product = p.to_graph();
        let from_grid = Grid::new(3, 4).to_graph();
        assert_eq!(from_product.len(), from_grid.len());
        assert_eq!(from_product.edges(), from_grid.edges());
    }

    #[test]
    fn torus_degrees() {
        use crate::cycle::Cycle;
        let t = Product::new(Cycle::new(4).to_graph(), Cycle::new(5).to_graph());
        let g = t.to_graph();
        for v in 0..g.len() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.num_edges(), 2 * 20);
    }

    #[test]
    fn cylinder_structure() {
        use crate::cycle::Cycle;
        let c = Product::new(Path::new(3).to_graph(), Cycle::new(4).to_graph());
        let g = c.to_graph();
        // Path endpoints contribute degree 3 vertices; middle row degree 4.
        assert_eq!(g.degree(c.index(0, 0)), 3);
        assert_eq!(g.degree(c.index(1, 0)), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn copies_are_lines() {
        let p = Product::new(Path::new(3).to_graph(), Path::new(4).to_graph());
        assert_eq!(p.g1_copy(1), vec![1, 5, 9]);
        assert_eq!(p.g2_copy(2), vec![8, 9, 10, 11]);
    }

    #[test]
    fn index_coords_round_trip() {
        let p = Product::new(Path::new(5).to_graph(), Path::new(2).to_graph());
        for x in 0..p.len() {
            let (u, v) = p.coords(x);
            assert_eq!(p.index(u, v), x);
        }
    }
}
