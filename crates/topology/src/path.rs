//! The path graph `P_n` — rows and columns of a grid are paths, and the
//! odd–even transposition router operates on paths.

use crate::graph::Graph;

/// The path graph on `n` vertices `0 — 1 — … — n-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Path {
    n: usize,
}

impl Path {
    /// Create `P_n`, `n >= 1`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Path {
        assert!(n >= 1, "path must have at least one vertex");
        Path { n }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Paths are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Graph distance `|u - v|`.
    #[inline]
    pub fn dist(&self, u: usize, v: usize) -> usize {
        u.abs_diff(v)
    }

    /// Materialize as a generic [`Graph`].
    pub fn to_graph(&self) -> Graph {
        Graph::from_edges(self.n, (0..self.n.saturating_sub(1)).map(|i| (i, i + 1)))
            .expect("path edges are always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_structure() {
        let p = Path::new(5);
        let g = p.to_graph();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn singleton_path() {
        let p = Path::new(1);
        assert_eq!(p.to_graph().num_edges(), 0);
        assert_eq!(p.dist(0, 0), 0);
    }

    #[test]
    fn distances() {
        let p = Path::new(10);
        assert_eq!(p.dist(2, 9), 7);
        assert_eq!(p.dist(9, 2), 7);
    }
}
