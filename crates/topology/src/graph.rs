//! Compact undirected simple graph with CSR adjacency.
//!
//! Vertices are dense `usize` ids. The representation is immutable after
//! construction: build with [`GraphBuilder`] or [`Graph::from_edges`], then
//! query neighbors in O(degree) with zero allocation.

use std::fmt;

/// An undirected edge between two vertices, stored in canonical order
/// (`u <= v` never occurs for self-loops since loops are rejected;
/// canonically `u < v`).
pub type Edge = (usize, usize);

/// Errors raised while constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: usize,
        /// Number of vertices in the graph under construction.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied.
    SelfLoop(usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at vertex {v} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A finite undirected simple graph in compressed sparse row form.
///
/// Construction deduplicates parallel edges and rejects self-loops, so the
/// result is always a *simple* graph — the correct model for a coupling
/// graph where a pair of qubits is either coupled or not.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<u32>,
    /// Canonical (u < v) deduplicated edge list, sorted.
    edges: Vec<Edge>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.len())
            .field("m", &self.num_edges())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Start building a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Add an undirected edge. Order of endpoints is irrelevant; duplicates
    /// are removed at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Finish construction, validating all endpoints.
    pub fn build(&self) -> Result<Graph, GraphError> {
        Graph::from_edges(self.n, self.edges.iter().copied())
    }
}

impl Graph {
    /// Build a graph on `n` vertices from an iterator of undirected edges.
    ///
    /// Self-loops are rejected; parallel edges are collapsed.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut canon: Vec<Edge> = Vec::new();
        for (u, v) in edges {
            if u >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            canon.push(if u < v { (u, v) } else { (v, u) });
        }
        canon.sort_unstable();
        canon.dedup();

        let mut degree = vec![0u32; n];
        for &(u, v) in &canon {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; 2 * canon.len()];
        for &(u, v) in &canon {
            neighbors[cursor[u] as usize] = v as u32;
            cursor[u] += 1;
            neighbors[cursor[v] as usize] = u as u32;
            cursor[v] += 1;
        }
        // Adjacency lists come out sorted because the canonical edge list is
        // sorted by (min, max); entries for a fixed u from the first loop are
        // ascending, but entries written as the `v` endpoint interleave, so
        // sort each list to make `neighbors()` output deterministic.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbors[lo..hi].sort_unstable();
        }
        Ok(Graph { offsets, neighbors, edges: canon })
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        self.neighbors[lo..hi].iter().map(|&x| x as usize)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Canonical sorted edge list (each edge once, `u < v`).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// `true` iff `u` and `v` are adjacent. O(log degree).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.len() || v >= self.len() || u == v {
            return false;
        }
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.neighbors[lo..hi].binary_search(&(v as u32)).is_ok()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// `true` iff the edge set `layer` is a matching: no two edges share an
    /// endpoint and every edge exists in the graph.
    pub fn is_matching(&self, layer: &[Edge]) -> bool {
        let mut used = vec![false; self.len()];
        for &(u, v) in layer {
            if !self.has_edge(u, v) {
                return false;
            }
            if used[u] || used[v] {
                return false;
            }
            used[u] = true;
            used[v] = true;
        }
        true
    }

    /// `true` iff the graph is connected (vacuously true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for w in self.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// A graph with `n` vertices and no edges.
    pub fn edgeless(n: usize) -> Graph {
        Graph::from_edges(n, std::iter::empty()).expect("edgeless graph is always valid")
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Graph {
        let edges = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)));
        Graph::from_edges(n, edges).expect("complete graph is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_triangle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 2));
        assert!(g.is_connected());
    }

    #[test]
    fn deduplicates_parallel_edges() {
        let g = Graph::from_edges(2, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(Graph::from_edges(2, [(1, 1)]), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, [(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        );
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let nb: Vec<usize> = g.neighbors(2).collect();
        assert_eq!(nb, vec![0, 1, 3, 4]);
    }

    #[test]
    fn matching_checks() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(g.is_matching(&[(0, 1), (2, 3)]));
        assert!(!g.is_matching(&[(0, 1), (1, 2)])); // shares vertex 1
        assert!(!g.is_matching(&[(0, 2)])); // not an edge
        assert!(g.is_matching(&[]));
    }

    #[test]
    fn connectivity() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert!(Graph::edgeless(0).is_connected());
        assert!(Graph::edgeless(1).is_connected());
        assert!(!Graph::edgeless(2).is_connected());
        assert!(Graph::complete(5).is_connected());
    }

    #[test]
    fn builder_round_trip() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = Graph::complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::edgeless(0);
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn has_edge_bounds() {
        let g = Graph::complete(3);
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 7));
        assert!(!g.has_edge(7, 0));
    }
}
