//! # qroute-topology
//!
//! Coupling-graph substrate for qubit routing.
//!
//! NISQ hardware restricts two-qubit gates to *coupled* pairs of physical
//! qubits; the coupling relation is an undirected simple graph. This crate
//! provides the graph types used throughout the workspace:
//!
//! * [`Graph`] — a compact CSR-backed undirected simple graph with dense
//!   `usize` vertex ids (vertices are physical qubits).
//! * [`Grid`] — the `m × n` grid graph the paper targets, with fast
//!   coordinate arithmetic, L1 distances and transposition.
//! * [`Path`] / [`Cycle`] — the one-dimensional factor graphs used by the
//!   Cartesian-product extension (§IV of the paper).
//! * [`Product`] — the Cartesian product `G1 □ G2` of two graphs
//!   (grids, cylinders and tori are all products of paths/cycles).
//! * [`dist`] — BFS single-source and all-pairs shortest path distances
//!   (needed by the token-swapping baseline and by locality metrics).
//! * [`oracle`] — [`DistanceOracle`]: O(1) closed-form distances for
//!   grids/cycles/products and a lazy BFS cache for generic graphs, the
//!   hot-path replacement for materialized all-pairs tables.
//! * [`gridlike`] — "grid-like" architectures (grids with defects, brick
//!   walls) used to exercise routers beyond perfect grids.
//! * [`symmetry`] — [`GridSymmetry`]: the dihedral symmetries of a grid,
//!   used by the routing service to canonicalize instances and replay
//!   cached schedules through the inverse map.
//! * [`topology`] — [`Topology`]: a first-class architecture value
//!   (grid, grid-with-defects, heavy-hex, brick-wall, torus) that
//!   produces its graph, its best distance oracle, and a compacted
//!   routing frame — the type routers and the service dispatch on.
//!
//! All vertex ids are dense `usize` indices in `0..graph.len()`, which keeps
//! hot paths allocation- and hash-free (plain `Vec` indexing everywhere).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle;
pub mod dist;
pub mod graph;
pub mod grid;
pub mod gridlike;
pub mod oracle;
pub mod path;
pub mod product;
pub mod symmetry;
pub mod topology;

pub use cycle::Cycle;
pub use graph::{Edge, Graph, GraphBuilder, GraphError};
pub use grid::Grid;
pub use oracle::{
    ApspOracle, CycleOracle, DistanceOracle, GridOracle, LazyBfsOracle, ProductOracle,
};
pub use path::Path;
pub use product::Product;
pub use symmetry::GridSymmetry;
pub use topology::{RoutingFrame, Topology, TopologyError, TopologyOracle};
