//! Bench-guard for the zero-overhead-when-disarmed tracing contract: an
//! A/B pair per router proving (A) the instrumentation points are live
//! when a subscriber is armed, and (B) a disarmed route performs zero
//! subscriber calls and produces the identical schedule. Untimed by
//! design — counting dispatches is robust where wall-clock deltas on
//! shared CI hardware are not.

use qroute_core::{GridRouter, RouterKind};
use qroute_obs::trace::{with_subscriber, CountingSubscriber, Subscriber};
use qroute_perm::generators;
use qroute_topology::Topology;
use std::sync::Arc;

#[test]
fn disarmed_route_performs_zero_subscriber_calls() {
    let topology = Topology::grid(6, 6);
    let pi = generators::random(topology.len(), 7);
    for router in [
        RouterKind::locality_aware(),
        RouterKind::Ats,
        RouterKind::pathfinder(),
    ] {
        // A: armed. The route must dispatch records — otherwise the B
        // half would pass vacuously on an uninstrumented router.
        let armed = Arc::new(CountingSubscriber::new());
        let armed_schedule = with_subscriber(Arc::clone(&armed) as Arc<dyn Subscriber>, || {
            router.route_on(&topology, &pi).unwrap()
        });
        assert!(
            armed.calls() > 0,
            "{} emitted no trace records while armed",
            router.label()
        );

        // B: disarmed. The counter is alive but not installed; had the
        // route consulted any subscriber slot it could only have found
        // none — and the schedule must come out byte-identical.
        let bystander = Arc::new(CountingSubscriber::new());
        assert!(!qroute_obs::trace::armed(), "subscriber leaked out of A");
        let disarmed_schedule = router.route_on(&topology, &pi).unwrap();
        assert_eq!(
            bystander.calls(),
            0,
            "{} dispatched to a subscriber while disarmed",
            router.label()
        );
        assert_eq!(
            armed_schedule,
            disarmed_schedule,
            "{} schedule changed under tracing",
            router.label()
        );
    }
}
