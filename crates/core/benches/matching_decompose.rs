//! Matching-decomposition microbenchmarks on the column multigraphs the
//! 3-phase routers actually decompose, using alive-set snapshots to rewind
//! edge consumption between iterations instead of cloning the multigraph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_core::grid_route::build_column_multigraph;
use qroute_matching::{decompose_regular, decompose_regular_euler};
use qroute_perm::generators;
use qroute_topology::Grid;
use std::hint::black_box;
use std::time::Duration;

fn bench_matching_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_decompose");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for side in [16usize, 32, 64] {
        let grid = Grid::new(side, side);
        let pi = generators::random(grid.len(), 5);
        let mut mg = build_column_multigraph(grid, &pi);
        let full = mg.save_alive();

        group.bench_with_input(
            BenchmarkId::new("hopcroft_karp_peel", side),
            &(),
            |b, ()| {
                b.iter(|| {
                    mg.restore_alive(&full);
                    black_box(decompose_regular(&mut mg).unwrap().len())
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("euler_split", side), &(), |b, ()| {
            b.iter(|| {
                mg.restore_alive(&full);
                black_box(decompose_regular_euler(&mut mg).unwrap().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching_decompose);
criterion_main!(benches);
