//! Odd–even transposition line routing: fresh-allocation entry points
//! versus the reusable [`LineScratch`] the 3-phase grid router now runs
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_core::line::{route_line_best, LineScratch};
use std::hint::black_box;
use std::time::Duration;

/// A deterministic scrambled permutation of `0..l` (splitmix64 shuffle).
fn scrambled(l: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0xD1B54A32D192ED03;
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut v: Vec<usize> = (0..l).collect();
    for i in (1..l).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

fn bench_line_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_routing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for l in [16usize, 64, 256] {
        // A batch of lines, as one 3-phase routing pass would see.
        let batch: Vec<Vec<usize>> = (0..l.min(64)).map(|s| scrambled(l, s as u64)).collect();

        group.bench_with_input(
            BenchmarkId::new("fresh_alloc_batch", l),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut depth = 0usize;
                    for targets in batch {
                        depth += route_line_best(black_box(targets)).len();
                    }
                    black_box(depth)
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("scratch_batch", l), &batch, |b, batch| {
            let mut scratch = LineScratch::new();
            b.iter(|| {
                let mut depth = 0usize;
                for targets in batch {
                    depth += scratch.route_best(black_box(targets)).len();
                }
                black_box(depth)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_line_routing);
criterion_main!(benches);
