//! Before/after benchmark for the distance-oracle overhaul: parallel and
//! serial approximate token swapping with the `O(1)` closed-form
//! [`GridOracle`] versus the old implementation, which materialized the
//! full APSP table on every route call (reproduced here by constructing
//! an [`ApspOracle`] per iteration). The README "Performance" section
//! quotes these numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_core::token_swap::{approximate_token_swapping_with, parallel_token_swapping_with};
use qroute_perm::generators;
use qroute_topology::{ApspOracle, Grid, GridOracle};
use std::hint::black_box;
use std::time::Duration;

fn bench_ats_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("ats_oracle");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for side in [16usize, 32, 64] {
        let grid = Grid::new(side, side);
        let graph = grid.to_graph();
        let pi = generators::random(grid.len(), 5);

        group.bench_with_input(
            BenchmarkId::new("parallel_grid_oracle", side),
            &pi,
            |b, pi| {
                b.iter(|| {
                    let oracle = GridOracle::new(grid);
                    black_box(parallel_token_swapping_with(&graph, &oracle, black_box(pi)).depth())
                })
            },
        );

        // The pre-overhaul hot path: full APSP rebuilt per call.
        group.bench_with_input(BenchmarkId::new("parallel_apsp", side), &pi, |b, pi| {
            b.iter(|| {
                let oracle = ApspOracle::new(&graph);
                black_box(parallel_token_swapping_with(&graph, &oracle, black_box(pi)).depth())
            })
        });

        group.bench_with_input(
            BenchmarkId::new("serial_grid_oracle", side),
            &pi,
            |b, pi| {
                b.iter(|| {
                    let oracle = GridOracle::new(grid);
                    black_box(
                        approximate_token_swapping_with(&graph, &oracle, black_box(pi)).num_swaps(),
                    )
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("serial_apsp", side), &pi, |b, pi| {
            b.iter(|| {
                let oracle = ApspOracle::new(&graph);
                black_box(
                    approximate_token_swapping_with(&graph, &oracle, black_box(pi)).num_swaps(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ats_oracle);
criterion_main!(benches);
