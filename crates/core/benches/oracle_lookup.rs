//! Distance-oracle microbenchmarks: per-query cost of the closed-form
//! grid oracle and the warm lazy-BFS cache, versus the one-time cost of
//! materializing the full APSP table the hot paths used to pay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qroute_topology::{ApspOracle, DistanceOracle, Grid, GridOracle, LazyBfsOracle};
use std::hint::black_box;
use std::time::Duration;

/// Deterministic pseudo-random vertex pairs (no RNG dependency).
fn query_pairs(n: usize, count: usize) -> Vec<(usize, usize)> {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..count).map(|_| (next() % n, next() % n)).collect()
}

fn sweep(oracle: &impl DistanceOracle, pairs: &[(usize, usize)]) -> u64 {
    pairs.iter().map(|&(u, v)| oracle.dist(u, v) as u64).sum()
}

fn bench_oracle_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_lookup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for side in [16usize, 32, 64] {
        let grid = Grid::new(side, side);
        let graph = grid.to_graph();
        let pairs = query_pairs(grid.len(), 4096);

        let grid_oracle = GridOracle::new(grid);
        group.bench_with_input(
            BenchmarkId::new("grid_4096_lookups", side),
            &pairs,
            |b, p| b.iter(|| black_box(sweep(&grid_oracle, black_box(p)))),
        );

        let lazy = LazyBfsOracle::new(&graph);
        sweep(&lazy, &pairs); // warm the cache once
        group.bench_with_input(
            BenchmarkId::new("lazy_bfs_warm_4096_lookups", side),
            &pairs,
            |b, p| b.iter(|| black_box(sweep(&lazy, black_box(p)))),
        );

        // The cost every route call used to pay before any query ran.
        group.bench_with_input(BenchmarkId::new("apsp_build", side), &graph, |b, g| {
            b.iter(|| black_box(ApspOracle::new(black_box(g)).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_lookup);
criterion_main!(benches);
