//! Odd–even transposition routing on a path.
//!
//! Each phase of the 3-phase grid algorithm routes a permutation *within*
//! a row or column — a path graph. The classic odd–even transposition sort
//! realizes any permutation of a path with `L` vertices in at most `L`
//! rounds, where each round is a matching of alternating edges. Crucially
//! for the locality-aware router, the sort finishes early on
//! almost-sorted inputs: tokens that only need to move a short distance
//! produce shallow line schedules, which is exactly how small `Δ` values
//! turn into small depth.
//!
//! Layers are returned in *position space* (`(p, p+1)` pairs with
//! `0 <= p < L-1`); callers map positions to grid vertex ids.

/// Which edge parity the first round compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstParity {
    /// Start with edges `(0,1), (2,3), …`.
    Even,
    /// Start with edges `(1,2), (3,4), …`.
    Odd,
}

/// Route the permutation `targets` (`targets[p]` = destination position of
/// the token currently at position `p`) on a path, starting with the given
/// parity. Returns rounds of disjoint adjacent transpositions; empty
/// rounds are skipped but parity still alternates per round slot.
///
/// # Panics
/// Panics (debug) if `targets` is not a permutation of `0..L`.
pub fn route_line(targets: &[usize], first: FirstParity) -> Vec<Vec<(usize, usize)>> {
    let l = targets.len();
    debug_assert!({
        let mut seen = vec![false; l];
        targets
            .iter()
            .all(|&t| t < l && !std::mem::replace(&mut seen[t], true))
    });
    let mut key: Vec<usize> = targets.to_vec();
    let mut rounds: Vec<Vec<(usize, usize)>> = Vec::new();
    if l <= 1 {
        return rounds;
    }
    let mut parity = match first {
        FirstParity::Even => 0usize,
        FirstParity::Odd => 1usize,
    };
    // Odd-even transposition sort completes within l rounds; we allow one
    // extra slack round for the parity offset and assert completion.
    for _ in 0..=l {
        if key.iter().enumerate().all(|(p, &k)| p == k) {
            break;
        }
        let mut round = Vec::new();
        let mut p = parity;
        while p + 1 < l {
            if key[p] > key[p + 1] {
                key.swap(p, p + 1);
                round.push((p, p + 1));
            }
            p += 2;
        }
        if !round.is_empty() {
            rounds.push(round);
        }
        parity ^= 1;
    }
    debug_assert!(
        key.iter().enumerate().all(|(p, &k)| p == k),
        "odd-even transposition failed to sort within L+1 rounds"
    );
    rounds
}

/// Route with both starting parities and keep the shallower schedule
/// (ties prefer even-first, matching the deterministic baseline).
pub fn route_line_best(targets: &[usize]) -> Vec<Vec<(usize, usize)>> {
    let even = route_line(targets, FirstParity::Even);
    let odd = route_line(targets, FirstParity::Odd);
    if odd.len() < even.len() {
        odd
    } else {
        even
    }
}

/// Apply position-space rounds to a token array (test helper / verifier).
pub fn apply_rounds(rounds: &[Vec<(usize, usize)>], tokens: &mut [usize]) {
    for round in rounds {
        for &(a, b) in round {
            tokens.swap(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realizes(targets: &[usize], rounds: &[Vec<(usize, usize)>]) -> bool {
        // Token at position p must end at targets[p]: final position of
        // token initially at p equals targets[p].
        let l = targets.len();
        let mut at: Vec<usize> = (0..l).collect();
        apply_rounds(rounds, &mut at);
        // at[pos] = original position of token now at pos.
        (0..l).all(|pos| targets[at[pos]] == pos)
    }

    #[test]
    fn identity_needs_no_rounds() {
        let t: Vec<usize> = (0..8).collect();
        assert!(route_line(&t, FirstParity::Even).is_empty());
    }

    #[test]
    fn trivial_sizes() {
        assert!(route_line(&[], FirstParity::Even).is_empty());
        assert!(route_line(&[0], FirstParity::Odd).is_empty());
        let r = route_line(&[1, 0], FirstParity::Even);
        assert_eq!(r, vec![vec![(0, 1)]]);
    }

    #[test]
    fn odd_parity_first_on_swap_at_odd_edge() {
        // Tokens 1<->2 swapped: odd-first solves in 1 round, even-first in
        // more.
        let t = vec![0, 2, 1, 3];
        let odd = route_line(&t, FirstParity::Odd);
        assert_eq!(odd.len(), 1);
        let best = route_line_best(&t);
        assert_eq!(best.len(), 1);
    }

    #[test]
    fn reversal_takes_l_rounds() {
        for l in 2..10 {
            let t: Vec<usize> = (0..l).rev().collect();
            let r = route_line_best(&t);
            assert!(realizes(&t, &r));
            assert!(r.len() <= l, "reversal of {l} took {} rounds", r.len());
            // Reversal is the worst case; it needs at least l-1 rounds.
            assert!(r.len() >= l - 1);
        }
    }

    #[test]
    fn all_permutations_of_small_lines_are_realized() {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        for l in 0..7 {
            for t in perms(l) {
                for first in [FirstParity::Even, FirstParity::Odd] {
                    let r = route_line(&t, first);
                    assert!(realizes(&t, &r), "targets {t:?} parity {first:?}");
                    assert!(r.len() <= l, "depth bound violated for {t:?}");
                }
            }
        }
    }

    #[test]
    fn local_shift_is_shallow() {
        // A single adjacent transposition far from others finishes fast.
        let mut t: Vec<usize> = (0..64).collect();
        t.swap(10, 11);
        t.swap(40, 41);
        let r = route_line_best(&t);
        assert!(r.len() <= 2, "local swaps took {} rounds", r.len());
        assert!(realizes(&t, &r));
    }

    #[test]
    fn rounds_are_disjoint_adjacent_pairs() {
        let t: Vec<usize> = (0..9).rev().collect();
        for round in route_line(&t, FirstParity::Even) {
            let mut used = [false; 9];
            for (a, b) in round {
                assert_eq!(b, a + 1);
                assert!(!used[a] && !used[b]);
                used[a] = true;
                used[b] = true;
            }
        }
    }

    #[test]
    fn displacement_lower_bound_holds() {
        let t = vec![5, 0, 1, 2, 3, 4]; // token at 0 must travel 5
        let r = route_line_best(&t);
        assert!(realizes(&t, &r));
        assert!(r.len() >= 5);
    }
}
