//! Odd–even transposition routing on a path.
//!
//! Each phase of the 3-phase grid algorithm routes a permutation *within*
//! a row or column — a path graph. The classic odd–even transposition sort
//! realizes any permutation of a path with `L` vertices in at most `L`
//! rounds, where each round is a matching of alternating edges. Crucially
//! for the locality-aware router, the sort finishes early on
//! almost-sorted inputs: tokens that only need to move a short distance
//! produce shallow line schedules, which is exactly how small `Δ` values
//! turn into small depth.
//!
//! Layers are returned in *position space* (`(p, p+1)` pairs with
//! `0 <= p < L-1`); callers map positions to grid vertex ids.

/// Which edge parity the first round compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstParity {
    /// Start with edges `(0,1), (2,3), …`.
    Even,
    /// Start with edges `(1,2), (3,4), …`.
    Odd,
}

/// Recycled round storage: `rounds[..depth]` hold the current routing,
/// later entries keep their capacity for the next routing.
#[derive(Debug, Default)]
struct RoundBuf {
    rounds: Vec<Vec<(usize, usize)>>,
    depth: usize,
}

impl RoundBuf {
    fn as_slice(&self) -> &[Vec<(usize, usize)>] {
        &self.rounds[..self.depth]
    }
}

/// Reusable scratch buffers for odd–even transposition routing.
///
/// The 3-phase grid router routes `2n + m` lines per call (and twice that
/// with the transpose trick); a shared scratch turns every one of those
/// routings into zero fresh allocations once the buffers have warmed up.
/// Results are returned as borrowed slices valid until the next routing
/// call on the same scratch.
#[derive(Debug, Default)]
pub struct LineScratch {
    key: Vec<usize>,
    rounds: RoundBuf,
    rounds_alt: RoundBuf,
}

impl LineScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> LineScratch {
        LineScratch::default()
    }

    /// Route `targets` starting with parity `first`; the rounds live in
    /// the scratch until the next routing call.
    pub fn route(&mut self, targets: &[usize], first: FirstParity) -> &[Vec<(usize, usize)>] {
        route_into(targets, first, &mut self.key, &mut self.rounds);
        self.rounds.as_slice()
    }

    /// Route with both starting parities and keep the shallower schedule
    /// (ties prefer even-first, matching the deterministic baseline).
    pub fn route_best(&mut self, targets: &[usize]) -> &[Vec<(usize, usize)>] {
        route_into(targets, FirstParity::Even, &mut self.key, &mut self.rounds);
        route_into(
            targets,
            FirstParity::Odd,
            &mut self.key,
            &mut self.rounds_alt,
        );
        if self.rounds_alt.depth < self.rounds.depth {
            self.rounds_alt.as_slice()
        } else {
            self.rounds.as_slice()
        }
    }
}

/// The odd–even transposition core, writing rounds into recycled buffers.
fn route_into(targets: &[usize], first: FirstParity, key: &mut Vec<usize>, buf: &mut RoundBuf) {
    let l = targets.len();
    debug_assert!({
        let mut seen = vec![false; l];
        targets
            .iter()
            .all(|&t| t < l && !std::mem::replace(&mut seen[t], true))
    });
    buf.depth = 0;
    if l <= 1 {
        return;
    }
    key.clear();
    key.extend_from_slice(targets);
    let mut parity = match first {
        FirstParity::Even => 0usize,
        FirstParity::Odd => 1usize,
    };
    // Odd-even transposition sort completes within l rounds; we allow one
    // extra slack round for the parity offset and assert completion.
    for _ in 0..=l {
        if key.iter().enumerate().all(|(p, &k)| p == k) {
            break;
        }
        if buf.depth == buf.rounds.len() {
            buf.rounds.push(Vec::new());
        }
        let round = &mut buf.rounds[buf.depth];
        round.clear();
        let mut p = parity;
        while p + 1 < l {
            if key[p] > key[p + 1] {
                key.swap(p, p + 1);
                round.push((p, p + 1));
            }
            p += 2;
        }
        if !round.is_empty() {
            buf.depth += 1;
        }
        parity ^= 1;
    }
    debug_assert!(
        key.iter().enumerate().all(|(p, &k)| p == k),
        "odd-even transposition failed to sort within L+1 rounds"
    );
}

/// Route the permutation `targets` (`targets[p]` = destination position of
/// the token currently at position `p`) on a path, starting with the given
/// parity. Returns rounds of disjoint adjacent transpositions; empty
/// rounds are skipped but parity still alternates per round slot.
///
/// Allocates a fresh result; loops over many lines should reuse a
/// [`LineScratch`] instead.
///
/// # Panics
/// Panics (debug) if `targets` is not a permutation of `0..L`.
pub fn route_line(targets: &[usize], first: FirstParity) -> Vec<Vec<(usize, usize)>> {
    let mut scratch = LineScratch::new();
    scratch.route(targets, first).to_vec()
}

/// Route with both starting parities and keep the shallower schedule
/// (ties prefer even-first, matching the deterministic baseline).
pub fn route_line_best(targets: &[usize]) -> Vec<Vec<(usize, usize)>> {
    let mut scratch = LineScratch::new();
    scratch.route_best(targets).to_vec()
}

/// Apply position-space rounds to a token array (test helper / verifier).
pub fn apply_rounds(rounds: &[Vec<(usize, usize)>], tokens: &mut [usize]) {
    for round in rounds {
        for &(a, b) in round {
            tokens.swap(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realizes(targets: &[usize], rounds: &[Vec<(usize, usize)>]) -> bool {
        // Token at position p must end at targets[p]: final position of
        // token initially at p equals targets[p].
        let l = targets.len();
        let mut at: Vec<usize> = (0..l).collect();
        apply_rounds(rounds, &mut at);
        // at[pos] = original position of token now at pos.
        (0..l).all(|pos| targets[at[pos]] == pos)
    }

    #[test]
    fn identity_needs_no_rounds() {
        let t: Vec<usize> = (0..8).collect();
        assert!(route_line(&t, FirstParity::Even).is_empty());
    }

    #[test]
    fn trivial_sizes() {
        assert!(route_line(&[], FirstParity::Even).is_empty());
        assert!(route_line(&[0], FirstParity::Odd).is_empty());
        let r = route_line(&[1, 0], FirstParity::Even);
        assert_eq!(r, vec![vec![(0, 1)]]);
    }

    #[test]
    fn odd_parity_first_on_swap_at_odd_edge() {
        // Tokens 1<->2 swapped: odd-first solves in 1 round, even-first in
        // more.
        let t = vec![0, 2, 1, 3];
        let odd = route_line(&t, FirstParity::Odd);
        assert_eq!(odd.len(), 1);
        let best = route_line_best(&t);
        assert_eq!(best.len(), 1);
    }

    #[test]
    fn reversal_takes_l_rounds() {
        for l in 2..10 {
            let t: Vec<usize> = (0..l).rev().collect();
            let r = route_line_best(&t);
            assert!(realizes(&t, &r));
            assert!(r.len() <= l, "reversal of {l} took {} rounds", r.len());
            // Reversal is the worst case; it needs at least l-1 rounds.
            assert!(r.len() >= l - 1);
        }
    }

    #[test]
    fn all_permutations_of_small_lines_are_realized() {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        for l in 0..7 {
            for t in perms(l) {
                for first in [FirstParity::Even, FirstParity::Odd] {
                    let r = route_line(&t, first);
                    assert!(realizes(&t, &r), "targets {t:?} parity {first:?}");
                    assert!(r.len() <= l, "depth bound violated for {t:?}");
                }
            }
        }
    }

    #[test]
    fn local_shift_is_shallow() {
        // A single adjacent transposition far from others finishes fast.
        let mut t: Vec<usize> = (0..64).collect();
        t.swap(10, 11);
        t.swap(40, 41);
        let r = route_line_best(&t);
        assert!(r.len() <= 2, "local swaps took {} rounds", r.len());
        assert!(realizes(&t, &r));
    }

    #[test]
    fn rounds_are_disjoint_adjacent_pairs() {
        let t: Vec<usize> = (0..9).rev().collect();
        for round in route_line(&t, FirstParity::Even) {
            let mut used = [false; 9];
            for (a, b) in round {
                assert_eq!(b, a + 1);
                assert!(!used[a] && !used[b]);
                used[a] = true;
                used[b] = true;
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_calls() {
        // A warm scratch (dirty buffers from previous lines) must produce
        // exactly the rounds a fresh allocation produces.
        let mut scratch = LineScratch::new();
        let cases: Vec<Vec<usize>> = vec![
            (0..9).rev().collect(),
            (0..9).collect(),
            vec![5, 0, 1, 2, 3, 4],
            vec![1, 0],
            vec![0],
            vec![],
            vec![0, 2, 1, 3],
        ];
        for t in &cases {
            for first in [FirstParity::Even, FirstParity::Odd] {
                assert_eq!(scratch.route(t, first), route_line(t, first), "{t:?}");
            }
            assert_eq!(scratch.route_best(t), route_line_best(t), "{t:?}");
        }
    }

    #[test]
    fn displacement_lower_bound_holds() {
        let t = vec![5, 0, 1, 2, 3, 4]; // token at 0 must travel 5
        let r = route_line_best(&t);
        assert!(realizes(&t, &r));
        assert!(r.len() >= 5);
    }
}
